//! Executable counterparts of the paper's metatheory.
//!
//! * **Theorem 1 (Soundness):** if `l ∈ L(p)` then `l ∈ infer(p)`.
//! * **Theorem 2 (Completeness):** if `l ∈ infer(p)` then `l ∈ L(p)`.
//! * **Corollary 1 (Regularity):** `L(p)` is a regular language.
//!
//! The paper proves these in Coq; here they are checked executably on
//! (a) an exhaustive space of small programs and (b) a randomized space of
//! larger programs, with the trace semantics (`TraceChecker`,
//! `enumerate_traces`) on one side and behavior inference (`infer`,
//! compiled to automata) on the other. The two sides are implemented
//! independently, so agreement is strong evidence of faithfulness.

use proptest::prelude::*;
use shelley_ir::{
    denote, denote_exits, enumerate_traces, infer, EnumConfig, Program, Status, TraceChecker,
};
use shelley_regular::{Alphabet, Dfa, Nfa, Regex, Symbol};
use std::sync::Arc;

const NSYMS: usize = 3;

fn alphabet() -> Arc<Alphabet> {
    Arc::new(Alphabet::from_names(["a", "b", "c"]))
}

fn arb_program() -> impl Strategy<Value = Program> {
    let leaf = prop_oneof![
        3 => (0..NSYMS).prop_map(|i| Program::call(Symbol::from_index(i))),
        1 => Just(Program::skip()),
        1 => (0..1000usize).prop_map(Program::ret),
    ];
    leaf.prop_recursive(4, 24, 2, |inner| {
        prop_oneof![
            3 => (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Program::seq(a, b)),
            2 => (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Program::if_(a, b)),
            1 => inner.prop_map(Program::loop_),
        ]
    })
}

fn arb_word() -> impl Strategy<Value = Vec<Symbol>> {
    proptest::collection::vec((0..NSYMS).prop_map(Symbol::from_index), 0..6)
}

proptest! {
    /// Theorem 1 on enumerated semantic traces.
    #[test]
    fn soundness(p in arb_program()) {
        let behavior = infer(&p);
        let cfg = EnumConfig { max_len: 5, max_iters: 3, max_traces: 2000 };
        for (_, trace) in enumerate_traces(&p, cfg) {
            prop_assert!(
                behavior.matches(&trace),
                "trace {:?} derivable but not inferred",
                trace
            );
        }
    }

    /// Theorem 2 on enumerated words of the inferred behavior.
    #[test]
    fn completeness(p in arb_program()) {
        let ab = alphabet();
        let behavior = infer(&p);
        let dfa = Dfa::from_nfa(&Nfa::from_regex(&behavior, ab));
        let checker = TraceChecker::new(&p);
        for word in dfa.enumerate_words(5, 500) {
            prop_assert!(
                checker.in_language(&word),
                "word {:?} inferred but not derivable",
                word
            );
        }
    }

    /// Both directions at once on arbitrary words: membership in L(p)
    /// coincides with membership in infer(p).
    #[test]
    fn correctness_pointwise(p in arb_program(), w in arb_word()) {
        let checker = TraceChecker::new(&p);
        let behavior = infer(&p);
        prop_assert_eq!(checker.in_language(&w), behavior.matches(&w));
    }

    /// The status split agrees with the two components of ⟦p⟧: ongoing
    /// traces are matched by r, returned traces by some element of s.
    #[test]
    fn status_split(p in arb_program(), w in arb_word()) {
        let checker = TraceChecker::new(&p);
        let (r, s) = denote(&p);
        prop_assert_eq!(
            checker.derivable(Status::Ongoing, &w),
            r.matches(&w),
            "ongoing component disagrees"
        );
        prop_assert_eq!(
            checker.derivable(Status::Returned, &w),
            s.iter().any(|ri| ri.matches(&w)),
            "returned component disagrees"
        );
    }

    /// Corollary 1: the behavior compiles to a DFA whose language agrees
    /// with the semantics (regularity, witnessed constructively).
    #[test]
    fn regularity(p in arb_program(), w in arb_word()) {
        let ab = alphabet();
        let dfa = Dfa::from_nfa(&Nfa::from_regex(&infer(&p), ab)).minimize();
        let checker = TraceChecker::new(&p);
        prop_assert_eq!(dfa.accepts(&w), checker.in_language(&w));
    }

    /// The exit-tagged denotation refines the paper's: the union of its
    /// returned behaviors equals the returned component of ⟦p⟧.
    #[test]
    fn exit_tagging_refines_denotation(p in arb_program(), w in arb_word()) {
        let (r_plain, s_plain) = denote(&p);
        let (r_tagged, s_tagged) = denote_exits(&p);
        prop_assert_eq!(r_plain.matches(&w), r_tagged.matches(&w));
        let plain_any = s_plain.iter().any(|ri| ri.matches(&w));
        let tagged_any = s_tagged.iter().any(|(_, ri)| ri.matches(&w));
        prop_assert_eq!(plain_any, tagged_any);
    }
}

/// Exhaustive check over every program of a small shape grammar: all
/// programs with at most 3 internal nodes over 2 symbols.
#[test]
fn exhaustive_small_programs() {
    let mut ab = Alphabet::new();
    let a = ab.intern("a");
    let b = ab.intern("b");
    let atoms = vec![
        Program::call(a),
        Program::call(b),
        Program::skip(),
        Program::ret(0),
    ];
    // Depth-2 combinations.
    let mut programs: Vec<Program> = atoms.clone();
    for x in &atoms {
        programs.push(Program::loop_(x.clone()));
        for y in &atoms {
            programs.push(Program::seq(x.clone(), y.clone()));
            programs.push(Program::if_(x.clone(), y.clone()));
        }
    }
    // One more layer over a sampled subset to keep the space tractable.
    let level2: Vec<Program> = programs.clone();
    for (i, x) in level2.iter().enumerate() {
        programs.push(Program::loop_(x.clone()));
        for y in level2.iter().skip(i % 7).step_by(7) {
            programs.push(Program::seq(x.clone(), y.clone()));
            programs.push(Program::if_(x.clone(), y.clone()));
        }
    }

    let words: Vec<Vec<Symbol>> = {
        let syms = [a, b];
        let mut ws: Vec<Vec<Symbol>> = vec![vec![]];
        for _ in 0..4 {
            let prev = ws.clone();
            for w in prev {
                if w.len() == ws.last().map_or(0, Vec::len) {
                    // grow only max-length words (breadth-first growth)
                }
                for &s in &syms {
                    let mut w2 = w.clone();
                    w2.push(s);
                    if w2.len() <= 4 && !ws.contains(&w2) {
                        ws.push(w2);
                    }
                }
            }
        }
        ws
    };

    for p in &programs {
        let checker = TraceChecker::new(p);
        let behavior = infer(p);
        for w in &words {
            assert_eq!(
                checker.in_language(w),
                behavior.matches(w),
                "program {:?} word {:?}",
                p,
                w
            );
        }
    }
}

/// The paper's Example 3, end to end, including the printed form.
#[test]
fn example3_exact() {
    let mut ab = Alphabet::new();
    let a = ab.intern("a");
    let b = ab.intern("b");
    let c = ab.intern("c");
    let p = Program::loop_(Program::seq(
        Program::call(a),
        Program::if_(
            Program::seq(Program::call(b), Program::ret(0)),
            Program::call(c),
        ),
    ));
    let (r, s) = denote(&p);
    // Paper: ((a·((b·∅)+c))*, {(a·((b·∅)+c))*·a·b}); our smart constructors
    // reduce b·∅ to ∅ and ∅+c to c.
    assert_eq!(r.display(&ab).to_string(), "(a · c)*");
    assert_eq!(s.len(), 1);
    assert_eq!(s[0].display(&ab).to_string(), "(a · c)* · a · b");

    // Language equality with the unsimplified paper term.
    let paper_ongoing = Regex::Star(std::sync::Arc::new(Regex::Concat(
        std::sync::Arc::new(Regex::Sym(a)),
        std::sync::Arc::new(Regex::Union(
            std::sync::Arc::new(Regex::Concat(
                std::sync::Arc::new(Regex::Sym(b)),
                std::sync::Arc::new(Regex::Empty),
            )),
            std::sync::Arc::new(Regex::Sym(c)),
        )),
    )));
    let ab_rc = Arc::new(ab);
    let ours = Dfa::from_nfa(&Nfa::from_regex(&r, ab_rc.clone()));
    let papers = Dfa::from_nfa(&Nfa::from_regex(&paper_ongoing, ab_rc));
    assert!(ours.equivalent(&papers).is_ok());
}
