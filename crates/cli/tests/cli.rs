//! Integration tests for the `shelleyc` binary.

use std::io::Write as _;
use std::process::Command;

const PAPER: &str = r#"
@sys
class Valve:
    @op_initial
    def test(self):
        if ok:
            return ["open"]
        else:
            return ["clean"]

    @op
    def open(self):
        return ["close"]

    @op_final
    def close(self):
        return ["test"]

    @op_final
    def clean(self):
        return ["test"]

@claim("(!a.open) W b.open")
@sys(["a", "b"])
class BadSector:
    def __init__(self):
        self.a = Valve()
        self.b = Valve()

    @op_initial_final
    def open_a(self):
        match self.a.test():
            case ["open"]:
                self.a.open()
                return ["open_b"]
            case ["clean"]:
                self.a.clean()
                return []

    @op_final
    def open_b(self):
        match self.b.test():
            case ["open"]:
                self.b.open()
                self.a.close()
                self.b.close()
                return []
            case ["clean"]:
                self.b.clean()
                self.a.close()
                return []
"#;

const GOOD: &str = r#"
@sys
class Led:
    @op_initial
    def on(self):
        return ["off"]

    @op_final
    def off(self):
        return ["on"]
"#;

fn write_temp(name: &str, content: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("shelleyc-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(content.as_bytes()).unwrap();
    path
}

fn shelleyc(args: &[&str]) -> (String, String, Option<i32>) {
    let out = Command::new(env!("CARGO_BIN_EXE_shelleyc"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code(),
    )
}

#[test]
fn check_fails_on_the_paper_example_with_exact_output() {
    let path = write_temp("paper.py", PAPER);
    let (stdout, _, code) = shelleyc(&["check", path.to_str().unwrap()]);
    assert_eq!(code, Some(1));
    assert!(stdout.contains("Error in specification: INVALID SUBSYSTEM USAGE"));
    assert!(stdout.contains("Counter example: open_a, a.test, a.open"));
    assert!(stdout.contains("* Valve 'a': test, >open< (not final)"));
    assert!(stdout.contains("Error in specification: FAIL TO MEET REQUIREMENT"));
    assert!(stdout.contains("Formula: (!a.open) W b.open"));
}

#[test]
fn check_passes_on_a_correct_file() {
    let path = write_temp("good.py", GOOD);
    let (stdout, _, code) = shelleyc(&["check", path.to_str().unwrap()]);
    assert_eq!(code, Some(0), "{stdout}");
    assert!(stdout.contains("OK: 1 system(s) verified"));
}

#[test]
fn check_jobs_output_is_identical_to_sequential() {
    let path = write_temp("paper_jobs.py", PAPER);
    let sequential = shelleyc(&["check", path.to_str().unwrap(), "--jobs", "1"]);
    let parallel = shelleyc(&["check", path.to_str().unwrap(), "--jobs", "4"]);
    let auto = shelleyc(&["check", path.to_str().unwrap()]);
    assert_eq!(sequential, parallel);
    assert_eq!(sequential, auto);
    assert_eq!(sequential.2, Some(1));
    assert!(sequential.0.contains("INVALID SUBSYSTEM USAGE"));
}

#[test]
fn check_rejects_bad_jobs_value() {
    let path = write_temp("good_jobs.py", GOOD);
    let (_, stderr, code) = shelleyc(&["check", path.to_str().unwrap(), "--jobs", "many"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("invalid --jobs value"));
}

#[test]
fn watch_recheck_hits_the_cache_and_sees_edits() {
    use std::io::{BufRead as _, BufReader};
    use std::process::Stdio;

    let path = write_temp("watched.py", GOOD);
    let mut child = Command::new(env!("CARGO_BIN_EXE_shelleyc"))
        .args(["watch", path.to_str().unwrap(), "--jobs", "1"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary runs");
    let mut stdin = child.stdin.take().unwrap();
    let mut reader = BufReader::new(child.stdout.take().unwrap());
    // Each round streams its output ending in a `# round N:` marker, so
    // reading up to the marker synchronizes with the child between edits.
    let mut read_round = |marker: &str| -> String {
        let mut round = String::new();
        loop {
            let mut line = String::new();
            assert_ne!(reader.read_line(&mut line).unwrap(), 0, "stdout closed");
            round.push_str(&line);
            if line.starts_with(marker) {
                return round;
            }
        }
    };

    // Round 1: cold. Round 2: unchanged — everything cached.
    stdin.write_all(b"check\n").unwrap();
    let round1 = read_round("# round 1:");
    stdin.write_all(b"check\n").unwrap();
    let round2 = read_round("# round 2:");
    // Round 3: the protocol breaks (`on` is no longer initial).
    std::fs::write(&path, GOOD.replace("@op_initial", "@op")).unwrap();
    stdin.write_all(b"check\nquit\n").unwrap();
    let round3 = read_round("# round 3:");
    let status = child.wait().unwrap();

    assert_eq!(status.code(), Some(0));
    assert!(round1.contains("# round 1: parsed 1/1 files, extracted 1/1 classes, verified 1/1"));
    assert!(round1.contains("OK: 1 system(s) verified"), "{round1}");
    assert!(round2.contains("# round 2: parsed 0/1 files, extracted 0/1 classes, verified 0/1"));
    assert!(round2.contains("OK: 1 system(s) verified"), "{round2}");
    assert!(round3.contains("# round 3: parsed 1/1 files, extracted 1/1 classes, verified 1/1"));
    assert!(round3.contains("error"), "{round3}");
}

/// The golden byte-identity contract of the thin-client rewrite: one
/// `watch` round prints exactly what a one-shot `check` prints, plus the
/// `# round` marker line.
#[test]
fn watch_round_is_byte_identical_to_one_shot_check() {
    use std::io::{Read as _, Write as _};
    use std::process::Stdio;

    for (name, content) in [("golden_ok.py", GOOD), ("golden_bad.py", PAPER)] {
        let path = write_temp(name, content);
        let (check_stdout, _, _) = shelleyc(&["check", path.to_str().unwrap()]);

        let mut child = Command::new(env!("CARGO_BIN_EXE_shelleyc"))
            .args(["watch", path.to_str().unwrap()])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .spawn()
            .expect("binary runs");
        child
            .stdin
            .take()
            .unwrap()
            .write_all(b"check\nquit\n")
            .unwrap();
        let mut watch_stdout = String::new();
        child
            .stdout
            .take()
            .unwrap()
            .read_to_string(&mut watch_stdout)
            .unwrap();
        assert!(child.wait().unwrap().success());

        let (body, marker) = watch_stdout
            .split_once("# round 1:")
            .expect("round marker printed");
        assert_eq!(body, check_stdout, "watch round != check output for {name}");
        assert!(marker.contains("verified"));
    }
}

/// End-to-end daemon smoke over a real socket: `serve` + `connect`
/// prints exactly what a one-shot `check` prints, and `--shutdown`
/// stops the daemon and persists the cache.
#[test]
fn serve_and_connect_match_check_and_shut_down_cleanly() {
    let dir = std::env::temp_dir().join(format!("shelleyc-serve-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let socket = dir.join("daemon.sock");
    let cache = dir.join("cache.ndjson");
    let path = write_temp("served.py", PAPER);

    let mut daemon = Command::new(env!("CARGO_BIN_EXE_shelleyc"))
        .args([
            "serve",
            "--socket",
            socket.to_str().unwrap(),
            "--cache",
            cache.to_str().unwrap(),
        ])
        .spawn()
        .expect("binary runs");
    while !socket.exists() {
        std::thread::yield_now();
    }

    let (check_stdout, _, check_code) = shelleyc(&["check", path.to_str().unwrap()]);
    let (connect_stdout, _, connect_code) =
        shelleyc(&["connect", socket.to_str().unwrap(), path.to_str().unwrap()]);
    assert_eq!(connect_stdout, check_stdout);
    assert_eq!(connect_code, check_code);

    let (_, _, code) = shelleyc(&["connect", socket.to_str().unwrap(), "--shutdown"]);
    assert_eq!(code, Some(0));
    assert_eq!(daemon.wait().unwrap().code(), Some(0));
    assert!(cache.exists(), "shutdown persisted the verify cache");
}

/// `connect --stats` surfaces the daemon's workspace counters, including
/// the antichain inclusion-engine frontier/pruned totals, in both the
/// text and JSON renderings.
#[test]
fn connect_stats_reports_antichain_counters() {
    let dir = std::env::temp_dir().join(format!("shelleyc-stats-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let socket = dir.join("daemon.sock");
    // A conforming class: the check passes, so every `connect` exits 0.
    let path = write_temp(
        "stats.py",
        "@sys\nclass Led:\n    @op_initial\n    def on(self):\n        \
         return [\"off\"]\n\n    @op_final\n    def off(self):\n        \
         return [\"on\"]\n",
    );

    let mut daemon = Command::new(env!("CARGO_BIN_EXE_shelleyc"))
        .args(["serve", "--socket", socket.to_str().unwrap()])
        .spawn()
        .expect("binary runs");
    while !socket.exists() {
        std::thread::yield_now();
    }

    let (text, _, code) = shelleyc(&[
        "connect",
        socket.to_str().unwrap(),
        path.to_str().unwrap(),
        "--stats",
    ]);
    assert_eq!(code, Some(0));
    assert!(text.contains("# totals:"), "text stats header: {text}");
    assert!(
        text.contains("# inclusion engine:"),
        "antichain line: {text}"
    );

    let (json, _, code) = shelleyc(&[
        "connect",
        socket.to_str().unwrap(),
        "--stats",
        "--format",
        "json",
    ]);
    assert_eq!(code, Some(0));
    assert!(json.contains("\"totals\":"), "json stats: {json}");
    assert!(
        json.contains("\"antichain_frontier\""),
        "antichain counters in json stats: {json}"
    );

    let (_, _, code) = shelleyc(&["connect", socket.to_str().unwrap(), "--shutdown"]);
    assert_eq!(code, Some(0));
    assert_eq!(daemon.wait().unwrap().code(), Some(0));
}

#[test]
fn diagram_outputs_dot() {
    let path = write_temp("paper2.py", PAPER);
    let (stdout, _, code) = shelleyc(&["diagram", path.to_str().unwrap(), "Valve"]);
    assert_eq!(code, Some(0));
    assert!(stdout.starts_with("digraph \"Valve\""));
    assert!(stdout.contains("__start -> \"test\""));
}

#[test]
fn deps_outputs_dependency_graph() {
    let path = write_temp("paper3.py", PAPER);
    let (stdout, _, code) = shelleyc(&["deps", path.to_str().unwrap(), "Valve"]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("test/exit0"));
}

#[test]
fn integration_requires_composite() {
    let path = write_temp("paper4.py", PAPER);
    let (_, stderr, code) = shelleyc(&["integration", path.to_str().unwrap(), "Valve"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("base class"));
    let (stdout, _, code) = shelleyc(&["integration", path.to_str().unwrap(), "BadSector"]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("a.test"));
}

#[test]
fn smv_outputs_module() {
    let path = write_temp("paper5.py", PAPER);
    let (stdout, _, code) = shelleyc(&["smv", path.to_str().unwrap(), "Valve"]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("MODULE main"));
    assert!(stdout.contains("_stop"));
}

#[test]
fn infer_prints_behavior_regex() {
    let path = write_temp("paper6.py", PAPER);
    let (stdout, _, code) = shelleyc(&["infer", path.to_str().unwrap(), "BadSector", "open_a"]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("a.test"));
    assert!(stdout.contains("a.open"));
    assert!(stdout.contains("+"));
}

#[test]
fn usage_errors_on_bad_invocations() {
    let (_, stderr, code) = shelleyc(&["frobnicate"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("missing input file") || stderr.contains("usage"));
    let (_, stderr, code) = shelleyc(&["check", "/nonexistent/file.py"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("cannot read"));
}

#[test]
fn parse_errors_reported_with_position() {
    let path = write_temp("broken.py", "def broken(:\n    pass\n");
    let (stdout, _, code) = shelleyc(&["check", path.to_str().unwrap()]);
    assert_eq!(code, Some(1));
    assert!(stdout.contains("broken.py:1:"));
}

#[test]
fn stats_prints_model_sizes() {
    let path = write_temp("paper7.py", PAPER);
    let (stdout, _, code) = shelleyc(&["stats", path.to_str().unwrap()]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("Valve (base)"));
    assert!(stdout.contains("BadSector (composite)"));
    assert!(stdout.contains("spec automaton"));
}

#[test]
fn language_prints_a_regex() {
    let path = write_temp("paper8.py", PAPER);
    let (stdout, _, code) = shelleyc(&["language", path.to_str().unwrap(), "Valve"]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("test"));
    assert!(stdout.contains("·") || stdout.contains("+") || stdout.contains("ε"));
    // Composite languages include markers and qualified events.
    let (stdout, _, code) = shelleyc(&["language", path.to_str().unwrap(), "BadSector"]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("open_a"));
    assert!(stdout.contains("a.test"));
}

#[test]
fn multi_file_check_resolves_across_files() {
    let valve = write_temp(
        "mf_valve.py",
        GOOD, // Led class
    );
    let user = write_temp(
        "mf_user.py",
        r#"
@sys(["led"])
class Blinker:
    def __init__(self):
        self.led = Led()

    @op_initial_final
    def blink(self):
        self.led.on()
        self.led.off()
        return []
"#,
    );
    let (stdout, _, code) = shelleyc(&["check", user.to_str().unwrap(), valve.to_str().unwrap()]);
    assert_eq!(code, Some(0), "{stdout}");
    assert!(stdout.contains("OK: 2 system(s) verified"));
}

const IMPLICIT_RETURN: &str = r#"
@sys
class V:
    @op_initial_final
    def a(self):
        if x:
            return []
"#;

#[test]
fn allow_flag_suppresses_a_warning() {
    let path = write_temp("lint_allow.py", IMPLICIT_RETURN);
    let (stdout, _, code) = shelleyc(&["check", path.to_str().unwrap()]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("warning [W003]"), "{stdout}");

    let (stdout, _, code) = shelleyc(&["check", path.to_str().unwrap(), "-A", "W003"]);
    assert_eq!(code, Some(0), "{stdout}");
    assert!(!stdout.contains("W003"), "{stdout}");
}

#[test]
fn deny_flag_turns_a_warning_into_a_failure() {
    let path = write_temp("lint_deny.py", IMPLICIT_RETURN);
    let (stdout, _, code) = shelleyc(&["check", path.to_str().unwrap(), "-D", "W003"]);
    assert_eq!(code, Some(1), "{stdout}");
    assert!(stdout.contains("error [W003]"), "{stdout}");
}

#[test]
fn deny_warnings_promotes_everything_except_forced_warn() {
    let path = write_temp("lint_dw.py", IMPLICIT_RETURN);
    let (stdout, _, code) = shelleyc(&["check", path.to_str().unwrap(), "--deny-warnings"]);
    assert_eq!(code, Some(1), "{stdout}");
    let (stdout, _, code) = shelleyc(&[
        "check",
        path.to_str().unwrap(),
        "-D",
        "warnings",
        "-W",
        "W003",
    ]);
    assert_eq!(code, Some(0), "{stdout}");
    assert!(stdout.contains("warning [W003]"), "{stdout}");
}

#[test]
fn unknown_lint_code_is_a_usage_error() {
    let path = write_temp("lint_unknown.py", GOOD);
    let (_, stderr, code) = shelleyc(&["check", path.to_str().unwrap(), "-A", "E999"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("unknown diagnostic code"), "{stderr}");
}

#[test]
fn json_format_reports_positions() {
    let path = write_temp("fmt_json.py", IMPLICIT_RETURN);
    let (stdout, _, code) = shelleyc(&["check", path.to_str().unwrap(), "--format", "json"]);
    assert_eq!(code, Some(0), "{stdout}");
    assert!(stdout.contains("\"tool\": \"shelleyc\""));
    assert!(stdout.contains("\"code\": \"W003\""));
    assert!(stdout.contains("\"line\": 5"), "{stdout}");
}

#[test]
fn sarif_format_carries_the_paper_counterexample() {
    let path = write_temp("fmt_sarif.py", PAPER);
    let (stdout, _, code) = shelleyc(&["check", path.to_str().unwrap(), "--format=sarif"]);
    assert_eq!(code, Some(1), "{stdout}");
    assert!(stdout.contains("\"version\": \"2.1.0\""));
    assert!(stdout.contains("sarif-2.1.0.json"));
    assert!(stdout.contains("\"ruleId\": \"E100\""));
    assert!(
        stdout.contains("Counter example: open_a, a.test, a.open"),
        "{stdout}"
    );
    // The rule catalog rides along.
    assert!(stdout.contains("\"id\": \"W009\""));
}

#[test]
fn unknown_format_is_a_usage_error() {
    let path = write_temp("fmt_bad.py", GOOD);
    let (_, stderr, code) = shelleyc(&["check", path.to_str().unwrap(), "--format", "yaml"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("unknown format"), "{stderr}");
}

/// `GOOD` with one statement (line 6) that is outside the calculus and
/// degrades to `skip` under `--recover`.
const DEGRADABLE: &str = r#"
@sys
class Led:
    @op_initial
    def on(self):
        x = = 1
        return ["off"]

    @op_final
    def off(self):
        return ["on"]
"#;

#[test]
fn recover_degrades_unknown_syntax_to_a_w014_warning() {
    let path = write_temp("recover.py", DEGRADABLE);
    // Strict mode: a parse error, reported with its position.
    let (stdout, _, code) = shelleyc(&["check", path.to_str().unwrap()]);
    assert_eq!(code, Some(1), "{stdout}");
    assert!(stdout.contains("recover.py:6:"), "{stdout}");
    // Recovery mode: the statement degrades, verification still passes.
    let (stdout, _, code) = shelleyc(&["check", path.to_str().unwrap(), "--recover"]);
    assert_eq!(code, Some(0), "{stdout}");
    assert!(stdout.contains("warning [W014]"), "{stdout}");
    assert!(stdout.contains("construct degraded to `skip`"), "{stdout}");
    assert!(stdout.contains("OK: 1 system(s) verified"), "{stdout}");
}

#[test]
fn w014_level_control_accepts_lowercase_codes() {
    let path = write_temp("recover_levels.py", DEGRADABLE);
    let (stdout, _, code) = shelleyc(&["check", path.to_str().unwrap(), "--recover", "-A", "w014"]);
    assert_eq!(code, Some(0), "{stdout}");
    assert!(!stdout.contains("W014"), "{stdout}");
    let (stdout, _, code) = shelleyc(&["check", path.to_str().unwrap(), "--recover", "-D", "w014"]);
    assert_eq!(code, Some(1), "{stdout}");
    assert!(stdout.contains("error [W014]"), "{stdout}");
    let (stdout, _, code) = shelleyc(&[
        "check",
        path.to_str().unwrap(),
        "--recover",
        "--deny-warnings",
        "-W",
        "w014",
    ]);
    assert_eq!(code, Some(0), "{stdout}");
    assert!(stdout.contains("warning [W014]"), "{stdout}");
}

#[test]
fn w014_reaches_json_with_a_position() {
    let path = write_temp("recover_json.py", DEGRADABLE);
    let (stdout, _, code) = shelleyc(&[
        "check",
        path.to_str().unwrap(),
        "--recover",
        "--format",
        "json",
    ]);
    assert_eq!(code, Some(0), "{stdout}");
    assert!(stdout.contains("\"code\": \"W014\""), "{stdout}");
    assert!(stdout.contains("\"line\": 6"), "{stdout}");
}

#[test]
fn w014_reaches_sarif_with_a_rule_catalog_entry() {
    let path = write_temp("recover_sarif.py", DEGRADABLE);
    let (stdout, _, code) = shelleyc(&[
        "check",
        path.to_str().unwrap(),
        "--recover",
        "--format=sarif",
    ]);
    assert_eq!(code, Some(0), "{stdout}");
    assert!(stdout.contains("\"ruleId\": \"W014\""), "{stdout}");
    // The registry-driven rule catalog carries the new code even when
    // the run has no W014 result.
    let clean = write_temp("recover_sarif_clean.py", GOOD);
    let (stdout, _, _) = shelleyc(&["check", clean.to_str().unwrap(), "--format=sarif"]);
    assert!(stdout.contains("\"id\": \"W014\""), "{stdout}");
    assert!(stdout.contains("construct-degraded"), "{stdout}");
}

fn corpus_dir(name: &str, files: &[(&str, &str)]) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("shelleyc-tests").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    for (file, content) in files {
        std::fs::write(dir.join(file), content).unwrap();
    }
    dir
}

#[test]
fn corpus_reports_rates_over_a_directory() {
    let dir = corpus_dir(
        "corpus_rates",
        &[
            ("good.py", GOOD),
            ("paper.py", PAPER),
            ("degradable.py", DEGRADABLE),
        ],
    );
    // Strict: the degradable file fails to parse; the paper file parses
    // and extracts but fails verification.
    let (stdout, _, code) = shelleyc(&["corpus", dir.to_str().unwrap()]);
    assert_eq!(code, Some(0), "{stdout}");
    assert!(stdout.contains("corpus: 3 file(s)"), "{stdout}");
    assert!(stdout.contains("parse:   2/3 (66.7%)"), "{stdout}");
    assert!(stdout.contains("extract: 2/3 (66.7%)"), "{stdout}");
    assert!(stdout.contains("verify:  1/3 (33.3%)"), "{stdout}");
    // Recovery lifts neither strict parse nor verify for the degradable
    // file (it has degraded constructs) but extraction now runs on it.
    let (stdout, _, code) = shelleyc(&["corpus", dir.to_str().unwrap(), "--recover"]);
    assert_eq!(code, Some(0), "{stdout}");
    assert!(stdout.contains("extract: 3/3 (100.0%)"), "{stdout}");
}

#[test]
fn corpus_gates_fail_the_run_and_json_records_the_rates() {
    let dir = corpus_dir("corpus_gate", &[("good.py", GOOD), ("bad.py", DEGRADABLE)]);
    let json = dir.join("rates.json");
    let (stdout, _, code) = shelleyc(&[
        "corpus",
        dir.to_str().unwrap(),
        "--min-parse",
        "100",
        "--json",
        json.to_str().unwrap(),
    ]);
    assert_eq!(code, Some(1), "{stdout}");
    assert!(stdout.contains("FAIL"), "{stdout}");
    let written = std::fs::read_to_string(&json).unwrap();
    assert!(written.contains("\"files\": 2"), "{written}");
    assert!(written.contains("\"parse_ok\": 1"), "{written}");
    assert!(written.contains("\"parse_rate\": 50.0"), "{written}");
}

#[test]
fn corpus_min_verify_gates_the_verify_rate() {
    let dir = corpus_dir(
        "corpus_verify_gate",
        &[("good.py", GOOD), ("paper.py", PAPER)],
    );
    // 1/2 files verify: a 50% floor passes, a 51% floor fails with the
    // exact gate line.
    let (stdout, _, code) = shelleyc(&["corpus", dir.to_str().unwrap(), "--min-verify", "50"]);
    assert_eq!(code, Some(0), "{stdout}");
    assert!(stdout.contains("verify:  1/2 (50.0%)"), "{stdout}");
    let (stdout, _, code) = shelleyc(&["corpus", dir.to_str().unwrap(), "--min-verify", "51"]);
    assert_eq!(code, Some(1), "{stdout}");
    assert!(
        stdout.contains("FAIL: verify rate 50.0% below --min-verify 51%"),
        "{stdout}"
    );
    // Bad percentages are rejected like the other gates.
    let (_, stderr, code) = shelleyc(&["corpus", dir.to_str().unwrap(), "--min-verify", "200"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("--min-verify"), "{stderr}");
}

#[test]
fn usage_string_agrees_with_the_flag_table() {
    // The usage text (printed on any usage error) must mention every flag
    // the parser accepts — a missing one is how `--min-verify` went
    // undocumented once. Exercise each spelling against the parser too,
    // so the list below stays tied to reality in both directions.
    let (_, usage, code) = shelleyc(&["frobnicate"]);
    assert_eq!(code, Some(2));
    let flags = [
        "-A",
        "-W",
        "-D",
        "--deny-warnings",
        "--format",
        "--jobs",
        "--socket",
        "--cache",
        "--shutdown",
        "--recover",
        "--json",
        "--min-parse",
        "--min-extract",
        "--min-verify",
        "--stats",
        "--backend",
    ];
    for flag in flags {
        assert!(
            usage.contains(flag),
            "usage text is missing `{flag}`:\n{usage}"
        );
        // Known to the parser: an unknown flag error names the flag, a
        // known one fails differently (missing value/command instead).
        let (_, stderr, _) = shelleyc(&[flag]);
        assert!(
            !stderr.contains(&format!("unknown flag `{flag}`")),
            "flag table is missing `{flag}`:\n{stderr}"
        );
    }
}

#[test]
fn check_accepts_every_backend_with_identical_verdicts() {
    let path = write_temp("paper_backend.py", PAPER);
    let auto = shelleyc(&["check", path.to_str().unwrap()]);
    for backend in ["auto", "explicit", "symbolic"] {
        let run = shelleyc(&["check", path.to_str().unwrap(), "--backend", backend]);
        assert_eq!(run, auto, "--backend {backend} diverged");
    }
    // The SMV engine agrees on the verdict; its witness may differ on
    // marker-bearing composites, so compare the failure shape only.
    let (stdout, _, code) = shelleyc(&["check", path.to_str().unwrap(), "--backend", "smv"]);
    assert_eq!(code, Some(1), "{stdout}");
    assert!(stdout.contains("FAIL TO MEET REQUIREMENT"), "{stdout}");
    assert!(stdout.contains("Formula: (!a.open) W b.open"), "{stdout}");

    let (_, stderr, code) = shelleyc(&["check", path.to_str().unwrap(), "--backend", "nusmv"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("unknown backend `nusmv`"), "{stderr}");
}

#[test]
fn corpus_usage_errors() {
    let (_, stderr, code) = shelleyc(&["corpus", "/nonexistent-dir"]);
    assert_eq!(code, Some(2), "{stderr}");
    let empty = corpus_dir("corpus_empty", &[]);
    let (_, stderr, code) = shelleyc(&["corpus", empty.to_str().unwrap()]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("no .py files"), "{stderr}");
    let dir = corpus_dir("corpus_badpct", &[("good.py", GOOD)]);
    let (_, stderr, code) = shelleyc(&["corpus", dir.to_str().unwrap(), "--min-parse", "potato"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("--min-parse"), "{stderr}");
}

#[test]
fn replay_validates_traces() {
    let program = write_temp("paper9.py", PAPER);
    let good = write_temp(
        "trace_good.txt",
        "test\nopen\nclose\n# comment\ntest\nclean\n",
    );
    let bad = write_temp("trace_bad.txt", "open\n");
    let incomplete = write_temp("trace_incomplete.txt", "test\nopen\n");

    let (stdout, _, code) = shelleyc(&[
        "replay",
        program.to_str().unwrap(),
        "Valve",
        good.to_str().unwrap(),
    ]);
    assert_eq!(code, Some(0), "{stdout}");
    assert!(stdout.contains("complete usage"));

    let (stdout, _, code) = shelleyc(&[
        "replay",
        program.to_str().unwrap(),
        "Valve",
        bad.to_str().unwrap(),
    ]);
    assert_eq!(code, Some(1));
    assert!(stdout.contains("not allowed"));
    assert!(stdout.contains(":1:"), "line number expected: {stdout}");

    let (stdout, _, code) = shelleyc(&[
        "replay",
        program.to_str().unwrap(),
        "Valve",
        incomplete.to_str().unwrap(),
    ]);
    assert_eq!(code, Some(1));
    assert!(stdout.contains("incomplete"));
}
