//! `shelleyc` — command-line front end for Shelley model inference and
//! verification of MicroPython classes.
//!
//! ```text
//! shelleyc check <file.py> [more.py ...]  verify all @sys classes
//! shelleyc diagram <file.py> <Class>      DOT operation diagram (Fig. 1)
//! shelleyc deps <file.py> <Class>         DOT dependency graph (Fig. 3)
//! shelleyc integration <file.py> <Class>  DOT integration automaton (Fig. 2)
//! shelleyc smv <file.py> <Class>          NuSMV model (future work, §5)
//! shelleyc infer <file.py> <Class> <op>   inferred behavior regex (Fig. 4)
//! shelleyc stats <file.py>                 model-size summary per system
//! shelleyc language <file.py> <Class>      whole-system language as a regex
//! shelleyc replay <file.py> <Class> <trace> validate a recorded trace
//! ```
//!
//! `replay` reads a trace file with one operation name per line (blank
//! lines and `#` comments ignored) and checks it against the class's
//! model — offline runtime verification of an execution log.

use shelley_core::extract::dependency::DependencyGraph;
use shelley_core::{
    build_integration, check_source_with, integration_diagram, spec_diagram, LintConfig, LintLevel,
};
use shelley_smv::nfa_to_smv;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(CliError::Verification(output)) => {
            print!("{output}");
            ExitCode::FAILURE
        }
        Err(CliError::Usage(msg)) => {
            eprintln!("{msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "usage:
  shelleyc check <file.py> [more.py ...]
      [-A <code>] [-W <code>] [-D <code>|-D warnings] [--deny-warnings]
      [--format text|json|sarif]
  shelleyc diagram <file.py> <Class>
  shelleyc deps <file.py> <Class>
  shelleyc integration <file.py> <Class>
  shelleyc smv <file.py> <Class>
  shelleyc infer <file.py> <Class> <operation>
  shelleyc stats <file.py>
  shelleyc language <file.py> <Class>
  shelleyc replay <file.py> <Class> <trace-file>";

enum CliError {
    Usage(String),
    Verification(String),
}

/// The `--format` of `check` output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
    Sarif,
}

fn parse_format(name: &str) -> Result<Format, CliError> {
    match name {
        "text" => Ok(Format::Text),
        "json" => Ok(Format::Json),
        "sarif" => Ok(Format::Sarif),
        other => Err(CliError::Usage(format!(
            "unknown format `{other}` (expected text, json, or sarif)"
        ))),
    }
}

/// Splits `args` into positionals and the lint/format flags, which may
/// appear anywhere on the command line.
fn parse_args(args: &[String]) -> Result<(Vec<String>, LintConfig, Format), CliError> {
    let mut positionals = Vec::new();
    let mut config = LintConfig::new();
    let mut format = Format::Text;
    let mut i = 0;
    while i < args.len() {
        let arg = args[i].as_str();
        match arg {
            "-A" | "-W" | "-D" => {
                let code = args
                    .get(i + 1)
                    .ok_or_else(|| CliError::Usage(format!("{arg} requires a diagnostic code")))?;
                i += 1;
                if arg == "-D" && code == "warnings" {
                    config.deny_warnings = true;
                } else {
                    let level = match arg {
                        "-A" => LintLevel::Allow,
                        "-W" => LintLevel::Warn,
                        _ => LintLevel::Deny,
                    };
                    config
                        .set(code, level)
                        .map_err(|e| CliError::Usage(e.to_string()))?;
                }
            }
            "--deny-warnings" => config.deny_warnings = true,
            "--format" => {
                let name = args
                    .get(i + 1)
                    .ok_or_else(|| CliError::Usage("--format requires a value".into()))?;
                i += 1;
                format = parse_format(name)?;
            }
            _ if arg.starts_with("--format=") => {
                format = parse_format(&arg["--format=".len()..])?;
            }
            _ if arg.starts_with('-') && arg.len() > 1 => {
                return Err(CliError::Usage(format!("unknown flag `{arg}`")));
            }
            _ => positionals.push(args[i].clone()),
        }
        i += 1;
    }
    Ok((positionals, config, format))
}

fn run(raw_args: &[String]) -> Result<String, CliError> {
    let (args, config, format) = parse_args(raw_args)?;
    let cmd = args
        .first()
        .ok_or_else(|| CliError::Usage("missing command".into()))?;
    let path = args
        .get(1)
        .ok_or_else(|| CliError::Usage("missing input file".into()))?;
    let source = std::fs::read_to_string(path)
        .map_err(|e| CliError::Usage(format!("cannot read {path}: {e}")))?;
    let file = micropython_parser::SourceFile::new(path.clone(), source.clone());
    let checked = check_source_with(&source, &config).map_err(|e| {
        let (line, col) = file.line_col(e.span.start);
        CliError::Verification(format!("{path}:{line}:{col}: {e}\n"))
    })?;

    let class_arg = |i: usize| -> Result<&shelley_core::System, CliError> {
        let name = args
            .get(i)
            .ok_or_else(|| CliError::Usage("missing class name".into()))?;
        checked
            .systems
            .get(name)
            .ok_or_else(|| CliError::Usage(format!("no @sys class `{name}` in {path}")))
    };

    match cmd.as_str() {
        "check" => {
            // Additional files form a multi-file project.
            let multi_file = args.len() > 2;
            let checked = if multi_file {
                let mut files = vec![shelley_core::ProjectFile::new(path.clone(), source.clone())];
                for extra in &args[2..] {
                    let text = std::fs::read_to_string(extra)
                        .map_err(|e| CliError::Usage(format!("cannot read {extra}: {e}")))?;
                    files.push(shelley_core::ProjectFile::new(extra.clone(), text));
                }
                shelley_core::check_project_with(&files, &config)
                    .map_err(|e| CliError::Verification(format!("{e}\n")))?
            } else {
                checked
            };
            // Machine formats cannot attribute merged-project spans to
            // their files, so positions are only emitted for single files.
            let position_source = (!multi_file).then_some(&file);
            let out = match format {
                Format::Text => {
                    let mut out = checked.report.render(position_source);
                    if checked.report.passed() {
                        out.push_str(&format!(
                            "OK: {} system(s) verified\n",
                            checked.systems.len()
                        ));
                    }
                    out
                }
                Format::Json => checked.report.diagnostics.render_json(position_source),
                Format::Sarif => checked.report.diagnostics.render_sarif(position_source),
            };
            if checked.report.passed() {
                Ok(out)
            } else {
                Err(CliError::Verification(out))
            }
        }
        "diagram" => {
            let system = class_arg(2)?;
            Ok(spec_diagram(&system.spec))
        }
        "deps" => {
            let system = class_arg(2)?;
            Ok(DependencyGraph::from_spec(&system.spec).to_dot())
        }
        "integration" => {
            let system = class_arg(2)?;
            if !system.is_composite() {
                return Err(CliError::Usage(format!(
                    "`{}` is a base class; integration diagrams require a composite",
                    system.name
                )));
            }
            let integration = build_integration(system);
            Ok(integration_diagram(&system.name, &integration))
        }
        "smv" => {
            let system = class_arg(2)?;
            let nfa = if system.is_composite() {
                build_integration(system).nfa
            } else {
                let mut ab = shelley_regular::Alphabet::new();
                shelley_core::spec::intern_spec_events(&system.spec, None, &mut ab);
                shelley_core::spec::spec_automaton(&system.spec, None, std::rc::Rc::new(ab))
                    .nfa()
                    .clone()
            };
            // Claims become LTLSPECs in the emitted model; atoms must be
            // interned in the model alphabet, so parse against a copy.
            let mut scratch = (**nfa.alphabet()).clone();
            let mut claims = Vec::new();
            for claim in &system.claims {
                if let Ok(f) = shelley_ltlf::parse_formula(&claim.formula, &mut scratch) {
                    claims.push(f);
                }
            }
            let model = nfa_to_smv(&nfa, &format!("Shelley model of {}", system.name), &claims);
            Ok(model.to_smv())
        }
        "infer" => {
            let system = class_arg(2)?;
            let op = args
                .get(3)
                .ok_or_else(|| CliError::Usage("missing operation name".into()))?;
            let info = system.composite().ok_or_else(|| {
                CliError::Usage(format!(
                    "`{}` is a base class; behavior inference applies to composites",
                    system.name
                ))
            })?;
            let lowered = info.methods.get(op).ok_or_else(|| {
                CliError::Usage(format!("no operation `{op}` on `{}`", system.name))
            })?;
            let behavior = shelley_ir::infer(&lowered.program);
            Ok(format!("{}\n", behavior.display(&info.alphabet)))
        }
        "replay" => {
            let system = class_arg(2)?;
            let trace_path = args
                .get(3)
                .ok_or_else(|| CliError::Usage("missing trace file".into()))?;
            let trace_text = std::fs::read_to_string(trace_path)
                .map_err(|e| CliError::Usage(format!("cannot read {trace_path}: {e}")))?;
            let ops: Vec<&str> = trace_text
                .lines()
                .map(str::trim)
                .filter(|l| !l.is_empty() && !l.starts_with('#'))
                .collect();
            let mut monitor = shelley_runtime::SpecMonitor::new(&system.spec);
            for (i, op) in ops.iter().enumerate() {
                if let Err(e) = monitor.invoke(op) {
                    return Err(CliError::Verification(format!(
                        "{trace_path}:{}: {e}\n",
                        i + 1
                    )));
                }
            }
            monitor.finish().map_err(|e| {
                CliError::Verification(format!("{trace_path}: trace is incomplete: {e}\n"))
            })?;
            Ok(format!(
                "OK: {} operation(s) form a complete usage of `{}`\n",
                ops.len(),
                system.name
            ))
        }
        "language" => {
            let system = class_arg(2)?;
            if let Some(_info) = system.composite() {
                let integration = build_integration(system);
                let dfa = shelley_regular::Dfa::from_nfa(&integration.nfa).minimize();
                let regex = dfa.to_regex();
                Ok(format!("{}\n", regex.display(integration.nfa.alphabet())))
            } else {
                let mut ab = shelley_regular::Alphabet::new();
                shelley_core::spec::intern_spec_events(&system.spec, None, &mut ab);
                let ab = std::rc::Rc::new(ab);
                let auto = shelley_core::spec::spec_automaton(&system.spec, None, ab.clone());
                let dfa = shelley_regular::Dfa::from_nfa(auto.nfa()).minimize();
                Ok(format!("{}\n", dfa.to_regex().display(&ab)))
            }
        }
        "stats" => {
            let mut out = String::new();
            for system in checked.systems.iter() {
                out.push_str(&shelley_core::system_stats(system).to_string());
                out.push('\n');
            }
            if checked.systems.is_empty() {
                out.push_str("no @sys classes found\n");
            }
            Ok(out)
        }
        other => Err(CliError::Usage(format!("unknown command `{other}`"))),
    }
}
