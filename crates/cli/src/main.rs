//! `shelleyc` — command-line front end for Shelley model inference and
//! verification of MicroPython classes.
//!
//! ```text
//! shelleyc check <file.py> [more.py ...]  verify all @sys classes
//! shelleyc corpus <dir>                   parse/extract/verify rates over a corpus
//! shelleyc watch <file.py> [more.py ...]  re-check on demand (reads stdin)
//! shelleyc serve [--socket p] [--cache p] persistent verification daemon
//! shelleyc connect <socket> [file.py ...] one-shot client of a daemon
//! shelleyc diagram <file.py> <Class>      DOT operation diagram (Fig. 1)
//! shelleyc deps <file.py> <Class>         DOT dependency graph (Fig. 3)
//! shelleyc integration <file.py> <Class>  DOT integration automaton (Fig. 2)
//! shelleyc smv <file.py> <Class>          NuSMV model (§5 translation)
//! shelleyc infer <file.py> <Class> <op>   inferred behavior regex (Fig. 4)
//! shelleyc stats <file.py>                 model-size summary per system
//! shelleyc language <file.py> <Class>      whole-system language as a regex
//! shelleyc replay <file.py> <Class> <trace> validate a recorded trace
//! ```
//!
//! `check` and `watch` accept `--jobs N` (`-j N`) to size the worker pool
//! that verification fans out over (`0`, the default, uses the available
//! parallelism). `watch` keeps a [`shelley_core::Workspace`] alive and
//! reads commands from stdin — `check` re-reads the files and re-verifies
//! only what changed, printing a cache-stats line per round; `quit` exits.
//!
//! `replay` reads a trace file with one operation name per line (blank
//! lines and `#` comments ignored) and checks it against the class's
//! model — offline runtime verification of an execution log.

use shelley_core::extract::dependency::DependencyGraph;
use shelley_core::{
    build_integration, integration_diagram, spec_diagram, Backend, Checker, LintConfig, LintLevel,
};
use shelley_daemon::{Client, Engine};
use shelley_smv::nfa_to_smv;
use std::io::BufRead;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(CliError::Verification(output)) => {
            print!("{output}");
            ExitCode::FAILURE
        }
        Err(CliError::Usage(msg)) => {
            eprintln!("{msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "usage:
  shelleyc check <file.py> [more.py ...]
      [-A <code>] [-W <code>] [-D <code>|-D warnings] [--deny-warnings]
      [--format text|json|sarif] [--jobs N] [--recover]
      [--backend auto|explicit|symbolic|smv]
  shelleyc corpus <dir> [--recover] [--json <path>]
      [--min-parse <pct>] [--min-extract <pct>] [--min-verify <pct>] [--jobs N]
  shelleyc watch <file.py> [more.py ...] [--jobs N] [--recover] [--backend <name>]
      (then `check` or `quit` on stdin)
  shelleyc serve [--socket <path>] [--cache <path>] [--jobs N] [--recover]
      [--backend <name>]
      (JSON protocol on stdin/stdout, or many clients on the socket)
  shelleyc connect <socket> [file.py ...] [--shutdown] [--recover] [--backend <name>]
      [--stats] [--format text|json]
  shelleyc diagram <file.py> <Class>
  shelleyc deps <file.py> <Class>
  shelleyc integration <file.py> <Class>
  shelleyc smv <file.py> <Class>
  shelleyc infer <file.py> <Class> <operation>
  shelleyc stats <file.py>
  shelleyc language <file.py> <Class>
  shelleyc replay <file.py> <Class> <trace-file>";

enum CliError {
    Usage(String),
    Verification(String),
}

/// The `--format` of `check` output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
    Sarif,
}

/// Every option a `shelleyc` command can take, collected by the one
/// flag-table parser below. Commands read the fields they care about and
/// ignore the rest.
struct Options {
    config: LintConfig,
    format: Format,
    jobs: usize,
    socket: Option<String>,
    cache: Option<String>,
    shutdown: bool,
    recover: bool,
    json_out: Option<String>,
    min_parse: Option<f64>,
    min_extract: Option<f64>,
    min_verify: Option<f64>,
    backend: Backend,
    stats: bool,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            config: LintConfig::new(),
            format: Format::Text,
            jobs: 0,
            socket: None,
            cache: None,
            shutdown: false,
            recover: false,
            json_out: None,
            min_parse: None,
            min_extract: None,
            min_verify: None,
            backend: Backend::Auto,
            stats: false,
        }
    }
}

/// One command-line flag: its spellings, whether it takes a value (and
/// what to call it in errors), and how it lands in [`Options`].
struct Flag {
    /// Accepted spellings, e.g. `&["--jobs", "-j"]`.
    names: &'static [&'static str],
    /// `Some(noun)` when the flag takes a value; the noun names it in
    /// `--flag requires a <noun>` errors.
    value: Option<&'static str>,
    /// Folds the parsed occurrence into the options. `value` is `""`
    /// for flags that take none.
    apply: fn(&mut Options, flag: &str, value: &str) -> Result<(), CliError>,
}

fn set_lint(opts: &mut Options, flag: &str, code: &str) -> Result<(), CliError> {
    if flag == "-D" && code == "warnings" {
        opts.config.deny_warnings = true;
        return Ok(());
    }
    let level = match flag {
        "-A" => LintLevel::Allow,
        "-W" => LintLevel::Warn,
        _ => LintLevel::Deny,
    };
    opts.config
        .set(code, level)
        .map_err(|e| CliError::Usage(e.to_string()))
}

/// The single flag table every command parses against. `--flag value`
/// and `--flag=value` are both accepted for every value-taking flag.
const FLAGS: &[Flag] = &[
    Flag {
        names: &["-A"],
        value: Some("diagnostic code"),
        apply: set_lint,
    },
    Flag {
        names: &["-W"],
        value: Some("diagnostic code"),
        apply: set_lint,
    },
    Flag {
        names: &["-D"],
        value: Some("diagnostic code"),
        apply: set_lint,
    },
    Flag {
        names: &["--deny-warnings"],
        value: None,
        apply: |opts, _, _| {
            opts.config.deny_warnings = true;
            Ok(())
        },
    },
    Flag {
        names: &["--format"],
        value: Some("value"),
        apply: |opts, _, value| {
            opts.format = match value {
                "text" => Format::Text,
                "json" => Format::Json,
                "sarif" => Format::Sarif,
                other => {
                    return Err(CliError::Usage(format!(
                        "unknown format `{other}` (expected text, json, or sarif)"
                    )))
                }
            };
            Ok(())
        },
    },
    Flag {
        names: &["--jobs", "-j"],
        value: Some("number"),
        apply: |opts, _, value| {
            opts.jobs = value
                .parse()
                .map_err(|_| CliError::Usage(format!("invalid --jobs value `{value}`")))?;
            Ok(())
        },
    },
    Flag {
        names: &["--socket"],
        value: Some("path"),
        apply: |opts, _, value| {
            opts.socket = Some(value.to_string());
            Ok(())
        },
    },
    Flag {
        names: &["--cache"],
        value: Some("path"),
        apply: |opts, _, value| {
            opts.cache = Some(value.to_string());
            Ok(())
        },
    },
    Flag {
        names: &["--shutdown"],
        value: None,
        apply: |opts, _, _| {
            opts.shutdown = true;
            Ok(())
        },
    },
    Flag {
        names: &["--recover"],
        value: None,
        apply: |opts, _, _| {
            opts.recover = true;
            Ok(())
        },
    },
    Flag {
        names: &["--json"],
        value: Some("path"),
        apply: |opts, _, value| {
            opts.json_out = Some(value.to_string());
            Ok(())
        },
    },
    Flag {
        names: &["--min-parse"],
        value: Some("percentage"),
        apply: |opts, flag, value| {
            opts.min_parse = Some(parse_percentage(flag, value)?);
            Ok(())
        },
    },
    Flag {
        names: &["--min-extract"],
        value: Some("percentage"),
        apply: |opts, flag, value| {
            opts.min_extract = Some(parse_percentage(flag, value)?);
            Ok(())
        },
    },
    Flag {
        names: &["--min-verify"],
        value: Some("percentage"),
        apply: |opts, flag, value| {
            opts.min_verify = Some(parse_percentage(flag, value)?);
            Ok(())
        },
    },
    Flag {
        names: &["--stats"],
        value: None,
        apply: |opts, _, _| {
            opts.stats = true;
            Ok(())
        },
    },
    Flag {
        names: &["--backend"],
        value: Some("backend name"),
        apply: |opts, _, value| {
            opts.backend = value
                .parse()
                .map_err(|e: shelley_core::ParseBackendError| CliError::Usage(e.to_string()))?;
            Ok(())
        },
    },
];

fn parse_percentage(flag: &str, value: &str) -> Result<f64, CliError> {
    match value.parse::<f64>() {
        Ok(pct) if (0.0..=100.0).contains(&pct) => Ok(pct),
        _ => Err(CliError::Usage(format!(
            "invalid {flag} value `{value}` (expected a percentage 0..=100)"
        ))),
    }
}

/// Splits `args` into positionals and flags (which may appear anywhere),
/// driving every flag through the declarative [`FLAGS`] table.
fn parse_args(args: &[String]) -> Result<(Vec<String>, Options), CliError> {
    let mut positionals = Vec::new();
    let mut opts = Options::default();
    let mut i = 0;
    while i < args.len() {
        let arg = args[i].as_str();
        // `--flag=value` splits in place; `--flag value` consumes the
        // next argument.
        let (name, inline_value) = match arg.split_once('=') {
            Some((name, value)) if name.starts_with("--") => (name, Some(value)),
            _ => (arg, None),
        };
        match FLAGS.iter().find(|f| f.names.contains(&name)) {
            Some(flag) => {
                let value = match (flag.value, inline_value) {
                    (Some(_), Some(value)) => value,
                    (Some(noun), None) => {
                        i += 1;
                        args.get(i)
                            .map(String::as_str)
                            .ok_or_else(|| CliError::Usage(format!("{name} requires a {noun}")))?
                    }
                    (None, Some(_)) => {
                        return Err(CliError::Usage(format!("{name} does not take a value")))
                    }
                    (None, None) => "",
                };
                (flag.apply)(&mut opts, name, value)?;
            }
            None if arg.starts_with('-') && arg.len() > 1 => {
                return Err(CliError::Usage(format!("unknown flag `{arg}`")));
            }
            None => positionals.push(args[i].clone()),
        }
        i += 1;
    }
    Ok((positionals, opts))
}

fn run(raw_args: &[String]) -> Result<String, CliError> {
    let (args, opts) = parse_args(raw_args)?;
    let format = opts.format;
    let cmd = args
        .first()
        .ok_or_else(|| CliError::Usage("missing command".into()))?;
    let checker = Checker::new()
        .lints(opts.config.clone())
        .jobs(opts.jobs)
        .recover(opts.recover)
        .backend(opts.backend);
    if cmd == "watch" {
        return run_watch(&args[1..], checker);
    }
    if cmd == "corpus" {
        return run_corpus(&args[1..], &opts, checker);
    }
    if cmd == "serve" {
        return run_serve(&opts, checker);
    }
    if cmd == "connect" {
        return run_connect(&args[1..], &opts);
    }
    let path = args
        .get(1)
        .ok_or_else(|| CliError::Usage("missing input file".into()))?;
    let source = std::fs::read_to_string(path)
        .map_err(|e| CliError::Usage(format!("cannot read {path}: {e}")))?;
    let file = micropython_parser::SourceFile::new(path.clone(), source.clone());
    let checked = checker.check_source(&source).map_err(|e| {
        let (line, col) = file.line_col(e.error.span.start);
        CliError::Verification(format!("{path}:{line}:{col}: {}\n", e.error))
    })?;

    let class_arg = |i: usize| -> Result<&shelley_core::System, CliError> {
        let name = args
            .get(i)
            .ok_or_else(|| CliError::Usage("missing class name".into()))?;
        checked
            .systems
            .get(name)
            .ok_or_else(|| CliError::Usage(format!("no @sys class `{name}` in {path}")))
    };

    match cmd.as_str() {
        "check" => {
            // Additional files form a multi-file project.
            let multi_file = args.len() > 2;
            let checked = if multi_file {
                let mut files = vec![shelley_core::ProjectFile::new(path.clone(), source.clone())];
                for extra in &args[2..] {
                    let text = std::fs::read_to_string(extra)
                        .map_err(|e| CliError::Usage(format!("cannot read {extra}: {e}")))?;
                    files.push(shelley_core::ProjectFile::new(extra.clone(), text));
                }
                checker
                    .check_files(&files)
                    .map_err(|e| CliError::Verification(format!("{e}\n")))?
            } else {
                checked
            };
            // Machine formats cannot attribute merged-project spans to
            // their files, so positions are only emitted for single files.
            let position_source = (!multi_file).then_some(&file);
            let out = match format {
                Format::Text => {
                    let mut out = checked.report.render(position_source);
                    if checked.report.passed() {
                        out.push_str(&format!(
                            "OK: {} system(s) verified\n",
                            checked.systems.len()
                        ));
                    }
                    out
                }
                Format::Json => checked.report.diagnostics.render_json(position_source),
                Format::Sarif => checked.report.diagnostics.render_sarif(position_source),
            };
            if checked.report.passed() {
                Ok(out)
            } else {
                Err(CliError::Verification(out))
            }
        }
        "diagram" => {
            let system = class_arg(2)?;
            Ok(spec_diagram(&system.spec))
        }
        "deps" => {
            let system = class_arg(2)?;
            Ok(DependencyGraph::from_spec(&system.spec).to_dot())
        }
        "integration" => {
            let system = class_arg(2)?;
            if !system.is_composite() {
                return Err(CliError::Usage(format!(
                    "`{}` is a base class; integration diagrams require a composite",
                    system.name
                )));
            }
            let integration = build_integration(system);
            Ok(integration_diagram(&system.name, &integration))
        }
        "smv" => {
            let system = class_arg(2)?;
            let nfa = if system.is_composite() {
                build_integration(system).nfa
            } else {
                let mut ab = shelley_regular::Alphabet::new();
                shelley_core::spec::intern_spec_events(&system.spec, None, &mut ab);
                shelley_core::spec::spec_automaton(&system.spec, None, std::sync::Arc::new(ab))
                    .nfa()
                    .clone()
            };
            // Claims become LTLSPECs in the emitted model; atoms must be
            // interned in the model alphabet, so parse against a copy.
            let mut scratch = (**nfa.alphabet()).clone();
            let mut claims = Vec::new();
            for claim in &system.claims {
                if let Ok(f) = shelley_ltlf::parse_formula(&claim.formula, &mut scratch) {
                    claims.push(f);
                }
            }
            let model = nfa_to_smv(&nfa, &format!("Shelley model of {}", system.name), &claims);
            Ok(model.to_smv())
        }
        "infer" => {
            let system = class_arg(2)?;
            let op = args
                .get(3)
                .ok_or_else(|| CliError::Usage("missing operation name".into()))?;
            let info = system.composite().ok_or_else(|| {
                CliError::Usage(format!(
                    "`{}` is a base class; behavior inference applies to composites",
                    system.name
                ))
            })?;
            let lowered = info.methods.get(op).ok_or_else(|| {
                CliError::Usage(format!("no operation `{op}` on `{}`", system.name))
            })?;
            let behavior = shelley_ir::infer(&lowered.program);
            Ok(format!("{}\n", behavior.display(&info.alphabet)))
        }
        "replay" => {
            let system = class_arg(2)?;
            let trace_path = args
                .get(3)
                .ok_or_else(|| CliError::Usage("missing trace file".into()))?;
            let trace_text = std::fs::read_to_string(trace_path)
                .map_err(|e| CliError::Usage(format!("cannot read {trace_path}: {e}")))?;
            let ops: Vec<&str> = trace_text
                .lines()
                .map(str::trim)
                .filter(|l| !l.is_empty() && !l.starts_with('#'))
                .collect();
            let mut monitor = shelley_runtime::SpecMonitor::new(&system.spec);
            for (i, op) in ops.iter().enumerate() {
                if let Err(e) = monitor.invoke(op) {
                    return Err(CliError::Verification(format!(
                        "{trace_path}:{}: {e}\n",
                        i + 1
                    )));
                }
            }
            monitor.finish().map_err(|e| {
                CliError::Verification(format!("{trace_path}: trace is incomplete: {e}\n"))
            })?;
            Ok(format!(
                "OK: {} operation(s) form a complete usage of `{}`\n",
                ops.len(),
                system.name
            ))
        }
        "language" => {
            let system = class_arg(2)?;
            // Regex extraction needs the whole table: materialize the lazy
            // view (export-grade escape hatch), then minimize.
            use shelley_regular::lang::{self, NfaView};
            if let Some(_info) = system.composite() {
                let integration = build_integration(system);
                let dfa = lang::materialize(&NfaView::new(&integration.nfa)).minimize();
                let regex = dfa.to_regex();
                Ok(format!("{}\n", regex.display(integration.nfa.alphabet())))
            } else {
                let mut ab = shelley_regular::Alphabet::new();
                shelley_core::spec::intern_spec_events(&system.spec, None, &mut ab);
                let ab = std::sync::Arc::new(ab);
                let auto = shelley_core::spec::spec_automaton(&system.spec, None, ab.clone());
                let dfa = auto.materialize().minimize();
                Ok(format!("{}\n", dfa.to_regex().display(&ab)))
            }
        }
        "stats" => {
            let mut out = String::new();
            for system in checked.systems.iter() {
                out.push_str(&shelley_core::system_stats(system).to_string());
                out.push('\n');
            }
            if checked.systems.is_empty() {
                out.push_str("no @sys classes found\n");
            }
            Ok(out)
        }
        other => Err(CliError::Usage(format!("unknown command `{other}`"))),
    }
}

/// Per-file outcome of one corpus run.
struct CorpusTotals {
    files: usize,
    parse_ok: usize,
    extract_ok: usize,
    verify_ok: usize,
}

impl CorpusTotals {
    fn rate(n: usize, total: usize) -> f64 {
        if total == 0 {
            100.0
        } else {
            n as f64 * 100.0 / total as f64
        }
    }

    fn parse_rate(&self) -> f64 {
        CorpusTotals::rate(self.parse_ok, self.files)
    }

    fn extract_rate(&self) -> f64 {
        CorpusTotals::rate(self.extract_ok, self.files)
    }

    fn verify_rate(&self) -> f64 {
        CorpusTotals::rate(self.verify_ok, self.files)
    }

    fn render_json(&self) -> String {
        format!(
            "{{\n  \"files\": {},\n  \"parse_ok\": {},\n  \"extract_ok\": {},\n  \
             \"verify_ok\": {},\n  \"parse_rate\": {:.1},\n  \"extract_rate\": {:.1},\n  \
             \"verify_rate\": {:.1}\n}}\n",
            self.files,
            self.parse_ok,
            self.extract_ok,
            self.verify_ok,
            self.parse_rate(),
            self.extract_rate(),
            self.verify_rate(),
        )
    }
}

/// Diagnostic codes that indicate the *extraction* of a model failed (as
/// opposed to the model failing verification): malformed annotations and
/// spec-shape errors.
const EXTRACT_ERROR_CODES: &[&str] = &[
    shelley_core::codes::BAD_ANNOTATION,
    shelley_core::codes::UNKNOWN_SUBSYSTEM,
    shelley_core::codes::NO_INITIAL_OPERATION,
    shelley_core::codes::BAD_CLAIM,
];

/// `shelleyc corpus <dir>`: checks every `.py` file under `dir` (one
/// directory level, sorted) and reports three cumulative rates —
///
/// * **parse**: the file is fully inside the supported grammar. In
///   `--recover` mode every file produces *some* module, so a file counts
///   only when recovery degraded nothing.
/// * **extract**: parsing aside, every `@sys` class yielded a model
///   (no annotation/spec-shape errors).
/// * **verify**: the full check passed.
///
/// `--json <path>` writes the totals as JSON (the `BENCH_corpus.json`
/// shape); `--min-parse`/`--min-extract`/`--min-verify` turn the three
/// rates into gates that fail the run when unmet.
fn run_corpus(args: &[String], opts: &Options, checker: Checker) -> Result<String, CliError> {
    let dir = args
        .first()
        .ok_or_else(|| CliError::Usage("missing corpus directory".into()))?;
    let mut paths: Vec<std::path::PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| CliError::Usage(format!("cannot read {dir}: {e}")))?
        .filter_map(Result::ok)
        .map(|entry| entry.path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "py"))
        .collect();
    paths.sort();
    if paths.is_empty() {
        return Err(CliError::Usage(format!("no .py files in {dir}")));
    }

    let mut totals = CorpusTotals {
        files: 0,
        parse_ok: 0,
        extract_ok: 0,
        verify_ok: 0,
    };
    let mut failures = String::new();
    for path in &paths {
        let name = path.display().to_string();
        let source = std::fs::read_to_string(path)
            .map_err(|e| CliError::Usage(format!("cannot read {name}: {e}")))?;
        totals.files += 1;
        let parse_ok = if opts.recover {
            let module = micropython_parser::parse_module_recover(&source);
            micropython_parser::visit::collect_degraded(&module).is_empty()
        } else {
            micropython_parser::parse_module(&source).is_ok()
        };
        if parse_ok {
            totals.parse_ok += 1;
        }
        // In recovery mode extraction proceeds even for degraded files;
        // in strict mode a parse failure stops the file here.
        let checked = match checker.check_source(&source) {
            Ok(checked) => checked,
            Err(e) => {
                failures.push_str(&format!("{name}: parse: {}\n", e.error));
                continue;
            }
        };
        if !parse_ok {
            failures.push_str(&format!("{name}: parse: constructs degraded\n"));
        }
        let extract_errors: Vec<&str> = checked
            .report
            .diagnostics
            .errors()
            .filter(|d| EXTRACT_ERROR_CODES.contains(&d.code))
            .map(|d| d.code)
            .collect();
        if extract_errors.is_empty() {
            totals.extract_ok += 1;
        } else {
            failures.push_str(&format!("{name}: extract: {}\n", extract_errors.join(", ")));
        }
        if checked.report.passed() {
            totals.verify_ok += 1;
        }
    }

    let mut out = format!(
        "corpus: {} file(s) in {dir}\n  parse:   {}/{} ({:.1}%)\n  extract: {}/{} \
         ({:.1}%)\n  verify:  {}/{} ({:.1}%)\n",
        totals.files,
        totals.parse_ok,
        totals.files,
        totals.parse_rate(),
        totals.extract_ok,
        totals.files,
        totals.extract_rate(),
        totals.verify_ok,
        totals.files,
        totals.verify_rate(),
    );
    out.push_str(&failures);
    if let Some(path) = &opts.json_out {
        std::fs::write(path, totals.render_json())
            .map_err(|e| CliError::Usage(format!("cannot write {path}: {e}")))?;
    }
    let mut gate_failures = Vec::new();
    if let Some(min) = opts.min_parse {
        if totals.parse_rate() < min {
            gate_failures.push(format!(
                "parse rate {:.1}% below --min-parse {min}%",
                totals.parse_rate()
            ));
        }
    }
    if let Some(min) = opts.min_extract {
        if totals.extract_rate() < min {
            gate_failures.push(format!(
                "extract rate {:.1}% below --min-extract {min}%",
                totals.extract_rate()
            ));
        }
    }
    if let Some(min) = opts.min_verify {
        if totals.verify_rate() < min {
            gate_failures.push(format!(
                "verify rate {:.1}% below --min-verify {min}%",
                totals.verify_rate()
            ));
        }
    }
    if gate_failures.is_empty() {
        Ok(out)
    } else {
        for failure in gate_failures {
            out.push_str(&format!("FAIL: {failure}\n"));
        }
        Err(CliError::Verification(out))
    }
}

/// The multi-round mode: a thin client over the daemon wire types. Each
/// `check` line read from stdin re-reads the watched files from disk,
/// sends them through the protocol [`Engine`], and renders the returned
/// [`shelley_core::api::CheckSummary`] — the exact bytes an in-process
/// check would print —
/// followed by a `# round N:` cache-stats line. Exits on `quit` or end
/// of input.
fn run_watch(paths: &[String], checker: Checker) -> Result<String, CliError> {
    use shelley_core::{Method, ReplyBody, Request};
    use std::io::Write as _;

    if paths.is_empty() {
        return Err(CliError::Usage("missing input file".into()));
    }
    let mut engine = Engine::new(checker);
    let mut round = 0u64;
    let mut next_id = 1u64;
    let mut send = move |engine: &mut Engine, method| {
        let id = next_id;
        next_id += 1;
        let mut last = None;
        engine.handle(Request { id, method }, &mut |reply| last = Some(reply.body));
        last
    };
    for line in std::io::stdin().lock().lines() {
        let line = line.map_err(|e| CliError::Usage(format!("cannot read stdin: {e}")))?;
        let mut out = String::new();
        match line.trim() {
            "" => continue,
            "quit" | "exit" => break,
            "check" => {
                round += 1;
                for path in paths {
                    let text = std::fs::read_to_string(path)
                        .map_err(|e| CliError::Usage(format!("cannot read {path}: {e}")))?;
                    send(
                        &mut engine,
                        Method::Open {
                            path: path.clone(),
                            text,
                        },
                    );
                }
                match send(&mut engine, Method::Check) {
                    Some(ReplyBody::Check { summary }) => {
                        out.push_str(&summary.render_text());
                        out.push_str(&format!("# round {round}: {}\n", summary.stats.render()));
                    }
                    other => {
                        return Err(CliError::Usage(format!(
                            "protocol error: expected a check reply, got {other:?}"
                        )))
                    }
                }
            }
            other => {
                return Err(CliError::Usage(format!(
                    "unknown watch command `{other}` (expected `check` or `quit`)"
                )))
            }
        }
        // Each round is flushed before the next stdin read so editors and
        // tests can synchronize on the `# round` marker.
        let mut stdout = std::io::stdout().lock();
        stdout
            .write_all(out.as_bytes())
            .and_then(|()| stdout.flush())
            .map_err(|e| CliError::Usage(format!("cannot write stdout: {e}")))?;
    }
    Ok(String::new())
}

/// `shelleyc serve`: hosts the shared workspace behind the JSON protocol,
/// on stdin/stdout by default or on a Unix socket for concurrent clients.
/// `--cache` attaches the persistent verify cache (loaded now, saved on
/// shutdown); what the load recovered is reported on stderr so stdout
/// stays protocol-clean.
fn run_serve(opts: &Options, checker: Checker) -> Result<String, CliError> {
    let mut engine = Engine::new(checker);
    if let Some(cache) = &opts.cache {
        let (loaded, outcome) = engine.with_cache(cache);
        engine = loaded;
        match (&outcome.rejected, outcome.entries.len()) {
            (Some(_), _) if !std::path::Path::new(cache).exists() => {
                eprintln!("# cache: none yet, starting cold")
            }
            (Some(reason), _) => eprintln!("# cache: starting cold ({reason})"),
            (None, n) => eprintln!(
                "# cache: restored {n} entr{} ({} line(s) skipped)",
                if n == 1 { "y" } else { "ies" },
                outcome.skipped_lines
            ),
        }
    }
    let served = match &opts.socket {
        Some(socket) => shelley_daemon::serve_socket(engine, std::path::Path::new(socket)),
        None => shelley_daemon::serve_stdio(engine),
    };
    served.map_err(|e| CliError::Usage(format!("serve failed: {e}")))?;
    Ok(String::new())
}

/// `shelleyc connect`: a one-shot client for a running daemon. Opens the
/// given files in the daemon's workspace, runs a check, and prints the
/// summary exactly as `shelleyc check` would; `--shutdown` then asks the
/// daemon to persist its cache and stop.
fn run_connect(args: &[String], opts: &Options) -> Result<String, CliError> {
    let socket = args
        .first()
        .ok_or_else(|| CliError::Usage("missing socket path".into()))?;
    let mut client = Client::connect(std::path::Path::new(socket))
        .map_err(|e| CliError::Usage(format!("cannot connect to {socket}: {e}")))?;
    let fail = |e: std::io::Error| CliError::Usage(format!("daemon request failed: {e}"));
    client.hello().map_err(fail)?;
    if opts.recover || opts.backend != Backend::Auto {
        client.configure(opts.recover, opts.backend).map_err(fail)?;
    }
    let mut files = Vec::new();
    for path in &args[1..] {
        let text = std::fs::read_to_string(path)
            .map_err(|e| CliError::Usage(format!("cannot read {path}: {e}")))?;
        client.open(path.clone(), text.clone()).map_err(fail)?;
        files.push((path.clone(), text));
    }
    let mut out = String::new();
    let passed = if files.is_empty() {
        true
    } else {
        let summary = client.check().map_err(fail)?;
        if let Some(failure) = &summary.parse_error {
            // The same shape a one-shot check prints for parse errors.
            match (failure.line, failure.column) {
                (Some(line), Some(col)) => {
                    out.push_str(&format!(
                        "{}:{line}:{col}: {}\n",
                        failure.file, failure.message
                    ));
                }
                _ => out.push_str(&format!("{}\n", failure.render_text())),
            }
        } else {
            // Positions resolve only for single files, exactly as `check`.
            let source = match files.as_slice() {
                [(path, text)] => Some(micropython_parser::SourceFile::new(
                    path.clone(),
                    text.clone(),
                )),
                _ => None,
            };
            out.push_str(&summary.report().render(source.as_ref()));
            if summary.passed {
                out.push_str(&format!(
                    "OK: {} system(s) verified\n",
                    summary.systems.len()
                ));
            }
        }
        summary.passed
    };
    if opts.stats {
        let (totals, last_round) = client.stats().map_err(fail)?;
        match opts.format {
            Format::Json => {
                // The wire structs verbatim — the same serde surface the
                // daemon's stats reply uses.
                out.push_str(&format!(
                    "{{\"totals\":{},\"last_round\":{}}}\n",
                    serde::json::to_string(&totals),
                    serde::json::to_string(&last_round),
                ));
            }
            _ => {
                out.push_str(&format!("# totals: {}\n", totals.render()));
                out.push_str(&format!(
                    "# inclusion engine: {} antichain pairs kept, {} pruned\n",
                    totals.antichain_frontier, totals.antichain_pruned
                ));
            }
        }
    }
    if opts.shutdown {
        client.shutdown().map_err(fail)?;
    }
    if passed {
        Ok(out)
    } else {
        Err(CliError::Verification(out))
    }
}
