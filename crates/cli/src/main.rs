//! `shelleyc` — command-line front end for Shelley model inference and
//! verification of MicroPython classes.
//!
//! ```text
//! shelleyc check <file.py> [more.py ...]  verify all @sys classes
//! shelleyc watch <file.py> [more.py ...]  re-check on demand (reads stdin)
//! shelleyc diagram <file.py> <Class>      DOT operation diagram (Fig. 1)
//! shelleyc deps <file.py> <Class>         DOT dependency graph (Fig. 3)
//! shelleyc integration <file.py> <Class>  DOT integration automaton (Fig. 2)
//! shelleyc smv <file.py> <Class>          NuSMV model (§5 translation)
//! shelleyc infer <file.py> <Class> <op>   inferred behavior regex (Fig. 4)
//! shelleyc stats <file.py>                 model-size summary per system
//! shelleyc language <file.py> <Class>      whole-system language as a regex
//! shelleyc replay <file.py> <Class> <trace> validate a recorded trace
//! ```
//!
//! `check` and `watch` accept `--jobs N` (`-j N`) to size the worker pool
//! that verification fans out over (`0`, the default, uses the available
//! parallelism). `watch` keeps a [`shelley_core::Workspace`] alive and
//! reads commands from stdin — `check` re-reads the files and re-verifies
//! only what changed, printing a cache-stats line per round; `quit` exits.
//!
//! `replay` reads a trace file with one operation name per line (blank
//! lines and `#` comments ignored) and checks it against the class's
//! model — offline runtime verification of an execution log.

use shelley_core::extract::dependency::DependencyGraph;
use shelley_core::{
    build_integration, integration_diagram, spec_diagram, Checker, LintConfig, LintLevel,
};
use shelley_smv::nfa_to_smv;
use std::io::BufRead;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(CliError::Verification(output)) => {
            print!("{output}");
            ExitCode::FAILURE
        }
        Err(CliError::Usage(msg)) => {
            eprintln!("{msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "usage:
  shelleyc check <file.py> [more.py ...]
      [-A <code>] [-W <code>] [-D <code>|-D warnings] [--deny-warnings]
      [--format text|json|sarif] [--jobs N]
  shelleyc watch <file.py> [more.py ...] [--jobs N]
      (then `check` or `quit` on stdin)
  shelleyc diagram <file.py> <Class>
  shelleyc deps <file.py> <Class>
  shelleyc integration <file.py> <Class>
  shelleyc smv <file.py> <Class>
  shelleyc infer <file.py> <Class> <operation>
  shelleyc stats <file.py>
  shelleyc language <file.py> <Class>
  shelleyc replay <file.py> <Class> <trace-file>";

enum CliError {
    Usage(String),
    Verification(String),
}

/// The `--format` of `check` output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
    Sarif,
}

fn parse_format(name: &str) -> Result<Format, CliError> {
    match name {
        "text" => Ok(Format::Text),
        "json" => Ok(Format::Json),
        "sarif" => Ok(Format::Sarif),
        other => Err(CliError::Usage(format!(
            "unknown format `{other}` (expected text, json, or sarif)"
        ))),
    }
}

fn parse_jobs(value: &str) -> Result<usize, CliError> {
    value
        .parse()
        .map_err(|_| CliError::Usage(format!("invalid --jobs value `{value}`")))
}

/// Splits `args` into positionals and the lint/format/jobs flags, which
/// may appear anywhere on the command line.
fn parse_args(args: &[String]) -> Result<(Vec<String>, LintConfig, Format, usize), CliError> {
    let mut positionals = Vec::new();
    let mut config = LintConfig::new();
    let mut format = Format::Text;
    let mut jobs = 0;
    let mut i = 0;
    while i < args.len() {
        let arg = args[i].as_str();
        match arg {
            "-A" | "-W" | "-D" => {
                let code = args
                    .get(i + 1)
                    .ok_or_else(|| CliError::Usage(format!("{arg} requires a diagnostic code")))?;
                i += 1;
                if arg == "-D" && code == "warnings" {
                    config.deny_warnings = true;
                } else {
                    let level = match arg {
                        "-A" => LintLevel::Allow,
                        "-W" => LintLevel::Warn,
                        _ => LintLevel::Deny,
                    };
                    config
                        .set(code, level)
                        .map_err(|e| CliError::Usage(e.to_string()))?;
                }
            }
            "--deny-warnings" => config.deny_warnings = true,
            "--format" => {
                let name = args
                    .get(i + 1)
                    .ok_or_else(|| CliError::Usage("--format requires a value".into()))?;
                i += 1;
                format = parse_format(name)?;
            }
            _ if arg.starts_with("--format=") => {
                format = parse_format(&arg["--format=".len()..])?;
            }
            "--jobs" | "-j" => {
                let value = args
                    .get(i + 1)
                    .ok_or_else(|| CliError::Usage(format!("{arg} requires a number")))?;
                i += 1;
                jobs = parse_jobs(value)?;
            }
            _ if arg.starts_with("--jobs=") => {
                jobs = parse_jobs(&arg["--jobs=".len()..])?;
            }
            _ if arg.starts_with('-') && arg.len() > 1 => {
                return Err(CliError::Usage(format!("unknown flag `{arg}`")));
            }
            _ => positionals.push(args[i].clone()),
        }
        i += 1;
    }
    Ok((positionals, config, format, jobs))
}

fn run(raw_args: &[String]) -> Result<String, CliError> {
    let (args, config, format, jobs) = parse_args(raw_args)?;
    let cmd = args
        .first()
        .ok_or_else(|| CliError::Usage("missing command".into()))?;
    let checker = Checker::new().lints(config.clone()).jobs(jobs);
    if cmd == "watch" {
        return run_watch(&args[1..], checker);
    }
    let path = args
        .get(1)
        .ok_or_else(|| CliError::Usage("missing input file".into()))?;
    let source = std::fs::read_to_string(path)
        .map_err(|e| CliError::Usage(format!("cannot read {path}: {e}")))?;
    let file = micropython_parser::SourceFile::new(path.clone(), source.clone());
    let checked = checker.check_source(&source).map_err(|e| {
        let (line, col) = file.line_col(e.error.span.start);
        CliError::Verification(format!("{path}:{line}:{col}: {}\n", e.error))
    })?;

    let class_arg = |i: usize| -> Result<&shelley_core::System, CliError> {
        let name = args
            .get(i)
            .ok_or_else(|| CliError::Usage("missing class name".into()))?;
        checked
            .systems
            .get(name)
            .ok_or_else(|| CliError::Usage(format!("no @sys class `{name}` in {path}")))
    };

    match cmd.as_str() {
        "check" => {
            // Additional files form a multi-file project.
            let multi_file = args.len() > 2;
            let checked = if multi_file {
                let mut files = vec![shelley_core::ProjectFile::new(path.clone(), source.clone())];
                for extra in &args[2..] {
                    let text = std::fs::read_to_string(extra)
                        .map_err(|e| CliError::Usage(format!("cannot read {extra}: {e}")))?;
                    files.push(shelley_core::ProjectFile::new(extra.clone(), text));
                }
                checker
                    .check_files(&files)
                    .map_err(|e| CliError::Verification(format!("{e}\n")))?
            } else {
                checked
            };
            // Machine formats cannot attribute merged-project spans to
            // their files, so positions are only emitted for single files.
            let position_source = (!multi_file).then_some(&file);
            let out = match format {
                Format::Text => {
                    let mut out = checked.report.render(position_source);
                    if checked.report.passed() {
                        out.push_str(&format!(
                            "OK: {} system(s) verified\n",
                            checked.systems.len()
                        ));
                    }
                    out
                }
                Format::Json => checked.report.diagnostics.render_json(position_source),
                Format::Sarif => checked.report.diagnostics.render_sarif(position_source),
            };
            if checked.report.passed() {
                Ok(out)
            } else {
                Err(CliError::Verification(out))
            }
        }
        "diagram" => {
            let system = class_arg(2)?;
            Ok(spec_diagram(&system.spec))
        }
        "deps" => {
            let system = class_arg(2)?;
            Ok(DependencyGraph::from_spec(&system.spec).to_dot())
        }
        "integration" => {
            let system = class_arg(2)?;
            if !system.is_composite() {
                return Err(CliError::Usage(format!(
                    "`{}` is a base class; integration diagrams require a composite",
                    system.name
                )));
            }
            let integration = build_integration(system);
            Ok(integration_diagram(&system.name, &integration))
        }
        "smv" => {
            let system = class_arg(2)?;
            let nfa = if system.is_composite() {
                build_integration(system).nfa
            } else {
                let mut ab = shelley_regular::Alphabet::new();
                shelley_core::spec::intern_spec_events(&system.spec, None, &mut ab);
                shelley_core::spec::spec_automaton(&system.spec, None, std::sync::Arc::new(ab))
                    .nfa()
                    .clone()
            };
            // Claims become LTLSPECs in the emitted model; atoms must be
            // interned in the model alphabet, so parse against a copy.
            let mut scratch = (**nfa.alphabet()).clone();
            let mut claims = Vec::new();
            for claim in &system.claims {
                if let Ok(f) = shelley_ltlf::parse_formula(&claim.formula, &mut scratch) {
                    claims.push(f);
                }
            }
            let model = nfa_to_smv(&nfa, &format!("Shelley model of {}", system.name), &claims);
            Ok(model.to_smv())
        }
        "infer" => {
            let system = class_arg(2)?;
            let op = args
                .get(3)
                .ok_or_else(|| CliError::Usage("missing operation name".into()))?;
            let info = system.composite().ok_or_else(|| {
                CliError::Usage(format!(
                    "`{}` is a base class; behavior inference applies to composites",
                    system.name
                ))
            })?;
            let lowered = info.methods.get(op).ok_or_else(|| {
                CliError::Usage(format!("no operation `{op}` on `{}`", system.name))
            })?;
            let behavior = shelley_ir::infer(&lowered.program);
            Ok(format!("{}\n", behavior.display(&info.alphabet)))
        }
        "replay" => {
            let system = class_arg(2)?;
            let trace_path = args
                .get(3)
                .ok_or_else(|| CliError::Usage("missing trace file".into()))?;
            let trace_text = std::fs::read_to_string(trace_path)
                .map_err(|e| CliError::Usage(format!("cannot read {trace_path}: {e}")))?;
            let ops: Vec<&str> = trace_text
                .lines()
                .map(str::trim)
                .filter(|l| !l.is_empty() && !l.starts_with('#'))
                .collect();
            let mut monitor = shelley_runtime::SpecMonitor::new(&system.spec);
            for (i, op) in ops.iter().enumerate() {
                if let Err(e) = monitor.invoke(op) {
                    return Err(CliError::Verification(format!(
                        "{trace_path}:{}: {e}\n",
                        i + 1
                    )));
                }
            }
            monitor.finish().map_err(|e| {
                CliError::Verification(format!("{trace_path}: trace is incomplete: {e}\n"))
            })?;
            Ok(format!(
                "OK: {} operation(s) form a complete usage of `{}`\n",
                ops.len(),
                system.name
            ))
        }
        "language" => {
            let system = class_arg(2)?;
            // Regex extraction needs the whole table: materialize the lazy
            // view (export-grade escape hatch), then minimize.
            use shelley_regular::lang::{self, NfaView};
            if let Some(_info) = system.composite() {
                let integration = build_integration(system);
                let dfa = lang::materialize(&NfaView::new(&integration.nfa)).minimize();
                let regex = dfa.to_regex();
                Ok(format!("{}\n", regex.display(integration.nfa.alphabet())))
            } else {
                let mut ab = shelley_regular::Alphabet::new();
                shelley_core::spec::intern_spec_events(&system.spec, None, &mut ab);
                let ab = std::sync::Arc::new(ab);
                let auto = shelley_core::spec::spec_automaton(&system.spec, None, ab.clone());
                let dfa = auto.materialize().minimize();
                Ok(format!("{}\n", dfa.to_regex().display(&ab)))
            }
        }
        "stats" => {
            let mut out = String::new();
            for system in checked.systems.iter() {
                out.push_str(&shelley_core::system_stats(system).to_string());
                out.push('\n');
            }
            if checked.systems.is_empty() {
                out.push_str("no @sys classes found\n");
            }
            Ok(out)
        }
        other => Err(CliError::Usage(format!("unknown command `{other}`"))),
    }
}

/// The multi-round mode: keeps a workspace alive and re-checks the same
/// file set on every `check` line read from stdin, re-reading the files
/// from disk so edits between rounds are picked up. Streams the report of
/// each round followed by a `# round N:` cache-stats line, and exits on
/// `quit` or end of input.
fn run_watch(paths: &[String], checker: Checker) -> Result<String, CliError> {
    use std::io::Write as _;

    if paths.is_empty() {
        return Err(CliError::Usage("missing input file".into()));
    }
    let mut workspace = checker.into_workspace();
    let mut round = 0u64;
    for line in std::io::stdin().lock().lines() {
        let line = line.map_err(|e| CliError::Usage(format!("cannot read stdin: {e}")))?;
        let mut out = String::new();
        match line.trim() {
            "" => continue,
            "quit" | "exit" => break,
            "check" => {
                round += 1;
                for path in paths {
                    let text = std::fs::read_to_string(path)
                        .map_err(|e| CliError::Usage(format!("cannot read {path}: {e}")))?;
                    workspace.set_file(path.clone(), text);
                }
                match workspace.check() {
                    Ok(checked) => {
                        out.push_str(&checked.report.render(None));
                        if checked.report.passed() {
                            out.push_str(&format!(
                                "OK: {} system(s) verified\n",
                                checked.systems.len()
                            ));
                        }
                    }
                    Err(e) => out.push_str(&format!("{e}\n")),
                }
                out.push_str(&format!(
                    "# round {round}: {}\n",
                    workspace.last_round().render()
                ));
            }
            other => {
                return Err(CliError::Usage(format!(
                    "unknown watch command `{other}` (expected `check` or `quit`)"
                )))
            }
        }
        // Each round is flushed before the next stdin read so editors and
        // tests can synchronize on the `# round` marker.
        let mut stdout = std::io::stdout().lock();
        stdout
            .write_all(out.as_bytes())
            .and_then(|()| stdout.flush())
            .map_err(|e| CliError::Usage(format!("cannot write stdout: {e}")))?;
    }
    Ok(String::new())
}
