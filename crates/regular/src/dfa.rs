//! Deterministic finite automata (complete by construction).
//!
//! DFAs are obtained from [`Nfa`]s by subset construction and support the
//! boolean algebra needed for verification: complement, product
//! (intersection/union), emptiness with shortest witnesses, inclusion, and
//! equivalence.

use crate::compiled::CompiledNfa;
use crate::dense::DenseDfa;
use crate::nfa::{Nfa, StateId};
use crate::stateset::StateSet;
use crate::symbol::{Alphabet, Symbol, Word};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// A complete deterministic finite automaton.
///
/// Every state has exactly one successor per alphabet symbol (a rejecting
/// sink completes partial transition functions).
///
/// # Examples
///
/// ```
/// use shelley_regular::{Alphabet, Regex, Nfa, Dfa};
/// use std::sync::Arc;
///
/// let mut ab = Alphabet::new();
/// let a = ab.intern("a");
/// let b = ab.intern("b");
/// let nfa = Nfa::from_regex(&Regex::word(&[a, b]), Arc::new(ab));
/// let dfa = Dfa::from_nfa(&nfa);
/// assert!(dfa.accepts(&[a, b]));
/// assert!(!dfa.accepts(&[b, a]));
/// ```
#[derive(Debug, Clone)]
pub struct Dfa {
    alphabet: Arc<Alphabet>,
    /// `table[q][s]` is the successor of state `q` on symbol index `s`.
    ///
    /// This nested table is the reference representation kept for the
    /// differential suite; every hot operation reads `dense` instead.
    table: Vec<Vec<StateId>>,
    start: StateId,
    accepting: Vec<bool>,
    /// Flat `states × symbols` mirror of `table` + accepting bitset, built
    /// once at every construction boundary.
    dense: DenseDfa,
}

impl Dfa {
    /// Builds the dense mirror and assembles the automaton. Every
    /// constructor funnels through here so `dense` can never go stale.
    fn assemble(
        alphabet: Arc<Alphabet>,
        table: Vec<Vec<StateId>>,
        start: StateId,
        accepting: Vec<bool>,
    ) -> Dfa {
        let dense = DenseDfa::from_table(alphabet.len(), &table, start, &accepting);
        Dfa {
            alphabet,
            table,
            start,
            accepting,
            dense,
        }
    }
    /// Determinizes `nfa` by subset construction.
    ///
    /// Compiles the NFA's ε-closures and successor tables once, then runs
    /// the construction on [`StateSet`] bitset subsets (see
    /// [`Dfa::from_compiled`]). State numbering is BFS discovery order with
    /// symbols scanned in dense index order — identical to the historical
    /// `BTreeSet`-based construction and to materializing an
    /// [`NfaView`](crate::lang::NfaView); the differential property suite
    /// pins all three byte-for-byte.
    pub fn from_nfa(nfa: &Nfa) -> Dfa {
        Dfa::from_compiled(&CompiledNfa::compile(nfa))
    }

    /// Subset construction over an already-[compiled](CompiledNfa::compile)
    /// NFA.
    ///
    /// The interning index is keyed by [`StateSet`] (hash over raw bitset
    /// blocks); each step unions precomputed ε-closures into a scratch set,
    /// so the hot loop allocates only when a genuinely new subset is
    /// discovered and needs to be retained as a key.
    pub fn from_compiled(compiled: &CompiledNfa) -> Dfa {
        let alphabet = compiled.alphabet().clone();
        let nsyms = alphabet.len();

        let mut index: HashMap<StateSet, StateId> = HashMap::new();
        let mut table: Vec<Vec<StateId>> = Vec::new();
        let mut accepting: Vec<bool> = Vec::new();
        let mut sets: Vec<StateSet> = Vec::new();

        let start_set = compiled.start_set();
        index.insert(start_set.clone(), 0);
        table.push(vec![usize::MAX; nsyms]);
        accepting.push(compiled.is_accepting(&start_set));
        sets.push(start_set);

        let mut scratch = compiled.empty_set();
        let mut queue = VecDeque::from([0usize]);
        while let Some(q) = queue.pop_front() {
            for sym_idx in 0..nsyms {
                let sym = Symbol::from_index(sym_idx);
                // `sets` only grows, so the clone-free borrow dance: step
                // from the stored subset into the scratch set, then intern.
                compiled.step_into(&sets[q], sym, &mut scratch);
                let dst = match index.get(&scratch) {
                    Some(&d) => d,
                    None => {
                        let d = table.len();
                        table.push(vec![usize::MAX; nsyms]);
                        accepting.push(compiled.is_accepting(&scratch));
                        index.insert(scratch.clone(), d);
                        sets.push(scratch.clone());
                        queue.push_back(d);
                        d
                    }
                };
                table[q][sym_idx] = dst;
            }
        }
        Dfa::assemble(alphabet, table, 0, accepting)
    }

    /// Builds a DFA directly from parts (used by the minimizer and tests).
    ///
    /// # Panics
    ///
    /// Panics if the table is ragged, references out-of-range states, or the
    /// accepting vector length mismatches.
    pub fn from_parts(
        alphabet: Arc<Alphabet>,
        table: Vec<Vec<StateId>>,
        start: StateId,
        accepting: Vec<bool>,
    ) -> Dfa {
        let n = table.len();
        assert_eq!(accepting.len(), n, "accepting vector length mismatch");
        assert!(start < n, "start state out of range");
        for row in &table {
            assert_eq!(row.len(), alphabet.len(), "ragged transition table");
            for &dst in row {
                assert!(dst < n, "transition target out of range");
            }
        }
        Dfa::assemble(alphabet, table, start, accepting)
    }

    /// The automaton's alphabet.
    pub fn alphabet(&self) -> &Arc<Alphabet> {
        &self.alphabet
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.table.len()
    }

    /// The start state.
    pub fn start(&self) -> StateId {
        self.start
    }

    /// Whether `state` accepts.
    pub fn is_accepting(&self, state: StateId) -> bool {
        self.accepting[state]
    }

    /// The successor of `state` on `symbol` (one flat-table load).
    #[inline]
    pub fn step(&self, state: StateId, symbol: Symbol) -> StateId {
        self.dense.step(state, symbol)
    }

    /// The successor read from the nested reference table.
    ///
    /// Exists so the differential suite can pin the dense mirror against
    /// the reference representation; everything else uses [`Dfa::step`].
    pub fn step_reference(&self, state: StateId, symbol: Symbol) -> StateId {
        self.table[state][symbol.index()]
    }

    /// The dense flat-table engine backing this automaton's hot operations.
    pub fn dense(&self) -> &DenseDfa {
        &self.dense
    }

    /// The accepting states as a [`StateSet`] sized to this automaton.
    pub fn accepting_set(&self) -> StateSet {
        self.dense.accepting_set().clone()
    }

    /// The image of a state *set* under `symbol`: `{ δ(q, symbol) | q ∈ set }`.
    ///
    /// This is the transfer function of automaton-valued dataflow analyses,
    /// where the abstract value at a program point is the set of DFA states
    /// reachable along some path.
    pub fn step_set(&self, set: &StateSet, symbol: Symbol) -> StateSet {
        let mut out = StateSet::new(self.num_states());
        for q in set {
            out.insert(self.step(q, symbol));
        }
        out
    }

    /// Runs the automaton on `word` from the start state.
    pub fn run(&self, word: &[Symbol]) -> StateId {
        word.iter().fold(self.start, |q, &s| self.step(q, s))
    }

    /// Decides `word ∈ L(self)`.
    pub fn accepts(&self, word: &[Symbol]) -> bool {
        self.accepting[self.run(word)]
    }

    /// The complement automaton (accepting exactly the rejected words).
    pub fn complement(&self) -> Dfa {
        let accepting = self.accepting.iter().map(|&acc| !acc).collect();
        Dfa::assemble(
            self.alphabet.clone(),
            self.table.clone(),
            self.start,
            accepting,
        )
    }

    /// Product automaton accepting the intersection of both languages.
    ///
    /// # Panics
    ///
    /// Panics if the alphabets differ.
    pub fn intersect(&self, other: &Dfa) -> Dfa {
        self.product(other, |a, b| a && b)
    }

    /// Product automaton accepting the union of both languages.
    ///
    /// # Panics
    ///
    /// Panics if the alphabets differ.
    pub fn union(&self, other: &Dfa) -> Dfa {
        self.product(other, |a, b| a || b)
    }

    /// Product automaton accepting `L(self) \ L(other)`.
    ///
    /// # Panics
    ///
    /// Panics if the alphabets differ.
    pub fn difference(&self, other: &Dfa) -> Dfa {
        self.product(other, |a, b| a && !b)
    }

    fn product(&self, other: &Dfa, combine: impl Fn(bool, bool) -> bool) -> Dfa {
        assert_eq!(
            **self.alphabet(),
            **other.alphabet(),
            "product of DFAs over different alphabets"
        );
        let nsyms = self.alphabet.len();
        let mut index: HashMap<(StateId, StateId), StateId> = HashMap::new();
        let mut table: Vec<Vec<StateId>> = Vec::new();
        let mut accepting: Vec<bool> = Vec::new();
        let mut pairs: Vec<(StateId, StateId)> = Vec::new();

        let intern = |pair: (StateId, StateId),
                      table: &mut Vec<Vec<StateId>>,
                      accepting: &mut Vec<bool>,
                      pairs: &mut Vec<(StateId, StateId)>,
                      index: &mut HashMap<(StateId, StateId), StateId>|
         -> StateId {
            if let Some(&q) = index.get(&pair) {
                return q;
            }
            let q = table.len();
            table.push(vec![usize::MAX; nsyms]);
            accepting.push(combine(self.accepting[pair.0], other.accepting[pair.1]));
            index.insert(pair, q);
            pairs.push(pair);
            q
        };

        let start = intern(
            (self.start, other.start),
            &mut table,
            &mut accepting,
            &mut pairs,
            &mut index,
        );
        let mut queue = VecDeque::from([start]);
        let mut seen_len = 1usize;
        while let Some(q) = queue.pop_front() {
            let (qa, qb) = pairs[q];
            let (row_a, row_b) = (self.dense.row(qa), other.dense.row(qb));
            for sym_idx in 0..nsyms {
                let dst_pair = (row_a[sym_idx] as StateId, row_b[sym_idx] as StateId);
                let dst = intern(dst_pair, &mut table, &mut accepting, &mut pairs, &mut index);
                table[q][sym_idx] = dst;
                if dst >= seen_len {
                    seen_len = dst + 1;
                    queue.push_back(dst);
                }
            }
        }
        Dfa::assemble(self.alphabet.clone(), table, start, accepting)
    }

    /// Whether the language is empty.
    pub fn is_empty(&self) -> bool {
        self.shortest_accepted().is_none()
    }

    /// Finds a shortest accepted word, if any.
    pub fn shortest_accepted(&self) -> Option<Word> {
        let mut parent: Vec<Option<(StateId, Symbol)>> = vec![None; self.table.len()];
        let mut visited = vec![false; self.table.len()];
        let mut queue = VecDeque::from([self.start]);
        visited[self.start] = true;
        while let Some(q) = queue.pop_front() {
            if self.accepting[q] {
                let mut word = Vec::new();
                let mut cur = q;
                while let Some((prev, sym)) = parent[cur] {
                    word.push(sym);
                    cur = prev;
                }
                word.reverse();
                return Some(word);
            }
            for (sym_idx, &dst) in self.dense.row(q).iter().enumerate() {
                let dst = dst as StateId;
                if !visited[dst] {
                    visited[dst] = true;
                    parent[dst] = Some((q, Symbol::from_index(sym_idx)));
                    queue.push_back(dst);
                }
            }
        }
        None
    }

    /// Finds a shortest word driving the start state to `target`, if any
    /// (breadth-first in symbol order, so the witness is deterministic).
    pub fn shortest_word_to(&self, target: StateId) -> Option<Word> {
        let mut parent: Vec<Option<(StateId, Symbol)>> = vec![None; self.table.len()];
        let mut visited = vec![false; self.table.len()];
        let mut queue = VecDeque::from([self.start]);
        visited[self.start] = true;
        while let Some(q) = queue.pop_front() {
            if q == target {
                let mut word = Vec::new();
                let mut cur = q;
                while let Some((prev, sym)) = parent[cur] {
                    word.push(sym);
                    cur = prev;
                }
                word.reverse();
                return Some(word);
            }
            for (sym_idx, &dst) in self.dense.row(q).iter().enumerate() {
                let dst = dst as StateId;
                if !visited[dst] {
                    visited[dst] = true;
                    parent[dst] = Some((q, Symbol::from_index(sym_idx)));
                    queue.push_back(dst);
                }
            }
        }
        None
    }

    /// Checks `L(self) ⊆ L(other)`; on failure returns a shortest word in
    /// the difference.
    ///
    /// # Panics
    ///
    /// Panics if the alphabets differ.
    pub fn subset_of(&self, other: &Dfa) -> Result<(), Word> {
        match self.difference(other).shortest_accepted() {
            None => Ok(()),
            Some(w) => Err(w),
        }
    }

    /// Checks language equivalence; on failure returns a shortest
    /// distinguishing word.
    ///
    /// # Panics
    ///
    /// Panics if the alphabets differ.
    pub fn equivalent(&self, other: &Dfa) -> Result<(), Word> {
        self.subset_of(other)?;
        other.subset_of(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regex::Regex;

    fn ab2() -> (Arc<Alphabet>, Symbol, Symbol) {
        let mut ab = Alphabet::new();
        let a = ab.intern("a");
        let b = ab.intern("b");
        (Arc::new(ab), a, b)
    }

    fn dfa_of(r: &Regex, ab: Arc<Alphabet>) -> Dfa {
        Dfa::from_nfa(&Nfa::from_regex(r, ab))
    }

    #[test]
    fn subset_construction_preserves_language() {
        let (ab, a, b) = ab2();
        let r = Regex::union(
            Regex::star(Regex::concat(Regex::sym(a), Regex::sym(b))),
            Regex::sym(b),
        );
        let dfa = dfa_of(&r, ab);
        for w in [
            vec![],
            vec![a],
            vec![b],
            vec![a, b],
            vec![a, b, a, b],
            vec![b, b],
            vec![a, a],
        ] {
            assert_eq!(dfa.accepts(&w), r.matches(&w), "word {:?}", w);
        }
    }

    #[test]
    fn accepting_set_and_step_set() {
        let (ab, a, b) = ab2();
        // (a·b)*: accepting states are exactly where a word of even ab-pairs
        // ends; stepping the full reachable set on `a` lands where `a` leads.
        let r = Regex::star(Regex::concat(Regex::sym(a), Regex::sym(b)));
        let dfa = dfa_of(&r, ab);
        let acc = dfa.accepting_set();
        assert!(acc.contains(dfa.start()));
        let mut all = StateSet::new(dfa.num_states());
        for q in 0..dfa.num_states() {
            all.insert(q);
        }
        let on_a = dfa.step_set(&all, a);
        for q in &on_a {
            assert!((0..dfa.num_states()).any(|p| dfa.step(p, a) == q));
        }
        // Stepping the start set along the accepted word a·b returns to an
        // accepting state.
        let mut start = StateSet::new(dfa.num_states());
        start.insert(dfa.start());
        let after = dfa.step_set(&dfa.step_set(&start, a), b);
        assert!(after.is_subset_of(&acc));
    }

    #[test]
    fn shortest_word_to_reaches_every_state() {
        let (ab, a, b) = ab2();
        let r = Regex::star(Regex::concat(Regex::sym(a), Regex::sym(b)));
        let dfa = dfa_of(&r, ab);
        for q in 0..dfa.num_states() {
            let word = dfa
                .shortest_word_to(q)
                .expect("complete DFA: all reachable");
            assert_eq!(dfa.run(&word), q);
        }
        assert_eq!(dfa.shortest_word_to(dfa.start()), Some(vec![]));
    }

    #[test]
    fn complement_flips_membership() {
        let (ab, a, b) = ab2();
        let r = Regex::star(Regex::sym(a));
        let dfa = dfa_of(&r, ab);
        let comp = dfa.complement();
        assert!(dfa.accepts(&[a, a]));
        assert!(!comp.accepts(&[a, a]));
        assert!(!dfa.accepts(&[b]));
        assert!(comp.accepts(&[b]));
    }

    #[test]
    fn intersection_and_union() {
        let (ab, a, b) = ab2();
        // L1 = words starting with a; L2 = words ending with b.
        let sigma_star = Regex::star(Regex::union(Regex::sym(a), Regex::sym(b)));
        let l1 = dfa_of(
            &Regex::concat(Regex::sym(a), sigma_star.clone()),
            ab.clone(),
        );
        let l2 = dfa_of(&Regex::concat(sigma_star, Regex::sym(b)), ab.clone());
        let both = l1.intersect(&l2);
        assert!(both.accepts(&[a, b]));
        assert!(both.accepts(&[a, a, b]));
        assert!(!both.accepts(&[a]));
        assert!(!both.accepts(&[b, b]));
        let either = l1.union(&l2);
        assert!(either.accepts(&[a]));
        assert!(either.accepts(&[b, b]));
        assert!(!either.accepts(&[b, a]));
    }

    #[test]
    fn emptiness_and_shortest_witness() {
        let (ab, a, b) = ab2();
        let r = Regex::union(Regex::word(&[a, b, a]), Regex::word(&[b, b]));
        let dfa = dfa_of(&r, ab.clone());
        assert!(!dfa.is_empty());
        assert_eq!(dfa.shortest_accepted(), Some(vec![b, b]));
        let nothing = dfa_of(&Regex::empty(), ab);
        assert!(nothing.is_empty());
    }

    #[test]
    fn subset_and_equivalence() {
        let (ab, a, _) = ab2();
        // a ⊆ a* but not conversely.
        let small = dfa_of(&Regex::sym(a), ab.clone());
        let big = dfa_of(&Regex::star(Regex::sym(a)), ab.clone());
        assert!(small.subset_of(&big).is_ok());
        let counter = big.subset_of(&small).unwrap_err();
        assert!(counter.is_empty() || counter.len() >= 2);
        // (a·a)* + a·(a·a)* ≡ a*.
        let even = Regex::star(Regex::word(&[a, a]));
        let odd = Regex::concat(Regex::sym(a), even.clone());
        let all = dfa_of(&Regex::union(even, odd), ab.clone());
        assert!(all.equivalent(&big).is_ok());
    }

    #[test]
    #[should_panic(expected = "different alphabets")]
    fn product_requires_same_alphabet() {
        let (ab1, a, _) = ab2();
        let mut other = Alphabet::new();
        other.intern("x");
        let d1 = dfa_of(&Regex::sym(a), ab1);
        let d2 = dfa_of(&Regex::empty(), Arc::new(other));
        let _ = d1.intersect(&d2);
    }
}
