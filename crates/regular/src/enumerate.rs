//! Bounded shortlex enumeration of accepted words.
//!
//! Used heavily by the property-test suites: enumerating the words of an
//! inferred behavior lets us replay each one through the paper's trace
//! semantics (Theorem 2 direction), and vice versa.

use crate::dfa::Dfa;
use crate::symbol::{Symbol, Word};
use std::collections::VecDeque;

impl Dfa {
    /// Enumerates accepted words in shortlex order, up to `max_len` symbols
    /// and at most `max_count` results.
    ///
    /// # Examples
    ///
    /// ```
    /// use shelley_regular::{Alphabet, Regex, Nfa, Dfa};
    /// use std::sync::Arc;
    ///
    /// let mut ab = Alphabet::new();
    /// let a = ab.intern("a");
    /// let dfa = Dfa::from_nfa(&Nfa::from_regex(&Regex::star(Regex::sym(a)), Arc::new(ab)));
    /// let words = dfa.enumerate_words(3, 10);
    /// assert_eq!(words.len(), 4); // ε, a, aa, aaa
    /// ```
    pub fn enumerate_words(&self, max_len: usize, max_count: usize) -> Vec<Word> {
        let mut out = Vec::new();
        if max_count == 0 {
            return out;
        }
        // Prune paths through dead states (no accepting state reachable):
        // without this the search tree is |Σ|^max_len even for tiny
        // languages.
        let dead = self.dead_states();
        if dead[self.start()] {
            return out;
        }
        let mut queue: VecDeque<(usize, Word)> = VecDeque::new();
        queue.push_back((self.start(), Vec::new()));
        while let Some((q, word)) = queue.pop_front() {
            if self.is_accepting(q) {
                out.push(word.clone());
                if out.len() >= max_count {
                    return out;
                }
            }
            if word.len() == max_len {
                continue;
            }
            for s in 0..self.alphabet().len() {
                let sym = Symbol::from_index(s);
                let dst = self.step(q, sym);
                if dead[dst] {
                    continue;
                }
                let mut next = word.clone();
                next.push(sym);
                queue.push_back((dst, next));
            }
        }
        out
    }

    /// Counts accepted words of each length `0..=max_len` by dynamic
    /// programming (no enumeration).
    pub fn count_words_by_length(&self, max_len: usize) -> Vec<u64> {
        let n = self.num_states();
        let mut counts = vec![0u64; n];
        counts[self.start()] = 1;
        let mut out = Vec::with_capacity(max_len + 1);
        let accepted = |counts: &[u64]| -> u64 {
            (0..n)
                .filter(|&q| self.is_accepting(q))
                .map(|q| counts[q])
                .fold(0u64, u64::saturating_add)
        };
        out.push(accepted(&counts));
        for _ in 0..max_len {
            let mut next = vec![0u64; n];
            for (q, &count) in counts.iter().enumerate() {
                if count == 0 {
                    continue;
                }
                for s in 0..self.alphabet().len() {
                    let dst = self.step(q, Symbol::from_index(s));
                    next[dst] = next[dst].saturating_add(count);
                }
            }
            counts = next;
            out.push(accepted(&counts));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nfa::Nfa;
    use crate::regex::Regex;
    use crate::symbol::Alphabet;
    use std::sync::Arc;

    #[test]
    fn enumerate_is_shortlex_and_complete() {
        let mut ab = Alphabet::new();
        let a = ab.intern("a");
        let b = ab.intern("b");
        let r = Regex::star(Regex::union(Regex::sym(a), Regex::sym(b)));
        let dfa = Dfa::from_nfa(&Nfa::from_regex(&r, Arc::new(ab)));
        let words = dfa.enumerate_words(2, 100);
        // ε, a, b, aa, ab, ba, bb
        assert_eq!(words.len(), 7);
        assert_eq!(words[0], Vec::<Symbol>::new());
        assert!(words.windows(2).all(|w| w[0].len() <= w[1].len()));
    }

    #[test]
    fn enumerate_respects_count_cap() {
        let mut ab = Alphabet::new();
        let a = ab.intern("a");
        let dfa = Dfa::from_nfa(&Nfa::from_regex(&Regex::star(Regex::sym(a)), Arc::new(ab)));
        assert_eq!(dfa.enumerate_words(50, 5).len(), 5);
    }

    #[test]
    fn count_words_matches_enumeration() {
        let mut ab = Alphabet::new();
        let a = ab.intern("a");
        let b = ab.intern("b");
        let r = Regex::concat(
            Regex::star(Regex::sym(a)),
            Regex::union(Regex::sym(b), Regex::epsilon()),
        );
        let dfa = Dfa::from_nfa(&Nfa::from_regex(&r, Arc::new(ab)));
        let counts = dfa.count_words_by_length(4);
        let words = dfa.enumerate_words(4, 10_000);
        for (len, &count) in counts.iter().enumerate() {
            let enumerated = words.iter().filter(|w| w.len() == len).count() as u64;
            assert_eq!(count, enumerated, "length {len}");
        }
    }
}
