//! Automaton → regular expression conversion (state elimination).
//!
//! Closes the Kleene loop: behaviors are inferred as regexes, compiled to
//! automata for verification, and — with this module — converted back to
//! regexes so whole-system languages (e.g. a composite's integration
//! language) can be displayed to users.

use crate::dfa::Dfa;
use crate::nfa::{Label, Nfa};
use crate::regex::Regex;
use std::collections::HashMap;

impl Nfa {
    /// Converts the automaton to an equivalent regular expression by GNFA
    /// state elimination.
    ///
    /// The result can be large (state elimination is worst-case
    /// exponential) but always denotes exactly `L(self)`.
    pub fn to_regex(&self) -> Regex {
        // GNFA edges: (from, to) -> regex, with fresh start/accept states.
        let n = self.num_states();
        let start = n;
        let accept = n + 1;
        let mut edges: HashMap<(usize, usize), Regex> = HashMap::new();
        let add = |edges: &mut HashMap<(usize, usize), Regex>, from: usize, to: usize, r: Regex| {
            let entry = edges.entry((from, to)).or_insert(Regex::Empty);
            *entry = Regex::union(entry.clone(), r);
        };
        add(&mut edges, start, self.start(), Regex::Epsilon);
        for q in 0..n {
            if self.is_accepting(q) {
                add(&mut edges, q, accept, Regex::Epsilon);
            }
            for &(label, dst) in self.edges_from(q) {
                let r = match label {
                    Label::Eps => Regex::Epsilon,
                    Label::Sym(s) => Regex::Sym(s),
                };
                add(&mut edges, q, dst, r);
            }
        }

        // Eliminate the original states one by one.
        for victim in 0..n {
            let self_loop = edges
                .get(&(victim, victim))
                .cloned()
                .unwrap_or(Regex::Empty);
            let loop_star = Regex::star(self_loop);
            let incoming: Vec<(usize, Regex)> = edges
                .iter()
                .filter(|((f, t), _)| *t == victim && *f != victim)
                .map(|((f, _), r)| (*f, r.clone()))
                .collect();
            let outgoing: Vec<(usize, Regex)> = edges
                .iter()
                .filter(|((f, t), _)| *f == victim && *t != victim)
                .map(|((_, t), r)| (*t, r.clone()))
                .collect();
            for (f, rin) in &incoming {
                for (t, rout) in &outgoing {
                    let path =
                        Regex::concat(rin.clone(), Regex::concat(loop_star.clone(), rout.clone()));
                    add(&mut edges, *f, *t, path);
                }
            }
            edges.retain(|(f, t), _| *f != victim && *t != victim);
        }

        edges.get(&(start, accept)).cloned().unwrap_or(Regex::Empty)
    }
}

impl Dfa {
    /// Converts the automaton to an equivalent regular expression.
    ///
    /// Minimizing first usually yields a much smaller expression.
    pub fn to_regex(&self) -> Regex {
        // Reuse the NFA elimination by viewing the DFA as an NFA.
        let alphabet = self.alphabet().clone();
        let mut b = Nfa::builder(alphabet);
        for _ in 0..self.num_states() {
            b.add_state();
        }
        b.set_start(self.start());
        let dead = self.dead_states();
        for q in 0..self.num_states() {
            if self.is_accepting(q) {
                b.mark_accepting(q);
            }
            if dead[q] {
                continue;
            }
            for sym in self.alphabet().symbols() {
                let dst = self.step(q, sym);
                if !dead[dst] {
                    b.add_edge(q, Label::Sym(sym), dst);
                }
            }
        }
        b.build().to_regex()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_regex;
    use crate::symbol::Alphabet;
    use std::sync::Arc;

    fn roundtrip(pattern: &str) {
        let mut ab = Alphabet::new();
        let original = parse_regex(pattern, &mut ab).unwrap();
        let ab = Arc::new(ab);
        let nfa = Nfa::from_regex(&original, ab.clone());
        let recovered = nfa.to_regex();
        // Language equivalence via DFA comparison.
        let d1 = Dfa::from_nfa(&nfa);
        let d2 = Dfa::from_nfa(&Nfa::from_regex(&recovered, ab));
        assert!(
            d1.equivalent(&d2).is_ok(),
            "{pattern} -> {:?} changed language",
            recovered
        );
    }

    #[test]
    fn roundtrips_basic_languages() {
        for pattern in [
            "a",
            "eps",
            "void",
            "a ; b ; c",
            "a + b",
            "a*",
            "(a ; b)* ; c",
            "(test ; (open ; close + clean))*",
            "(a + b)* ; a ; (a + b)",
        ] {
            roundtrip(pattern);
        }
    }

    #[test]
    fn dfa_to_regex_agrees() {
        let mut ab = Alphabet::new();
        let r = parse_regex("(a ; b)* + c", &mut ab).unwrap();
        let ab = Arc::new(ab);
        let dfa = Dfa::from_nfa(&Nfa::from_regex(&r, ab.clone())).minimize();
        let back = dfa.to_regex();
        let d2 = Dfa::from_nfa(&Nfa::from_regex(&back, ab));
        assert!(dfa.equivalent(&d2).is_ok());
    }

    #[test]
    fn empty_language_converts() {
        let mut ab = Alphabet::new();
        ab.intern("a");
        let nfa = Nfa::from_regex(&Regex::Empty, Arc::new(ab));
        assert!(nfa.to_regex().is_empty_language());
    }
}
