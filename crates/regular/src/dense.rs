//! Flat transition tables backing [`Dfa`](crate::Dfa) hot operations.
//!
//! A [`DenseDfa`] packs the transition function into one contiguous
//! `states × symbols` array of `u32` targets plus a [`StateSet`] accepting
//! bitset. [`Dfa`](crate::Dfa) builds one at every construction boundary
//! (subset construction, `from_parts` — and therefore minimization — and
//! products) and routes its stepping, BFS searches, and dead-state analysis
//! through it: one multiply-add and one cache line per step instead of a
//! nested-`Vec` double indirection. The nested table stays on the `Dfa` as
//! the reference representation; the differential suite pins the two
//! byte-identical.

use crate::nfa::StateId;
use crate::stateset::StateSet;
use crate::symbol::Symbol;

/// A dense row-major transition table with an accepting bitset.
///
/// Construction-only invariants (`Dfa` validates before building): every
/// target is in range and every row has exactly `num_symbols` entries, so
/// lookups are plain arithmetic.
#[derive(Debug, Clone)]
pub struct DenseDfa {
    nsyms: usize,
    nstates: usize,
    start: u32,
    /// `table[q * nsyms + s]` is the successor of `q` on symbol index `s`.
    table: Box<[u32]>,
    accepting: StateSet,
}

impl DenseDfa {
    /// Flattens a validated nested transition table.
    ///
    /// # Panics
    ///
    /// Panics if any row is shorter than `nsyms`, if `accepting` is shorter
    /// than the table, or if a state id exceeds `u32`.
    pub fn from_table(
        nsyms: usize,
        table: &[Vec<StateId>],
        start: StateId,
        accepting: &[bool],
    ) -> DenseDfa {
        let nstates = table.len();
        let mut flat = Vec::with_capacity(nstates * nsyms);
        for row in table {
            for &dst in &row[..nsyms] {
                flat.push(u32::try_from(dst).expect("DFA state id exceeds u32"));
            }
        }
        let mut acc = StateSet::new(nstates);
        for (q, &is_acc) in accepting[..nstates].iter().enumerate() {
            if is_acc {
                acc.insert(q);
            }
        }
        DenseDfa {
            nsyms,
            nstates,
            start: u32::try_from(start).expect("DFA state id exceeds u32"),
            table: flat.into_boxed_slice(),
            accepting: acc,
        }
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.nstates
    }

    /// Number of alphabet symbols (the row width).
    pub fn num_symbols(&self) -> usize {
        self.nsyms
    }

    /// The start state.
    pub fn start(&self) -> StateId {
        self.start as StateId
    }

    /// The successor of `state` on `symbol`: one flat-array load.
    #[inline]
    pub fn step(&self, state: StateId, symbol: Symbol) -> StateId {
        self.table[state * self.nsyms + symbol.index()] as StateId
    }

    /// The full successor row of `state`, one `u32` per symbol index.
    ///
    /// Hot loops (BFS searches, dead-state predecessor scans) iterate this
    /// slice instead of re-indexing per symbol.
    #[inline]
    pub fn row(&self, state: StateId) -> &[u32] {
        &self.table[state * self.nsyms..(state + 1) * self.nsyms]
    }

    /// Whether `state` accepts (bitset probe).
    #[inline]
    pub fn is_accepting(&self, state: StateId) -> bool {
        self.accepting.contains(state)
    }

    /// The accepting states as a [`StateSet`] sized to this automaton.
    pub fn accepting_set(&self) -> &StateSet {
        &self.accepting
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flattens_rows_and_accepting_bits() {
        // Two states over two symbols: 0 -a-> 1, 0 -b-> 0, 1 -*-> 1.
        let table = vec![vec![1, 0], vec![1, 1]];
        let dense = DenseDfa::from_table(2, &table, 0, &[false, true]);
        assert_eq!(dense.num_states(), 2);
        assert_eq!(dense.num_symbols(), 2);
        assert_eq!(dense.start(), 0);
        assert_eq!(dense.step(0, Symbol::from_index(0)), 1);
        assert_eq!(dense.step(0, Symbol::from_index(1)), 0);
        assert_eq!(dense.row(1), &[1, 1]);
        assert!(!dense.is_accepting(0));
        assert!(dense.is_accepting(1));
        assert_eq!(dense.accepting_set().len(), 1);
    }

    #[test]
    fn empty_alphabet_table() {
        let dense = DenseDfa::from_table(0, &[vec![]], 0, &[true]);
        assert_eq!(dense.num_states(), 1);
        assert!(dense.row(0).is_empty());
        assert!(dense.is_accepting(0));
    }
}
