//! A small concrete syntax for regular expressions.
//!
//! Grammar (lowest to highest precedence):
//!
//! ```text
//! union  ::= concat (('+' | '|') concat)*
//! concat ::= starred (('·' | ';') starred | starred)*   -- juxtaposition allowed
//! starred ::= atom '*'*
//! atom   ::= 'eps' | 'ε' | 'void' | '∅' | IDENT | '(' union ')'
//! IDENT  ::= [A-Za-z_][A-Za-z0-9_.]*
//! ```
//!
//! Identifiers intern into the supplied [`Alphabet`]; dotted names like
//! `a.open` are single symbols (matching Shelley's event naming).

use crate::regex::Regex;
use crate::symbol::Alphabet;
use std::error::Error;
use std::fmt;

/// Error produced by [`parse_regex`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRegexError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseRegexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "regex parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl Error for ParseRegexError {}

/// Parses `input` into a [`Regex`], interning event names into `alphabet`.
///
/// # Errors
///
/// Returns [`ParseRegexError`] on malformed syntax.
///
/// # Examples
///
/// ```
/// use shelley_regular::{Alphabet, parse_regex};
/// let mut ab = Alphabet::new();
/// let r = parse_regex("(a.test ; (a.open + a.clean))*", &mut ab)?;
/// let test = ab.lookup("a.test").unwrap();
/// let open = ab.lookup("a.open").unwrap();
/// assert!(r.matches(&[test, open]));
/// # Ok::<(), shelley_regular::ParseRegexError>(())
/// ```
pub fn parse_regex(input: &str, alphabet: &mut Alphabet) -> Result<Regex, ParseRegexError> {
    let mut p = Parser {
        input,
        chars: input.char_indices().collect(),
        pos: 0,
        alphabet,
    };
    p.skip_ws();
    let r = p.union()?;
    p.skip_ws();
    if p.pos < p.chars.len() {
        return Err(p.error("unexpected trailing input"));
    }
    Ok(r)
}

struct Parser<'a> {
    input: &'a str,
    chars: Vec<(usize, char)>,
    pos: usize,
    alphabet: &'a mut Alphabet,
}

impl Parser<'_> {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).map(|&(_, c)| c)
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn offset(&self) -> usize {
        self.chars
            .get(self.pos)
            .map_or(self.input.len(), |&(o, _)| o)
    }

    fn error(&self, message: &str) -> ParseRegexError {
        ParseRegexError {
            offset: self.offset(),
            message: message.to_owned(),
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_whitespace()) {
            self.pos += 1;
        }
    }

    fn union(&mut self) -> Result<Regex, ParseRegexError> {
        let mut r = self.concat()?;
        loop {
            self.skip_ws();
            match self.peek() {
                Some('+') | Some('|') => {
                    self.bump();
                    self.skip_ws();
                    let rhs = self.concat()?;
                    r = Regex::union(r, rhs);
                }
                _ => return Ok(r),
            }
        }
    }

    fn concat(&mut self) -> Result<Regex, ParseRegexError> {
        let mut r = self.starred()?;
        loop {
            self.skip_ws();
            match self.peek() {
                Some(';') | Some('·') => {
                    self.bump();
                    self.skip_ws();
                    let rhs = self.starred()?;
                    r = Regex::concat(r, rhs);
                }
                // Juxtaposition: the next token starts an atom.
                Some('(') => {
                    let rhs = self.starred()?;
                    r = Regex::concat(r, rhs);
                }
                Some(c) if is_ident_start(c) => {
                    let rhs = self.starred()?;
                    r = Regex::concat(r, rhs);
                }
                _ => return Ok(r),
            }
        }
    }

    fn starred(&mut self) -> Result<Regex, ParseRegexError> {
        let mut r = self.atom()?;
        loop {
            self.skip_ws();
            if self.peek() == Some('*') {
                self.bump();
                r = Regex::star(r);
            } else {
                return Ok(r);
            }
        }
    }

    fn atom(&mut self) -> Result<Regex, ParseRegexError> {
        self.skip_ws();
        match self.peek() {
            Some('(') => {
                self.bump();
                let r = self.union()?;
                self.skip_ws();
                if self.peek() != Some(')') {
                    return Err(self.error("expected ')'"));
                }
                self.bump();
                Ok(r)
            }
            Some('ε') => {
                self.bump();
                Ok(Regex::epsilon())
            }
            Some('∅') => {
                self.bump();
                Ok(Regex::empty())
            }
            Some(c) if is_ident_start(c) => {
                let mut name = String::new();
                while matches!(self.peek(), Some(c) if is_ident_continue(c)) {
                    name.push(self.bump().unwrap());
                }
                match name.as_str() {
                    "eps" => Ok(Regex::epsilon()),
                    "void" => Ok(Regex::empty()),
                    _ => Ok(Regex::sym(self.alphabet.intern(&name))),
                }
            }
            Some(_) => Err(self.error("expected an atom")),
            None => Err(self.error("unexpected end of input")),
        }
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_' || c == '.'
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_example3() {
        let mut ab = Alphabet::new();
        let r = parse_regex("(a ; (b ; ∅ + c))* + (a ; (b ; ∅ + c))* ; a ; b", &mut ab).unwrap();
        let a = ab.lookup("a").unwrap();
        let b = ab.lookup("b").unwrap();
        let c = ab.lookup("c").unwrap();
        assert!(r.matches(&[a, c, a, c]));
        assert!(r.matches(&[a, c, a, b]));
        assert!(!r.matches(&[b]));
    }

    #[test]
    fn juxtaposition_concatenates() {
        let mut ab = Alphabet::new();
        let r = parse_regex("a b c", &mut ab).unwrap();
        let a = ab.lookup("a").unwrap();
        let b = ab.lookup("b").unwrap();
        let c = ab.lookup("c").unwrap();
        assert!(r.matches(&[a, b, c]));
        assert!(!r.matches(&[a, b]));
    }

    #[test]
    fn eps_and_void_keywords() {
        let mut ab = Alphabet::new();
        assert_eq!(parse_regex("eps", &mut ab).unwrap(), Regex::epsilon());
        assert_eq!(parse_regex("void", &mut ab).unwrap(), Regex::empty());
        assert_eq!(parse_regex("ε", &mut ab).unwrap(), Regex::epsilon());
        assert_eq!(parse_regex("∅", &mut ab).unwrap(), Regex::empty());
    }

    #[test]
    fn dotted_event_names_are_single_symbols() {
        let mut ab = Alphabet::new();
        let r = parse_regex("a.test ; a.open", &mut ab).unwrap();
        assert_eq!(ab.len(), 2);
        let t = ab.lookup("a.test").unwrap();
        let o = ab.lookup("a.open").unwrap();
        assert!(r.matches(&[t, o]));
    }

    #[test]
    fn reports_errors_with_offsets() {
        let mut ab = Alphabet::new();
        let err = parse_regex("(a + ", &mut ab).unwrap_err();
        assert!(err.message.contains("unexpected end"));
        let err = parse_regex("a )", &mut ab).unwrap_err();
        assert_eq!(err.offset, 2);
    }

    #[test]
    fn star_binds_tightest() {
        let mut ab = Alphabet::new();
        let r = parse_regex("a b*", &mut ab).unwrap();
        let a = ab.lookup("a").unwrap();
        let b = ab.lookup("b").unwrap();
        assert!(r.matches(&[a]));
        assert!(r.matches(&[a, b, b]));
        assert!(!r.matches(&[a, b, a, b]));
    }

    #[test]
    fn roundtrip_display_parse() {
        let mut ab = Alphabet::new();
        let original = parse_regex("(x ; y + z*) ; (w + eps)", &mut ab).unwrap();
        let shown = original.display(&ab).to_string();
        let mut ab2 = ab.clone();
        let reparsed = parse_regex(&shown, &mut ab2).unwrap();
        // Languages agree on a sample of words.
        let x = ab.lookup("x").unwrap();
        let y = ab.lookup("y").unwrap();
        let z = ab.lookup("z").unwrap();
        let w = ab.lookup("w").unwrap();
        for word in [
            vec![],
            vec![x, y],
            vec![x, y, w],
            vec![z, z, w],
            vec![z],
            vec![w],
            vec![x],
        ] {
            assert_eq!(
                original.matches(&word),
                reparsed.matches(&word),
                "word {:?} in {}",
                word,
                shown
            );
        }
    }
}
