//! Cross-representation language operations.
//!
//! The verification passes of `shelley-core` need one operation the plain
//! DFA algebra does not provide: searching an NFA whose words *interleave
//! marker symbols* (operation names in an integration automaton) against a
//! monitor DFA that only observes the non-marker symbols. Keeping the
//! markers in the witness lets error messages print traces exactly as the
//! paper does (`open_a, a.test, a.open`).

use crate::dfa::Dfa;
use crate::nfa::{Label, Nfa, StateId};
use crate::symbol::{Symbol, Word};
use std::collections::{BTreeSet, HashMap, VecDeque};

/// Searches for a shortest word accepted by both `nfa` and `monitor`, where
/// symbols in `ignored` advance only the NFA (the monitor does not observe
/// them).
///
/// The returned word *includes* the ignored marker symbols in the positions
/// where the NFA consumed them. Returns `None` when the (marker-erased)
/// intersection is empty.
///
/// # Panics
///
/// Panics if the automata have different alphabets.
pub fn shortest_joint_word(nfa: &Nfa, monitor: &Dfa, ignored: &BTreeSet<Symbol>) -> Option<Word> {
    assert_eq!(
        **nfa.alphabet(),
        **monitor.alphabet(),
        "joint search over different alphabets"
    );
    type Node = (StateId, StateId);
    let mut parent: HashMap<Node, (Node, Option<Symbol>)> = HashMap::new();
    let start = (nfa.start(), monitor.start());
    let mut deque: VecDeque<Node> = VecDeque::from([start]);
    let mut visited: BTreeSet<Node> = BTreeSet::from([start]);
    while let Some(node) = deque.pop_front() {
        let (qn, qd) = node;
        if nfa.is_accepting(qn) && monitor.is_accepting(qd) {
            let mut word = Vec::new();
            let mut cur = node;
            while let Some(&(prev, sym)) = parent.get(&cur) {
                if let Some(s) = sym {
                    word.push(s);
                }
                cur = prev;
            }
            word.reverse();
            return Some(word);
        }
        for &(label, dst) in nfa.edges_from(qn) {
            let (next, consumed, cost_free) = match label {
                Label::Eps => ((dst, qd), None, true),
                Label::Sym(s) if ignored.contains(&s) => ((dst, qd), Some(s), false),
                Label::Sym(s) => ((dst, monitor.step(qd, s)), Some(s), false),
            };
            if visited.insert(next) {
                parent.insert(next, (node, consumed));
                // 0-1 BFS: ε-edges keep path length; symbol edges extend it.
                if cost_free {
                    deque.push_front(next);
                } else {
                    deque.push_back(next);
                }
            }
        }
    }
    None
}

/// Checks whether the marker-erased language of `nfa` is included in
/// `spec`'s language; on failure returns a shortest violating word *with*
/// markers preserved.
///
/// Formally: let `π` erase the symbols in `markers`; this checks
/// `π(L(nfa)) ⊆ L(spec)` and, on failure, yields `w ∈ L(nfa)` with
/// `π(w) ∉ L(spec)`.
///
/// # Panics
///
/// Panics if the automata have different alphabets.
pub fn projected_subset(nfa: &Nfa, spec: &Dfa, markers: &BTreeSet<Symbol>) -> Result<(), Word> {
    let bad = spec.complement();
    match shortest_joint_word(nfa, &bad, markers) {
        None => Ok(()),
        Some(w) => Err(w),
    }
}

/// Removes every symbol in `markers` from `word`.
pub fn strip_markers(word: &[Symbol], markers: &BTreeSet<Symbol>) -> Word {
    word.iter()
        .copied()
        .filter(|s| !markers.contains(s))
        .collect()
}

/// Keeps only the symbols in `keep` (projection onto a sub-alphabet).
pub fn project(word: &[Symbol], keep: &BTreeSet<Symbol>) -> Word {
    word.iter().copied().filter(|s| keep.contains(s)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regex::Regex;
    use crate::symbol::Alphabet;
    use std::sync::Arc;

    #[test]
    fn joint_search_respects_markers() {
        // NFA language: m·a·m·b (markers m interleaved).
        // Monitor accepts exactly a·b. Joint word must be m,a,m,b.
        let mut ab = Alphabet::new();
        let m = ab.intern("m");
        let a = ab.intern("a");
        let b = ab.intern("b");
        let ab = Arc::new(ab);
        let nfa = Nfa::from_regex(&Regex::word(&[m, a, m, b]), ab.clone());
        let monitor = Dfa::from_nfa(&Nfa::from_regex(&Regex::word(&[a, b]), ab));
        let markers = BTreeSet::from([m]);
        let w = shortest_joint_word(&nfa, &monitor, &markers).unwrap();
        assert_eq!(w, vec![m, a, m, b]);
        assert_eq!(strip_markers(&w, &markers), vec![a, b]);
    }

    #[test]
    fn projected_subset_detects_violation() {
        let mut ab = Alphabet::new();
        let m = ab.intern("m");
        let a = ab.intern("a");
        let b = ab.intern("b");
        let ab = Arc::new(ab);
        let markers = BTreeSet::from([m]);
        // Behavior: m·a (marker then a). Spec: must be a·b.
        let nfa = Nfa::from_regex(&Regex::word(&[m, a]), ab.clone());
        let spec = Dfa::from_nfa(&Nfa::from_regex(&Regex::word(&[a, b]), ab.clone()));
        let witness = projected_subset(&nfa, &spec, &markers).unwrap_err();
        assert_eq!(strip_markers(&witness, &markers), vec![a]);
        // Conforming behavior passes.
        let good = Nfa::from_regex(&Regex::word(&[m, a, b]), ab);
        assert!(projected_subset(&good, &spec, &markers).is_ok());
    }

    #[test]
    fn joint_search_finds_shortest() {
        let mut ab = Alphabet::new();
        let a = ab.intern("a");
        let b = ab.intern("b");
        let ab = Arc::new(ab);
        // NFA: a·a·a + b; monitor: everything.
        let nfa = Nfa::from_regex(
            &Regex::union(Regex::word(&[a, a, a]), Regex::sym(b)),
            ab.clone(),
        );
        let sigma = Regex::star(Regex::union(Regex::sym(a), Regex::sym(b)));
        let monitor = Dfa::from_nfa(&Nfa::from_regex(&sigma, ab));
        let w = shortest_joint_word(&nfa, &monitor, &BTreeSet::new()).unwrap();
        assert_eq!(w, vec![b]);
    }

    #[test]
    fn project_keeps_only_requested_symbols() {
        let mut ab = Alphabet::new();
        let a = ab.intern("a");
        let b = ab.intern("b");
        let c = ab.intern("c");
        let keep = BTreeSet::from([a, c]);
        assert_eq!(project(&[a, b, c, b, a], &keep), vec![a, c, a]);
    }
}
