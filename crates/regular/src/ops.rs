//! Cross-representation language operations.
//!
//! The verification passes of `shelley-core` need one operation the plain
//! DFA algebra does not provide: searching an NFA whose words *interleave
//! marker symbols* (operation names in an integration automaton) against a
//! monitor that only observes the non-marker symbols. Keeping the markers
//! in the witness lets error messages print traces exactly as the paper
//! does (`open_a, a.test, a.open`).
//!
//! Since the language-view refactor, the monitor side is any [`Lang`] — an
//! eager [`Dfa`](crate::Dfa), an on-the-fly
//! [`NfaView`](crate::lang::NfaView), or an
//! LTLf progression monitor — so no caller has to determinize or compile a
//! monitor automaton before searching. The NFA side keeps its explicit
//! edge-order 0-1 BFS: ε-edges cost nothing, symbol edges cost one, which
//! both guarantees shortest witnesses and preserves the exact tie-breaking
//! the eager engine produced (the monitor is deterministic, so lazily
//! stepping it visits the same product graph in the same order).

use crate::lang::{self, Complement, Lang};
use crate::nfa::{Label, Nfa, StateId};
use crate::symbol::{Symbol, Word};
use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};

/// The outcome of a counted joint search: the witness (if any) plus the
/// number of distinct product states discovered.
///
/// The state count is what the lazy-vs-eager benchmarks compare against the
/// size of the materialized monitor: an adversarial claim can have an
/// exponential monitor DFA while the reachable product stays linear in the
/// model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JointSearch {
    /// A shortest joint word, `None` when the intersection is empty.
    pub witness: Option<Word>,
    /// Distinct `(NFA state, monitor state)` pairs discovered.
    pub visited: usize,
}

/// Searches for a shortest word accepted by both `nfa` and `monitor`, where
/// symbols in `ignored` advance only the NFA (the monitor does not observe
/// them).
///
/// The returned word *includes* the ignored marker symbols in the positions
/// where the NFA consumed them. Returns `None` when the (marker-erased)
/// intersection is empty.
///
/// The monitor is stepped lazily through its [`Lang`] interface; passing an
/// eager [`Dfa`](crate::Dfa) reproduces the pre-refactor behavior (and
/// witness) exactly.
///
/// # Panics
///
/// Panics if the automata are over different alphabets, or if `ignored`
/// contains a symbol outside the shared alphabet (a symbol interned into
/// some other alphabet) — marker sets must always come from the same
/// [`Alphabet`](crate::Alphabet) as the automata.
pub fn shortest_joint_word<L: Lang>(
    nfa: &Nfa,
    monitor: &L,
    ignored: &BTreeSet<Symbol>,
) -> Option<Word> {
    shortest_joint_word_counted(nfa, monitor, ignored).witness
}

/// [`shortest_joint_word`] plus the number of product states discovered.
///
/// # Panics
///
/// Same contract as [`shortest_joint_word`].
pub fn shortest_joint_word_counted<L: Lang>(
    nfa: &Nfa,
    monitor: &L,
    ignored: &BTreeSet<Symbol>,
) -> JointSearch {
    assert_eq!(
        **nfa.alphabet(),
        **monitor.alphabet(),
        "joint search over different alphabets"
    );
    lang::assert_markers_in_alphabet(ignored, nfa.alphabet());
    type Node<S> = (StateId, S);
    type Parents<S> = HashMap<Node<S>, (Node<S>, Option<Symbol>)>;
    let mut parent: Parents<L::State> = HashMap::new();
    let start = (nfa.start(), monitor.start());
    let mut deque: VecDeque<Node<L::State>> = VecDeque::from([start.clone()]);
    let mut visited: HashSet<Node<L::State>> = HashSet::from([start]);
    while let Some(node) = deque.pop_front() {
        let (qn, ref qm) = node;
        if nfa.is_accepting(qn) && monitor.is_accepting(qm) {
            let mut word = Vec::new();
            let mut cur = node;
            while let Some((prev, sym)) = parent.get(&cur) {
                if let Some(s) = sym {
                    word.push(*s);
                }
                cur = prev.clone();
            }
            word.reverse();
            return JointSearch {
                witness: Some(word),
                visited: visited.len(),
            };
        }
        for &(label, dst) in nfa.edges_from(qn) {
            let (next, consumed, cost_free) = match label {
                Label::Eps => ((dst, qm.clone()), None, true),
                Label::Sym(s) if ignored.contains(&s) => ((dst, qm.clone()), Some(s), false),
                Label::Sym(s) => ((dst, monitor.step(qm, s)), Some(s), false),
            };
            if visited.insert(next.clone()) {
                parent.insert(next.clone(), (node.clone(), consumed));
                // 0-1 BFS: ε-edges keep path length; symbol edges extend it.
                if cost_free {
                    deque.push_front(next);
                } else {
                    deque.push_back(next);
                }
            }
        }
    }
    JointSearch {
        witness: None,
        visited: visited.len(),
    }
}

/// Checks whether the marker-erased language of `nfa` is included in
/// `spec`'s language; on failure returns a shortest violating word *with*
/// markers preserved.
///
/// Formally: let `π` erase the symbols in `markers`; this checks
/// `π(L(nfa)) ⊆ L(spec)` and, on failure, yields `w ∈ L(nfa)` with
/// `π(w) ∉ L(spec)`.
///
/// The spec is complemented lazily (acceptance flip on its [`Lang`] view),
/// so passing an [`NfaView`](crate::lang::NfaView) of the spec automaton
/// performs the whole check without any subset construction.
///
/// # Panics
///
/// Same contract as [`shortest_joint_word`]: the automata must share one
/// alphabet and every marker must belong to it.
pub fn projected_subset<L: Lang>(
    nfa: &Nfa,
    spec: &L,
    markers: &BTreeSet<Symbol>,
) -> Result<(), Word> {
    match shortest_joint_word(nfa, &Complement::new(spec), markers) {
        None => Ok(()),
        Some(w) => Err(w),
    }
}

/// Removes every symbol in `markers` from `word`.
pub fn strip_markers(word: &[Symbol], markers: &BTreeSet<Symbol>) -> Word {
    word.iter()
        .copied()
        .filter(|s| !markers.contains(s))
        .collect()
}

/// Keeps only the symbols in `keep` (projection onto a sub-alphabet).
pub fn project(word: &[Symbol], keep: &BTreeSet<Symbol>) -> Word {
    word.iter().copied().filter(|s| keep.contains(s)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfa::Dfa;
    use crate::lang::NfaView;
    use crate::regex::Regex;
    use crate::symbol::Alphabet;
    use std::sync::Arc;

    #[test]
    fn joint_search_respects_markers() {
        // NFA language: m·a·m·b (markers m interleaved).
        // Monitor accepts exactly a·b. Joint word must be m,a,m,b.
        let mut ab = Alphabet::new();
        let m = ab.intern("m");
        let a = ab.intern("a");
        let b = ab.intern("b");
        let ab = Arc::new(ab);
        let nfa = Nfa::from_regex(&Regex::word(&[m, a, m, b]), ab.clone());
        let monitor = Dfa::from_nfa(&Nfa::from_regex(&Regex::word(&[a, b]), ab));
        let markers = BTreeSet::from([m]);
        let w = shortest_joint_word(&nfa, &monitor, &markers).unwrap();
        assert_eq!(w, vec![m, a, m, b]);
        assert_eq!(strip_markers(&w, &markers), vec![a, b]);
    }

    #[test]
    fn projected_subset_detects_violation() {
        let mut ab = Alphabet::new();
        let m = ab.intern("m");
        let a = ab.intern("a");
        let b = ab.intern("b");
        let ab = Arc::new(ab);
        let markers = BTreeSet::from([m]);
        // Behavior: m·a (marker then a). Spec: must be a·b.
        let nfa = Nfa::from_regex(&Regex::word(&[m, a]), ab.clone());
        let spec = Dfa::from_nfa(&Nfa::from_regex(&Regex::word(&[a, b]), ab.clone()));
        let witness = projected_subset(&nfa, &spec, &markers).unwrap_err();
        assert_eq!(strip_markers(&witness, &markers), vec![a]);
        // Conforming behavior passes.
        let good = Nfa::from_regex(&Regex::word(&[m, a, b]), ab);
        assert!(projected_subset(&good, &spec, &markers).is_ok());
    }

    #[test]
    fn joint_search_finds_shortest() {
        let mut ab = Alphabet::new();
        let a = ab.intern("a");
        let b = ab.intern("b");
        let ab = Arc::new(ab);
        // NFA: a·a·a + b; monitor: everything.
        let nfa = Nfa::from_regex(
            &Regex::union(Regex::word(&[a, a, a]), Regex::sym(b)),
            ab.clone(),
        );
        let sigma = Regex::star(Regex::union(Regex::sym(a), Regex::sym(b)));
        let monitor = Dfa::from_nfa(&Nfa::from_regex(&sigma, ab));
        let w = shortest_joint_word(&nfa, &monitor, &BTreeSet::new()).unwrap();
        assert_eq!(w, vec![b]);
    }

    #[test]
    fn project_keeps_only_requested_symbols() {
        let mut ab = Alphabet::new();
        let a = ab.intern("a");
        let b = ab.intern("b");
        let c = ab.intern("c");
        let keep = BTreeSet::from([a, c]);
        assert_eq!(project(&[a, b, c, b, a], &keep), vec![a, c, a]);
    }

    #[test]
    fn lazy_monitor_matches_eager_monitor() {
        // Same search, one eager Dfa monitor, one lazy NfaView monitor:
        // identical witnesses, and the lazy side visits no *more* states.
        let mut ab = Alphabet::new();
        let m = ab.intern("m");
        let a = ab.intern("a");
        let b = ab.intern("b");
        let ab = Arc::new(ab);
        let markers = BTreeSet::from([m]);
        let model = Nfa::from_regex(
            &Regex::union(Regex::word(&[m, a, b]), Regex::word(&[m, b, a])),
            ab.clone(),
        );
        let spec_nfa = Nfa::from_regex(&Regex::word(&[a, b]), ab);
        let spec_dfa = Dfa::from_nfa(&spec_nfa);
        let eager = projected_subset(&model, &spec_dfa, &markers);
        let lazy = projected_subset(&model, &NfaView::new(&spec_nfa), &markers);
        assert_eq!(eager, lazy);
        assert_eq!(eager.unwrap_err(), vec![m, b, a]);
    }

    #[test]
    fn marker_only_traces_need_an_empty_accepting_monitor() {
        // The model's only word is pure markers: m·m. Its projection is ε,
        // so inclusion holds iff the spec accepts ε.
        let mut ab = Alphabet::new();
        let m = ab.intern("m");
        let a = ab.intern("a");
        let ab = Arc::new(ab);
        let markers = BTreeSet::from([m]);
        let model = Nfa::from_regex(&Regex::word(&[m, m]), ab.clone());

        // Spec requiring at least one `a`: the marker-only trace violates
        // it, and the witness preserves the markers.
        let strict = Dfa::from_nfa(&Nfa::from_regex(&Regex::sym(a), ab.clone()));
        let witness = projected_subset(&model, &strict, &markers).unwrap_err();
        assert_eq!(witness, vec![m, m]);
        assert!(strip_markers(&witness, &markers).is_empty());

        // Spec accepting ε (a*): the same trace conforms.
        let lenient = Dfa::from_nfa(&Nfa::from_regex(&Regex::star(Regex::sym(a)), ab));
        assert!(projected_subset(&model, &lenient, &markers).is_ok());
    }

    #[test]
    fn empty_alphabet_joint_search() {
        // Over an empty alphabet the only word is ε; the joint search
        // reduces to "do both start states accept".
        let ab = Arc::new(Alphabet::new());
        let eps = Nfa::from_regex(&Regex::Epsilon, ab.clone());
        let void = Nfa::from_regex(&Regex::Empty, ab);
        let accept_eps = Dfa::from_nfa(&eps);
        assert_eq!(
            shortest_joint_word(&eps, &accept_eps, &BTreeSet::new()),
            Some(vec![])
        );
        assert_eq!(
            shortest_joint_word(&void, &accept_eps, &BTreeSet::new()),
            None
        );
        assert!(projected_subset(&void, &accept_eps, &BTreeSet::new()).is_ok());
    }

    #[test]
    #[should_panic(expected = "outside the shared alphabet")]
    fn ignored_symbols_must_belong_to_the_alphabet() {
        // A marker interned into a *different* alphabet is a caller bug:
        // the search panics instead of silently never matching it.
        let mut ab = Alphabet::new();
        let a = ab.intern("a");
        let ab = Arc::new(ab);
        let nfa = Nfa::from_regex(&Regex::sym(a), ab.clone());
        let monitor = Dfa::from_nfa(&nfa);
        let mut other = Alphabet::new();
        other.intern("x");
        let foreign = other.intern("y"); // index 1, outside `ab` (len 1).
        let _ = shortest_joint_word(&nfa, &monitor, &BTreeSet::from([foreign]));
    }

    #[test]
    #[should_panic(expected = "different alphabets")]
    fn joint_search_rejects_mismatched_alphabets() {
        let mut ab1 = Alphabet::new();
        let a = ab1.intern("a");
        let nfa = Nfa::from_regex(&Regex::sym(a), Arc::new(ab1));
        let mut ab2 = Alphabet::new();
        let b = ab2.intern("b");
        let monitor = Dfa::from_nfa(&Nfa::from_regex(&Regex::sym(b), Arc::new(ab2)));
        let _ = shortest_joint_word(&nfa, &monitor, &BTreeSet::new());
    }

    #[test]
    fn counted_search_reports_product_states() {
        let mut ab = Alphabet::new();
        let a = ab.intern("a");
        let b = ab.intern("b");
        let ab = Arc::new(ab);
        let nfa = Nfa::from_regex(&Regex::word(&[a, b]), ab.clone());
        let monitor = Dfa::from_nfa(&Nfa::from_regex(&Regex::word(&[a, b]), ab));
        let search = shortest_joint_word_counted(&nfa, &monitor, &BTreeSet::new());
        assert_eq!(search.witness, Some(vec![a, b]));
        assert!(search.visited >= 3, "visited {}", search.visited);
    }
}
