//! Regular expressions over event symbols.
//!
//! This is the target representation of the paper's behavior inference:
//! `r ::= ε | ∅ | f | r·r | r+r | r*` (Fig. 4). Construction goes through
//! smart constructors that apply the standard algebraic identities
//! (`∅·r = ∅`, `ε·r = r`, `∅+r = r`, `(r*)* = r*`, …) so inferred behaviors
//! stay small.

use crate::symbol::{Alphabet, Symbol};
use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

/// A regular expression over [`Symbol`]s.
///
/// Values are immutable trees with shared (`Arc`) children, so cloning is
/// cheap. Use the associated constructor functions rather than building
/// variants directly: they normalize away trivial redexes.
///
/// # Examples
///
/// ```
/// use shelley_regular::{Alphabet, Regex};
///
/// let mut ab = Alphabet::new();
/// let a = ab.intern("a");
/// let b = ab.intern("b");
/// // (a·b)* — matches the empty word and any repetition of "ab".
/// let r = Regex::star(Regex::concat(Regex::sym(a), Regex::sym(b)));
/// assert!(r.matches(&[]));
/// assert!(r.matches(&[a, b, a, b]));
/// assert!(!r.matches(&[a, a]));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Regex {
    /// The empty language `∅`.
    Empty,
    /// The language containing only the empty word, `ε`.
    Epsilon,
    /// A single event symbol `f`.
    Sym(Symbol),
    /// Concatenation `r₁·r₂`.
    Concat(Arc<Regex>, Arc<Regex>),
    /// Union `r₁+r₂`.
    Union(Arc<Regex>, Arc<Regex>),
    /// Kleene star `r*`.
    Star(Arc<Regex>),
}

impl Regex {
    /// The empty language `∅`.
    pub fn empty() -> Self {
        Regex::Empty
    }

    /// The empty word `ε`.
    pub fn epsilon() -> Self {
        Regex::Epsilon
    }

    /// A single symbol.
    pub fn sym(s: Symbol) -> Self {
        Regex::Sym(s)
    }

    /// Concatenation with simplification (`∅` annihilates, `ε` is identity).
    pub fn concat(a: Regex, b: Regex) -> Self {
        match (a, b) {
            (Regex::Empty, _) | (_, Regex::Empty) => Regex::Empty,
            (Regex::Epsilon, r) | (r, Regex::Epsilon) => r,
            (a, b) => Regex::Concat(Arc::new(a), Arc::new(b)),
        }
    }

    /// Union with simplification (`∅` is identity; idempotence on equal arms).
    pub fn union(a: Regex, b: Regex) -> Self {
        match (a, b) {
            (Regex::Empty, r) | (r, Regex::Empty) => r,
            (a, b) if a == b => a,
            (a, b) => Regex::Union(Arc::new(a), Arc::new(b)),
        }
    }

    /// Kleene star with simplification (`∅* = ε* = ε`, `(r*)* = r*`).
    pub fn star(a: Regex) -> Self {
        match a {
            Regex::Empty | Regex::Epsilon => Regex::Epsilon,
            s @ Regex::Star(_) => s,
            a => Regex::Star(Arc::new(a)),
        }
    }

    /// Concatenates all expressions in order (`ε` for an empty sequence).
    pub fn concat_all<I: IntoIterator<Item = Regex>>(items: I) -> Self {
        items.into_iter().fold(Regex::Epsilon, Regex::concat)
    }

    /// Unions all expressions (`∅` for an empty sequence).
    pub fn union_all<I: IntoIterator<Item = Regex>>(items: I) -> Self {
        items.into_iter().fold(Regex::Empty, Regex::union)
    }

    /// The expression matching exactly the given word.
    pub fn word(word: &[Symbol]) -> Self {
        Regex::concat_all(word.iter().copied().map(Regex::sym))
    }

    /// Whether the empty word is in the language (`ε ∈ L(r)`).
    pub fn nullable(&self) -> bool {
        match self {
            Regex::Empty | Regex::Sym(_) => false,
            Regex::Epsilon | Regex::Star(_) => true,
            Regex::Concat(a, b) => a.nullable() && b.nullable(),
            Regex::Union(a, b) => a.nullable() || b.nullable(),
        }
    }

    /// Whether the language is empty (`L(r) = ∅`).
    ///
    /// This structural check is exact for regular expressions.
    pub fn is_empty_language(&self) -> bool {
        match self {
            Regex::Empty => true,
            Regex::Epsilon | Regex::Sym(_) | Regex::Star(_) => false,
            Regex::Concat(a, b) => a.is_empty_language() || b.is_empty_language(),
            Regex::Union(a, b) => a.is_empty_language() && b.is_empty_language(),
        }
    }

    /// Number of AST nodes.
    pub fn size(&self) -> usize {
        match self {
            Regex::Empty | Regex::Epsilon | Regex::Sym(_) => 1,
            Regex::Concat(a, b) | Regex::Union(a, b) => 1 + a.size() + b.size(),
            Regex::Star(a) => 1 + a.size(),
        }
    }

    /// The set of symbols that occur in the expression.
    pub fn symbols(&self) -> BTreeSet<Symbol> {
        let mut out = BTreeSet::new();
        self.collect_symbols(&mut out);
        out
    }

    fn collect_symbols(&self, out: &mut BTreeSet<Symbol>) {
        match self {
            Regex::Empty | Regex::Epsilon => {}
            Regex::Sym(s) => {
                out.insert(*s);
            }
            Regex::Concat(a, b) | Regex::Union(a, b) => {
                a.collect_symbols(out);
                b.collect_symbols(out);
            }
            Regex::Star(a) => a.collect_symbols(out),
        }
    }

    /// Renders the expression with symbol names from `alphabet`, in the
    /// paper's notation (`·`, `+`, `*`, `ε`, `∅`).
    pub fn display<'a>(&'a self, alphabet: &'a Alphabet) -> DisplayRegex<'a> {
        DisplayRegex {
            regex: self,
            alphabet,
        }
    }
}

/// Pretty-printer returned by [`Regex::display`].
#[derive(Debug)]
pub struct DisplayRegex<'a> {
    regex: &'a Regex,
    alphabet: &'a Alphabet,
}

impl fmt::Display for DisplayRegex<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_regex(f, self.regex, self.alphabet, 0)
    }
}

/// Precedence levels: union = 0, concat = 1, star/atom = 2.
fn write_regex(f: &mut fmt::Formatter<'_>, r: &Regex, ab: &Alphabet, prec: u8) -> fmt::Result {
    match r {
        Regex::Empty => write!(f, "∅"),
        Regex::Epsilon => write!(f, "ε"),
        Regex::Sym(s) => write!(f, "{}", ab.name(*s)),
        Regex::Union(a, b) => {
            if prec > 0 {
                write!(f, "(")?;
            }
            write_regex(f, a, ab, 0)?;
            write!(f, " + ")?;
            write_regex(f, b, ab, 0)?;
            if prec > 0 {
                write!(f, ")")?;
            }
            Ok(())
        }
        Regex::Concat(a, b) => {
            if prec > 1 {
                write!(f, "(")?;
            }
            write_regex(f, a, ab, 1)?;
            write!(f, " · ")?;
            write_regex(f, b, ab, 1)?;
            if prec > 1 {
                write!(f, ")")?;
            }
            Ok(())
        }
        Regex::Star(a) => {
            write_regex(f, a, ab, 2)?;
            write!(f, "*")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn abc() -> (Alphabet, Symbol, Symbol, Symbol) {
        let mut ab = Alphabet::new();
        let a = ab.intern("a");
        let b = ab.intern("b");
        let c = ab.intern("c");
        (ab, a, b, c)
    }

    #[test]
    fn smart_concat_simplifies() {
        let (_, a, _, _) = abc();
        assert_eq!(Regex::concat(Regex::empty(), Regex::sym(a)), Regex::Empty);
        assert_eq!(
            Regex::concat(Regex::epsilon(), Regex::sym(a)),
            Regex::sym(a)
        );
        assert_eq!(
            Regex::concat(Regex::sym(a), Regex::epsilon()),
            Regex::sym(a)
        );
    }

    #[test]
    fn smart_union_simplifies() {
        let (_, a, _, _) = abc();
        assert_eq!(Regex::union(Regex::empty(), Regex::sym(a)), Regex::sym(a));
        assert_eq!(Regex::union(Regex::sym(a), Regex::sym(a)), Regex::sym(a));
    }

    #[test]
    fn smart_star_simplifies() {
        let (_, a, _, _) = abc();
        assert_eq!(Regex::star(Regex::empty()), Regex::Epsilon);
        assert_eq!(Regex::star(Regex::epsilon()), Regex::Epsilon);
        let sa = Regex::star(Regex::sym(a));
        assert_eq!(Regex::star(sa.clone()), sa);
    }

    #[test]
    fn nullable_cases() {
        let (_, a, b, _) = abc();
        assert!(Regex::epsilon().nullable());
        assert!(!Regex::empty().nullable());
        assert!(!Regex::sym(a).nullable());
        assert!(Regex::star(Regex::sym(a)).nullable());
        assert!(Regex::union(Regex::sym(a), Regex::epsilon()).nullable());
        assert!(!Regex::concat(Regex::sym(a), Regex::sym(b)).nullable());
    }

    #[test]
    fn empty_language_detection() {
        let (_, a, _, _) = abc();
        assert!(Regex::Empty.is_empty_language());
        // Manually-built (bypassing smart constructors) dead concatenation.
        let dead = Regex::Concat(Arc::new(Regex::Sym(a)), Arc::new(Regex::Empty));
        assert!(dead.is_empty_language());
        assert!(!Regex::star(Regex::sym(a)).is_empty_language());
    }

    #[test]
    fn display_matches_paper_notation() {
        let (ab, a, b, c) = abc();
        // (a·((b·∅)+c))* from Example 3, built without simplification of b·∅.
        let inner = Regex::Union(
            Arc::new(Regex::Concat(
                Arc::new(Regex::Sym(b)),
                Arc::new(Regex::Empty),
            )),
            Arc::new(Regex::Sym(c)),
        );
        let r = Regex::Star(Arc::new(Regex::Concat(
            Arc::new(Regex::Sym(a)),
            Arc::new(inner),
        )));
        assert_eq!(r.display(&ab).to_string(), "(a · (b · ∅ + c))*");
    }

    #[test]
    fn word_and_size() {
        let (_, a, b, _) = abc();
        let w = Regex::word(&[a, b]);
        assert!(w.matches(&[a, b]));
        assert!(!w.matches(&[a]));
        assert!(w.size() >= 3);
    }
}
