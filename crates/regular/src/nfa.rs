//! Nondeterministic finite automata with ε-transitions.
//!
//! NFAs are the glue representation of the pipeline: inferred behaviors
//! (regular expressions) compile to NFAs via Thompson's construction, class
//! specifications compile to NFAs directly from their dependency graphs, and
//! composite-class *integration automata* are assembled with [`NfaBuilder`]
//! by inlining behavior fragments between specification states.

use crate::regex::Regex;
use crate::symbol::{Alphabet, Symbol, Word};
use std::collections::{BTreeSet, VecDeque};
use std::sync::Arc;

/// Index of an automaton state.
pub type StateId = usize;

/// An NFA edge label: either an ε-transition or an event symbol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Label {
    /// Silent transition.
    Eps,
    /// Transition consuming one event.
    Sym(Symbol),
}

/// A nondeterministic finite automaton over an [`Alphabet`].
///
/// # Examples
///
/// ```
/// use shelley_regular::{Alphabet, Regex, Nfa};
/// use std::sync::Arc;
///
/// let mut ab = Alphabet::new();
/// let a = ab.intern("a");
/// let r = Regex::star(Regex::sym(a));
/// let nfa = Nfa::from_regex(&r, Arc::new(ab));
/// assert!(nfa.accepts(&[]));
/// assert!(nfa.accepts(&[a, a]));
/// ```
#[derive(Debug, Clone)]
pub struct Nfa {
    alphabet: Arc<Alphabet>,
    edges: Vec<Vec<(Label, StateId)>>,
    start: StateId,
    accepting: Vec<bool>,
}

impl Nfa {
    /// Starts building an NFA over `alphabet`.
    pub fn builder(alphabet: Arc<Alphabet>) -> NfaBuilder {
        NfaBuilder {
            alphabet,
            edges: Vec::new(),
            start: None,
            accepting: Vec::new(),
        }
    }

    /// Compiles `regex` to an NFA with Thompson's construction.
    pub fn from_regex(regex: &Regex, alphabet: Arc<Alphabet>) -> Nfa {
        let mut b = Nfa::builder(alphabet);
        let entry = b.add_state();
        b.set_start(entry);
        let exit = b.add_regex(entry, regex);
        b.mark_accepting(exit);
        b.build()
    }

    /// The automaton's alphabet.
    pub fn alphabet(&self) -> &Arc<Alphabet> {
        &self.alphabet
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.edges.len()
    }

    /// Number of edges (including ε-edges).
    pub fn num_edges(&self) -> usize {
        self.edges.iter().map(Vec::len).sum()
    }

    /// The start state.
    pub fn start(&self) -> StateId {
        self.start
    }

    /// Whether `state` is accepting.
    pub fn is_accepting(&self, state: StateId) -> bool {
        self.accepting[state]
    }

    /// Outgoing edges of `state`.
    pub fn edges_from(&self, state: StateId) -> &[(Label, StateId)] {
        &self.edges[state]
    }

    /// ε-closure of a set of states (returned sorted and deduplicated).
    ///
    /// This is the **slow reference path**: it re-walks ε-edges on every
    /// call and allocates a fresh `BTreeSet`. The hot paths — subset
    /// construction, [`NfaView`](crate::lang::NfaView) stepping, the joint
    /// searches — all run on [`CompiledNfa`](crate::CompiledNfa)'s
    /// precomputed per-state closures instead. It is kept (rather than
    /// removed in the bitset migration) as the obviously-correct oracle
    /// behind [`NfaViewRef`](crate::lang::NfaViewRef) and the differential
    /// property suites, and for one-shot membership tests like
    /// [`accepts`](Self::accepts) where compiling first would cost more
    /// than it saves.
    pub fn epsilon_closure(&self, states: &BTreeSet<StateId>) -> BTreeSet<StateId> {
        let mut closure = states.clone();
        let mut queue: VecDeque<StateId> = states.iter().copied().collect();
        while let Some(q) = queue.pop_front() {
            for &(label, dst) in &self.edges[q] {
                if label == Label::Eps && closure.insert(dst) {
                    queue.push_back(dst);
                }
            }
        }
        closure
    }

    /// Decides `word ∈ L(self)` by on-the-fly subset simulation.
    pub fn accepts(&self, word: &[Symbol]) -> bool {
        let mut current = self.epsilon_closure(&BTreeSet::from([self.start]));
        for &s in word {
            let mut next = BTreeSet::new();
            for &q in &current {
                for &(label, dst) in &self.edges[q] {
                    if label == Label::Sym(s) {
                        next.insert(dst);
                    }
                }
            }
            if next.is_empty() {
                return false;
            }
            current = self.epsilon_closure(&next);
        }
        current.iter().any(|&q| self.accepting[q])
    }

    /// Returns a copy where every edge labeled with a symbol in `erased` is
    /// turned into an ε-edge.
    ///
    /// This implements projection: erasing the symbols outside a subsystem's
    /// alphabet yields an NFA for the projected language (which stays over
    /// the same alphabet object).
    pub fn erase_symbols(&self, erased: &BTreeSet<Symbol>) -> Nfa {
        let mut out = self.clone();
        for edges in &mut out.edges {
            for (label, _) in edges.iter_mut() {
                if let Label::Sym(s) = *label {
                    if erased.contains(&s) {
                        *label = Label::Eps;
                    }
                }
            }
        }
        out
    }

    /// Finds a shortest accepted word, if the language is nonempty.
    pub fn shortest_accepted(&self) -> Option<Word> {
        // BFS over states; ε-edges cost nothing but BFS on (state) with
        // per-state best word works since all symbol edges cost 1.
        let mut parent: Vec<Option<(StateId, Option<Symbol>)>> = vec![None; self.edges.len()];
        let mut visited = vec![false; self.edges.len()];
        let mut queue = VecDeque::new();
        visited[self.start] = true;
        queue.push_back(self.start);
        // 0-1 BFS: ε edges go to the front.
        let mut deque: VecDeque<StateId> = queue;
        while let Some(q) = deque.pop_front() {
            if self.accepting[q] {
                let mut word = Vec::new();
                let mut cur = q;
                while let Some((prev, sym)) = parent[cur] {
                    if let Some(s) = sym {
                        word.push(s);
                    }
                    cur = prev;
                }
                word.reverse();
                return Some(word);
            }
            for &(label, dst) in &self.edges[q] {
                if !visited[dst] {
                    visited[dst] = true;
                    parent[dst] = Some((q, label_symbol(label)));
                    match label {
                        Label::Eps => deque.push_front(dst),
                        Label::Sym(_) => deque.push_back(dst),
                    }
                }
            }
        }
        None
    }
}

fn label_symbol(label: Label) -> Option<Symbol> {
    match label {
        Label::Eps => None,
        Label::Sym(s) => Some(s),
    }
}

/// Incremental NFA constructor returned by [`Nfa::builder`].
#[derive(Debug)]
pub struct NfaBuilder {
    alphabet: Arc<Alphabet>,
    edges: Vec<Vec<(Label, StateId)>>,
    start: Option<StateId>,
    accepting: Vec<bool>,
}

impl NfaBuilder {
    /// Adds a fresh, non-accepting state.
    pub fn add_state(&mut self) -> StateId {
        self.edges.push(Vec::new());
        self.accepting.push(false);
        self.edges.len() - 1
    }

    /// Adds an edge.
    pub fn add_edge(&mut self, from: StateId, label: Label, to: StateId) {
        self.edges[from].push((label, to));
    }

    /// Sets the start state.
    pub fn set_start(&mut self, state: StateId) {
        self.start = Some(state);
    }

    /// Marks `state` accepting.
    pub fn mark_accepting(&mut self, state: StateId) {
        self.accepting[state] = true;
    }

    /// Inlines a Thompson fragment for `regex` starting at `entry`, returning
    /// the fragment's exit state.
    ///
    /// This is how integration automata splice method behaviors between
    /// specification states: the caller owns `entry` and connects the
    /// returned exit wherever the surrounding structure requires.
    pub fn add_regex(&mut self, entry: StateId, regex: &Regex) -> StateId {
        match regex {
            Regex::Empty => {
                // A dead end: fresh exit with no path from entry.
                self.add_state()
            }
            Regex::Epsilon => entry,
            Regex::Sym(s) => {
                let exit = self.add_state();
                self.add_edge(entry, Label::Sym(*s), exit);
                exit
            }
            Regex::Concat(a, b) => {
                let mid = self.add_regex(entry, a);
                self.add_regex(mid, b)
            }
            Regex::Union(a, b) => {
                let exit = self.add_state();
                let ea = self.add_regex(entry, a);
                self.add_edge(ea, Label::Eps, exit);
                let eb = self.add_regex(entry, b);
                self.add_edge(eb, Label::Eps, exit);
                exit
            }
            Regex::Star(a) => {
                let hub = self.add_state();
                self.add_edge(entry, Label::Eps, hub);
                let back = self.add_regex(hub, a);
                self.add_edge(back, Label::Eps, hub);
                hub
            }
        }
    }

    /// Finalizes the automaton.
    ///
    /// # Panics
    ///
    /// Panics if no start state was set.
    pub fn build(self) -> Nfa {
        Nfa {
            alphabet: self.alphabet,
            edges: self.edges,
            start: self.start.expect("NFA start state not set"),
            accepting: self.accepting,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ab3() -> (Arc<Alphabet>, Symbol, Symbol, Symbol) {
        let mut ab = Alphabet::new();
        let a = ab.intern("a");
        let b = ab.intern("b");
        let c = ab.intern("c");
        (Arc::new(ab), a, b, c)
    }

    #[test]
    fn thompson_agrees_with_derivatives_on_samples() {
        let (ab, a, b, c) = ab3();
        let r = Regex::union(
            Regex::star(Regex::concat(Regex::sym(a), Regex::sym(b))),
            Regex::concat(Regex::sym(c), Regex::star(Regex::sym(a))),
        );
        let nfa = Nfa::from_regex(&r, ab);
        let words: Vec<Vec<Symbol>> = vec![
            vec![],
            vec![a],
            vec![a, b],
            vec![a, b, a, b],
            vec![c],
            vec![c, a, a],
            vec![b],
            vec![c, b],
        ];
        for w in words {
            assert_eq!(nfa.accepts(&w), r.matches(&w), "word {:?}", w);
        }
    }

    #[test]
    fn empty_regex_yields_empty_language() {
        let (ab, a, _, _) = ab3();
        let nfa = Nfa::from_regex(&Regex::empty(), ab);
        assert!(!nfa.accepts(&[]));
        assert!(!nfa.accepts(&[a]));
        assert_eq!(nfa.shortest_accepted(), None);
    }

    #[test]
    fn erase_symbols_projects() {
        let (ab, a, b, _) = ab3();
        // a·b·a with b erased accepts a·a.
        let r = Regex::word(&[a, b, a]);
        let nfa = Nfa::from_regex(&r, ab);
        let projected = nfa.erase_symbols(&BTreeSet::from([b]));
        assert!(projected.accepts(&[a, a]));
        assert!(!projected.accepts(&[a, b, a]));
    }

    #[test]
    fn shortest_accepted_finds_minimum() {
        let (ab, a, b, _) = ab3();
        let r = Regex::union(Regex::word(&[a, b, a]), Regex::word(&[b]));
        let nfa = Nfa::from_regex(&r, ab);
        assert_eq!(nfa.shortest_accepted(), Some(vec![b]));
    }

    #[test]
    fn builder_spec_style_graph() {
        // start --a--> s1 --b--> s2(accepting), with loop s1 --a--> s1.
        let (ab, a, b, _) = ab3();
        let mut builder = Nfa::builder(ab);
        let start = builder.add_state();
        let s1 = builder.add_state();
        let s2 = builder.add_state();
        builder.set_start(start);
        builder.add_edge(start, Label::Sym(a), s1);
        builder.add_edge(s1, Label::Sym(a), s1);
        builder.add_edge(s1, Label::Sym(b), s2);
        builder.mark_accepting(s2);
        let nfa = builder.build();
        assert!(nfa.accepts(&[a, b]));
        assert!(nfa.accepts(&[a, a, a, b]));
        assert!(!nfa.accepts(&[b]));
        assert!(!nfa.accepts(&[a]));
    }
}
