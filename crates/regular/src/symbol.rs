//! Interned event symbols and alphabets.
//!
//! Every automaton and regular expression in this crate works over a dense
//! space of [`Symbol`] identifiers that are interned into an [`Alphabet`].
//! In the Shelley setting a symbol is an *event*: either an operation name of
//! a base class (`"test"`, `"open"`) or a qualified call on a subsystem
//! instance (`"a.open"`, `"b.test"`).

use std::collections::HashMap;
use std::fmt;

/// An interned event name.
///
/// Symbols are cheap to copy and compare; the human-readable name lives in
/// the [`Alphabet`] that produced the symbol.
///
/// # Examples
///
/// ```
/// use shelley_regular::Alphabet;
///
/// let mut ab = Alphabet::new();
/// let open = ab.intern("a.open");
/// assert_eq!(ab.name(open), "a.open");
/// assert_eq!(ab.intern("a.open"), open);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(u32);

impl Symbol {
    /// Returns the dense index of this symbol within its alphabet.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a symbol from a dense index.
    ///
    /// Callers must only use indices previously produced by the owning
    /// [`Alphabet`]; using a foreign index yields a symbol whose name lookup
    /// will panic.
    pub fn from_index(index: usize) -> Self {
        Symbol(u32::try_from(index).expect("alphabet larger than u32::MAX"))
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Symbols serialize as their dense index, so a persisted word is only
/// meaningful alongside the alphabet (or event list) it was interned in.
impl serde::Serialize for Symbol {
    fn serialize(&self) -> serde::Value {
        serde::Value::UInt(u64::from(self.0))
    }
}

impl serde::Deserialize for Symbol {
    fn deserialize(value: &serde::Value) -> Result<Self, serde::Error> {
        let n = <u32 as serde::Deserialize>::deserialize(value)
            .map_err(|_| serde::Error::new("expected symbol index"))?;
        Ok(Symbol(n))
    }
}

/// A finite set of named event symbols.
///
/// The alphabet owns the mapping between names and dense [`Symbol`] ids. All
/// automata constructed from the same alphabet are compatible and can be
/// combined with product constructions.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Alphabet {
    names: Vec<String>,
    by_name: HashMap<String, Symbol>,
}

impl Alphabet {
    /// Creates an empty alphabet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an alphabet containing the given names, in order.
    ///
    /// # Examples
    ///
    /// ```
    /// use shelley_regular::Alphabet;
    /// let ab = Alphabet::from_names(["a", "b", "c"]);
    /// assert_eq!(ab.len(), 3);
    /// ```
    pub fn from_names<I, S>(names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut ab = Self::new();
        for n in names {
            ab.intern(n.as_ref());
        }
        ab
    }

    /// Interns `name`, returning its symbol (existing or fresh).
    pub fn intern(&mut self, name: &str) -> Symbol {
        if let Some(&s) = self.by_name.get(name) {
            return s;
        }
        let s = Symbol::from_index(self.names.len());
        self.names.push(name.to_owned());
        self.by_name.insert(name.to_owned(), s);
        s
    }

    /// Looks up an already-interned name.
    pub fn lookup(&self, name: &str) -> Option<Symbol> {
        self.by_name.get(name).copied()
    }

    /// Returns the name of `symbol`.
    ///
    /// # Panics
    ///
    /// Panics if `symbol` was not produced by this alphabet.
    pub fn name(&self, symbol: Symbol) -> &str {
        &self.names[symbol.index()]
    }

    /// Number of symbols in the alphabet.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the alphabet is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over all symbols in dense order.
    pub fn symbols(&self) -> impl Iterator<Item = Symbol> + '_ {
        (0..self.names.len()).map(Symbol::from_index)
    }

    /// Iterates over `(symbol, name)` pairs in dense order.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &str)> + '_ {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (Symbol::from_index(i), n.as_str()))
    }

    /// Renders a word as a comma-separated list of names.
    ///
    /// # Examples
    ///
    /// ```
    /// use shelley_regular::Alphabet;
    /// let mut ab = Alphabet::new();
    /// let a = ab.intern("a.test");
    /// let b = ab.intern("a.open");
    /// assert_eq!(ab.render_word(&[a, b]), "a.test, a.open");
    /// ```
    pub fn render_word(&self, word: &[Symbol]) -> String {
        word.iter()
            .map(|&s| self.name(s))
            .collect::<Vec<_>>()
            .join(", ")
    }
}

/// A finite word over an alphabet.
pub type Word = Vec<Symbol>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut ab = Alphabet::new();
        let a1 = ab.intern("x");
        let a2 = ab.intern("x");
        assert_eq!(a1, a2);
        assert_eq!(ab.len(), 1);
    }

    #[test]
    fn lookup_finds_interned_names_only() {
        let mut ab = Alphabet::new();
        let s = ab.intern("open");
        assert_eq!(ab.lookup("open"), Some(s));
        assert_eq!(ab.lookup("close"), None);
    }

    #[test]
    fn symbols_iterate_in_dense_order() {
        let ab = Alphabet::from_names(["a", "b", "c"]);
        let names: Vec<&str> = ab.symbols().map(|s| ab.name(s)).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
    }

    #[test]
    fn render_word_empty() {
        let ab = Alphabet::new();
        assert_eq!(ab.render_word(&[]), "");
    }
}
