//! Lazy language views: on-the-fly automata combinators.
//!
//! Every check in the verification stack reduces to a reachability search
//! over some product automaton, yet the eager [`Dfa`] algebra forces the
//! *whole* automaton into existence first — subset construction and monitor
//! compilation are exponential in the worst case even when the reachable
//! product is tiny. This module provides the lazy counterpart: a [`Lang`]
//! trait describing a complete deterministic transition system by
//! `start`/`step`/`is_accepting` over a hashable state type, combinators
//! that compose views without materializing them ([`Product`],
//! [`Complement`], [`EraseMarkers`]), and generic algorithms
//! ([`shortest_accepted`], [`is_empty`], [`subset_of`], [`materialize`])
//! that explore **only the reachable states**, memoizing them by hash.
//!
//! The eager algebra stays available as the slow-but-obviously-correct
//! oracle; property tests assert the two engines agree byte-for-byte. The
//! algorithms here deliberately mirror the eager traversal order (FIFO
//! queue, symbols in dense index order, acceptance tested at dequeue) so
//! shortest witnesses are *identical* to the eager ones — the shortlex-least
//! shortest word — not merely equal in length.
//!
//! Use [`materialize`] only at export boundaries (diagrams, NuSMV models,
//! statistics): it is the single escape hatch back into the eager [`Dfa`]
//! world and costs the full reachable state space.
//!
//! # Examples
//!
//! ```
//! use shelley_regular::lang::{self, Complement, NfaView, Product};
//! use shelley_regular::{Alphabet, Nfa, Regex};
//! use std::sync::Arc;
//!
//! let mut ab = Alphabet::new();
//! let a = ab.intern("a");
//! let b = ab.intern("b");
//! let ab = Arc::new(ab);
//! let spec = Nfa::from_regex(&Regex::word(&[a, b]), ab.clone());
//! let behavior = Nfa::from_regex(&Regex::word(&[a]), ab);
//! // Is L(behavior) ⊆ L(spec)? Searched lazily — no subset construction.
//! let witness = lang::subset_of(&NfaView::new(&behavior), &NfaView::new(&spec));
//! assert_eq!(witness.unwrap_err(), vec![a]);
//! # let _ = (Complement::new(NfaView::new(&spec)), Product::intersection(NfaView::new(&spec), NfaView::new(&spec)));
//! ```

use crate::compiled::CompiledNfa;
use crate::dfa::Dfa;
use crate::nfa::{Label, Nfa, StateId};
use crate::stateset::StateSet;
use crate::symbol::{Alphabet, Symbol, Word};
use std::collections::{BTreeSet, HashMap, VecDeque};
use std::hash::Hash;
use std::sync::Arc;

/// A complete deterministic language view.
///
/// Implementors describe a transition system *lazily*: states are produced
/// on demand by [`step`](Lang::step) and are never enumerated up front. The
/// view must be **complete** (every state has a successor on every alphabet
/// symbol — use a rejecting sink for partial functions) and
/// **deterministic**; both properties make [`Complement`] a sound
/// combinator, exactly as for [`Dfa`].
///
/// States must be hashable so the generic algorithms can memoize visited
/// states without materializing the automaton.
pub trait Lang {
    /// The state representation (interned DFA ids, NFA subsets, formulas…).
    type State: Clone + Eq + Hash;

    /// The alphabet the language is over.
    fn alphabet(&self) -> &Arc<Alphabet>;

    /// The initial state.
    fn start(&self) -> Self::State;

    /// The unique successor of `state` on `symbol`.
    fn step(&self, state: &Self::State, symbol: Symbol) -> Self::State;

    /// Writes the successor of `state` on `symbol` into `out`, reusing
    /// `out`'s storage where the representation allows.
    ///
    /// The default clones through [`step`](Lang::step). Views whose states
    /// own heap storage ([`NfaView`]'s bitsets, products and complements
    /// of such) override or forward it so the generic searches
    /// ([`shortest_accepted`], [`materialize`], the antichain engine in
    /// [`crate::antichain`]) allocate only when a genuinely new state must
    /// be retained — the same discipline as [`CompiledNfa::step_into`].
    fn step_into(&self, state: &Self::State, symbol: Symbol, out: &mut Self::State) {
        *out = self.step(state, symbol);
    }

    /// Whether `state` accepts.
    fn is_accepting(&self, state: &Self::State) -> bool;
}

/// A reference to a view is itself a view (lets combinators borrow).
impl<L: Lang + ?Sized> Lang for &L {
    type State = L::State;

    fn alphabet(&self) -> &Arc<Alphabet> {
        (**self).alphabet()
    }

    fn start(&self) -> Self::State {
        (**self).start()
    }

    fn step(&self, state: &Self::State, symbol: Symbol) -> Self::State {
        (**self).step(state, symbol)
    }

    fn step_into(&self, state: &Self::State, symbol: Symbol, out: &mut Self::State) {
        (**self).step_into(state, symbol, out);
    }

    fn is_accepting(&self, state: &Self::State) -> bool {
        (**self).is_accepting(state)
    }
}

/// An eager DFA is trivially a view: states are its interned ids.
impl Lang for Dfa {
    type State = StateId;

    fn alphabet(&self) -> &Arc<Alphabet> {
        Dfa::alphabet(self)
    }

    fn start(&self) -> StateId {
        Dfa::start(self)
    }

    fn step(&self, state: &StateId, symbol: Symbol) -> StateId {
        Dfa::step(self, *state, symbol)
    }

    fn is_accepting(&self, state: &StateId) -> bool {
        Dfa::is_accepting(self, *state)
    }
}

/// On-the-fly determinization of an [`Nfa`], on the bitset engine.
///
/// States are ε-closed subsets of NFA states as [`StateSet`] bitsets;
/// [`step`](Lang::step) performs one symbol move plus ε-closure by unioning
/// the [`CompiledNfa`]'s precomputed per-state closures — no `BTreeSet`
/// allocation, no ε-edge walk. No subset construction happens up front:
/// only the subsets actually reached by a search are ever built, which is
/// the whole point — [`Dfa::from_nfa`] enumerates all of them eagerly.
///
/// Construction compiles the NFA once (ε-closures + CSR successor table);
/// the view is cheap to clone afterwards. [`materialize`]d, this view
/// yields a [`Dfa`] identical (states and numbering included) to
/// `Dfa::from_nfa` on the same NFA. The retired `BTreeSet` representation
/// survives as [`NfaViewRef`], the reference engine differential tests pin
/// this one against.
#[derive(Debug, Clone)]
pub struct NfaView<'a> {
    nfa: &'a Nfa,
    compiled: Arc<CompiledNfa>,
}

impl<'a> NfaView<'a> {
    /// Wraps `nfa`, compiling its ε-closure and successor tables once.
    pub fn new(nfa: &'a Nfa) -> Self {
        NfaView {
            nfa,
            compiled: Arc::new(CompiledNfa::compile(nfa)),
        }
    }

    /// The underlying NFA.
    pub fn nfa(&self) -> &'a Nfa {
        self.nfa
    }

    /// The compiled tables the view steps over.
    pub fn compiled(&self) -> &CompiledNfa {
        &self.compiled
    }
}

impl Lang for NfaView<'_> {
    type State = StateSet;

    fn alphabet(&self) -> &Arc<Alphabet> {
        self.nfa.alphabet()
    }

    fn start(&self) -> Self::State {
        self.compiled.start_set()
    }

    fn step(&self, state: &Self::State, symbol: Symbol) -> Self::State {
        self.compiled.step(state, symbol)
    }

    fn step_into(&self, state: &Self::State, symbol: Symbol, out: &mut Self::State) {
        self.compiled.step_into(state, symbol, out);
    }

    fn is_accepting(&self, state: &Self::State) -> bool {
        self.compiled.is_accepting(state)
    }
}

/// The retired `BTreeSet`-based determinization view, kept as the slow
/// reference engine.
///
/// Semantics are identical to [`NfaView`]: states are ε-closed subsets,
/// stepping is one symbol move plus [`Nfa::epsilon_closure`]. The only
/// difference is the representation — one heap node per set element and a
/// fresh ε-edge walk per step — which is exactly why it exists: the
/// differential property suites materialize and search both engines and
/// assert byte-identical automata, witnesses, and state numbering. Use
/// [`NfaView`] everywhere else.
#[derive(Debug, Clone, Copy)]
pub struct NfaViewRef<'a> {
    nfa: &'a Nfa,
}

impl<'a> NfaViewRef<'a> {
    /// Wraps `nfa` without determinizing or compiling it.
    pub fn new(nfa: &'a Nfa) -> Self {
        NfaViewRef { nfa }
    }
}

impl Lang for NfaViewRef<'_> {
    type State = BTreeSet<StateId>;

    fn alphabet(&self) -> &Arc<Alphabet> {
        self.nfa.alphabet()
    }

    fn start(&self) -> Self::State {
        self.nfa
            .epsilon_closure(&BTreeSet::from([self.nfa.start()]))
    }

    fn step(&self, state: &Self::State, symbol: Symbol) -> Self::State {
        let mut next = BTreeSet::new();
        for &q in state {
            for &(label, dst) in self.nfa.edges_from(q) {
                if label == Label::Sym(symbol) {
                    next.insert(dst);
                }
            }
        }
        self.nfa.epsilon_closure(&next)
    }

    fn is_accepting(&self, state: &Self::State) -> bool {
        state.iter().any(|&q| self.nfa.is_accepting(q))
    }
}

/// How a [`Product`] combines the acceptance of its two factors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BoolOp {
    And,
    Or,
    Diff,
}

/// The lazy product of two views; states are pairs explored on demand.
///
/// Mirrors the eager [`Dfa::intersect`]/[`Dfa::union`]/[`Dfa::difference`]
/// triple without building the pair table.
#[derive(Debug, Clone)]
pub struct Product<A, B> {
    a: A,
    b: B,
    op: BoolOp,
}

impl<A: Lang, B: Lang> Product<A, B> {
    fn new(a: A, b: B, op: BoolOp) -> Self {
        assert_eq!(
            **a.alphabet(),
            **b.alphabet(),
            "product of language views over different alphabets"
        );
        Product { a, b, op }
    }

    /// `L(a) ∩ L(b)`.
    ///
    /// # Panics
    ///
    /// Panics if the alphabets differ.
    pub fn intersection(a: A, b: B) -> Self {
        Product::new(a, b, BoolOp::And)
    }

    /// `L(a) ∪ L(b)`.
    ///
    /// # Panics
    ///
    /// Panics if the alphabets differ.
    pub fn union(a: A, b: B) -> Self {
        Product::new(a, b, BoolOp::Or)
    }

    /// `L(a) \ L(b)`.
    ///
    /// # Panics
    ///
    /// Panics if the alphabets differ.
    pub fn difference(a: A, b: B) -> Self {
        Product::new(a, b, BoolOp::Diff)
    }
}

impl<A: Lang, B: Lang> Lang for Product<A, B> {
    type State = (A::State, B::State);

    fn alphabet(&self) -> &Arc<Alphabet> {
        self.a.alphabet()
    }

    fn start(&self) -> Self::State {
        (self.a.start(), self.b.start())
    }

    fn step(&self, state: &Self::State, symbol: Symbol) -> Self::State {
        (self.a.step(&state.0, symbol), self.b.step(&state.1, symbol))
    }

    fn step_into(&self, state: &Self::State, symbol: Symbol, out: &mut Self::State) {
        self.a.step_into(&state.0, symbol, &mut out.0);
        self.b.step_into(&state.1, symbol, &mut out.1);
    }

    fn is_accepting(&self, state: &Self::State) -> bool {
        let (qa, qb) = (self.a.is_accepting(&state.0), self.b.is_accepting(&state.1));
        match self.op {
            BoolOp::And => qa && qb,
            BoolOp::Or => qa || qb,
            BoolOp::Diff => qa && !qb,
        }
    }
}

/// The complement view: flips acceptance.
///
/// Sound because every [`Lang`] is complete and deterministic by contract —
/// the same argument that makes [`Dfa::complement`] a one-liner.
#[derive(Debug, Clone)]
pub struct Complement<L> {
    inner: L,
}

impl<L: Lang> Complement<L> {
    /// Wraps `inner`, accepting exactly the words it rejects.
    pub fn new(inner: L) -> Self {
        Complement { inner }
    }
}

impl<L: Lang> Lang for Complement<L> {
    type State = L::State;

    fn alphabet(&self) -> &Arc<Alphabet> {
        self.inner.alphabet()
    }

    fn start(&self) -> Self::State {
        self.inner.start()
    }

    fn step(&self, state: &Self::State, symbol: Symbol) -> Self::State {
        self.inner.step(state, symbol)
    }

    fn step_into(&self, state: &Self::State, symbol: Symbol, out: &mut Self::State) {
        self.inner.step_into(state, symbol, out);
    }

    fn is_accepting(&self, state: &Self::State) -> bool {
        !self.inner.is_accepting(state)
    }
}

/// A view that is blind to a set of marker symbols.
///
/// Stepping on a marker stays in place, so the wrapped language observes
/// only the marker-erased projection of each word. This is how a claim
/// monitor tracks an integration automaton whose words interleave operation
/// markers with subsystem events: the markers advance the model, not the
/// monitor.
#[derive(Debug, Clone)]
pub struct EraseMarkers<L> {
    inner: L,
    markers: BTreeSet<Symbol>,
}

impl<L: Lang> EraseMarkers<L> {
    /// Wraps `inner`; symbols in `markers` become invisible self-loops.
    ///
    /// # Panics
    ///
    /// Panics if any marker is not a symbol of `inner`'s alphabet.
    pub fn new(inner: L, markers: BTreeSet<Symbol>) -> Self {
        assert_markers_in_alphabet(&markers, inner.alphabet());
        EraseMarkers { inner, markers }
    }
}

impl<L: Lang> Lang for EraseMarkers<L> {
    type State = L::State;

    fn alphabet(&self) -> &Arc<Alphabet> {
        self.inner.alphabet()
    }

    fn start(&self) -> Self::State {
        self.inner.start()
    }

    fn step(&self, state: &Self::State, symbol: Symbol) -> Self::State {
        if self.markers.contains(&symbol) {
            state.clone()
        } else {
            self.inner.step(state, symbol)
        }
    }

    fn step_into(&self, state: &Self::State, symbol: Symbol, out: &mut Self::State) {
        if self.markers.contains(&symbol) {
            out.clone_from(state);
        } else {
            self.inner.step_into(state, symbol, out);
        }
    }

    fn is_accepting(&self, state: &Self::State) -> bool {
        self.inner.is_accepting(state)
    }
}

/// Panics unless every symbol in `markers` belongs to `alphabet`.
///
/// Shared contract between [`EraseMarkers`] and the marker-aware searches in
/// [`crate::ops`]: out-of-alphabet markers are always a caller bug (a symbol
/// interned into a *different* alphabet), never a soft condition.
pub(crate) fn assert_markers_in_alphabet(markers: &BTreeSet<Symbol>, alphabet: &Alphabet) {
    for &m in markers {
        assert!(
            m.index() < alphabet.len(),
            "marker symbol #{} is outside the shared alphabet ({} symbols)",
            m.index(),
            alphabet.len()
        );
    }
}

/// Finds a shortest accepted word by lazy BFS, if the language is nonempty.
///
/// Explores only reachable states, memoized by hash. The traversal mirrors
/// [`Dfa::shortest_accepted`] exactly — FIFO queue, successors expanded in
/// dense symbol order, acceptance tested at dequeue — so the witness is the
/// shortlex-least shortest word, byte-identical to the eager engine's.
pub fn shortest_accepted<L: Lang>(lang: &L) -> Option<Word> {
    shortest_accepted_counted(lang).0
}

/// [`shortest_accepted`] plus the number of distinct states visited.
///
/// The count is the size of the explored region (all states *discovered*,
/// whether or not dequeued), which is what the lazy-vs-eager benchmarks
/// compare against the materialized automaton's size.
pub fn shortest_accepted_counted<L: Lang>(lang: &L) -> (Option<Word>, usize) {
    let nsyms = lang.alphabet().len();
    let mut index: HashMap<L::State, usize> = HashMap::new();
    let mut states: Vec<L::State> = Vec::new();
    let mut parent: Vec<Option<(usize, Symbol)>> = Vec::new();
    let start = lang.start();
    index.insert(start.clone(), 0);
    states.push(start);
    parent.push(None);
    let mut queue: VecDeque<usize> = VecDeque::from([0]);
    // One scratch successor reused across every step: the search allocates
    // only when a genuinely new state must be interned (see
    // [`Lang::step_into`]).
    let mut scratch = lang.start();
    while let Some(q) = queue.pop_front() {
        if lang.is_accepting(&states[q]) {
            let mut word = Vec::new();
            let mut cur = q;
            while let Some((prev, sym)) = parent[cur] {
                word.push(sym);
                cur = prev;
            }
            word.reverse();
            return (Some(word), states.len());
        }
        for sym_idx in 0..nsyms {
            let sym = Symbol::from_index(sym_idx);
            lang.step_into(&states[q], sym, &mut scratch);
            if !index.contains_key(&scratch) {
                let id = states.len();
                index.insert(scratch.clone(), id);
                states.push(scratch.clone());
                parent.push(Some((q, sym)));
                queue.push_back(id);
            }
        }
    }
    (None, states.len())
}

/// Whether the language is empty, by lazy reachability.
pub fn is_empty<L: Lang>(lang: &L) -> bool {
    shortest_accepted(lang).is_none()
}

/// Checks `L(a) ⊆ L(b)` lazily; on failure returns a shortest word in the
/// difference (byte-identical to [`Dfa::subset_of`]'s witness).
///
/// This is the *classic* engine: it distinguishes every reachable product
/// state, exponential when `b` is a blowing-up [`NfaView`]. The pruned
/// engine in [`crate::antichain`] decides the same question while
/// discarding ⊆-subsumed spec macrostates; this one stays as the
/// differential oracle and the source of canonical shortlex witnesses.
///
/// # Panics
///
/// Panics if the alphabets differ.
pub fn subset_of<A: Lang, B: Lang>(a: &A, b: &B) -> Result<(), Word> {
    match shortest_accepted(&Product::difference(a, b)) {
        None => Ok(()),
        Some(w) => Err(w),
    }
}

/// Materializes a view into an eager [`Dfa`] — the escape hatch back into
/// the eager world for diagram, NuSMV, and statistics export.
///
/// States are numbered in BFS discovery order with symbols scanned in dense
/// index order — the same order as [`Dfa::from_nfa`] — so materializing an
/// [`NfaView`] reproduces subset construction exactly, golden outputs
/// included.
///
/// The reachable state space must be finite (true for every view in this
/// workspace: NFA subsets, DFA ids, product pairs, and canonicalized LTLf
/// progression formulas are all finitely many).
pub fn materialize<L: Lang>(lang: &L) -> Dfa {
    let alphabet = lang.alphabet().clone();
    let nsyms = alphabet.len();
    let mut index: HashMap<L::State, usize> = HashMap::new();
    let mut states: Vec<L::State> = Vec::new();
    let mut table: Vec<Vec<StateId>> = Vec::new();
    let mut accepting: Vec<bool> = Vec::new();

    let start = lang.start();
    index.insert(start.clone(), 0);
    accepting.push(lang.is_accepting(&start));
    states.push(start);
    table.push(vec![usize::MAX; nsyms]);

    let mut queue: VecDeque<usize> = VecDeque::from([0]);
    // Scratch successor reused across steps, as in
    // [`shortest_accepted_counted`]: allocation happens only at interning.
    let mut scratch = lang.start();
    while let Some(q) = queue.pop_front() {
        for sym_idx in 0..nsyms {
            let sym = Symbol::from_index(sym_idx);
            lang.step_into(&states[q], sym, &mut scratch);
            let dst = match index.get(&scratch) {
                Some(&d) => d,
                None => {
                    let d = states.len();
                    index.insert(scratch.clone(), d);
                    accepting.push(lang.is_accepting(&scratch));
                    states.push(scratch.clone());
                    table.push(vec![usize::MAX; nsyms]);
                    queue.push_back(d);
                    d
                }
            };
            table[q][sym_idx] = dst;
        }
    }
    Dfa::from_parts(alphabet, table, 0, accepting)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_regex;
    use std::sync::Arc;

    fn compile(pattern: &str) -> (Nfa, Arc<Alphabet>) {
        let mut ab = Alphabet::new();
        let re = parse_regex(pattern, &mut ab).unwrap();
        let ab = Arc::new(ab);
        (Nfa::from_regex(&re, ab.clone()), ab)
    }

    #[test]
    fn nfa_view_agrees_with_subset_construction() {
        let (nfa, _) = compile("(a ; b)* + (a ; c)");
        let eager = Dfa::from_nfa(&nfa);
        let lazy = materialize(&NfaView::new(&nfa));
        assert_eq!(lazy.num_states(), eager.num_states());
        assert_eq!(lazy.start(), eager.start());
        for q in 0..eager.num_states() {
            assert_eq!(lazy.is_accepting(q), eager.is_accepting(q));
            for (sym, _) in eager.alphabet().iter() {
                assert_eq!(lazy.step(q, sym), eager.step(q, sym), "state {q}");
            }
        }
    }

    #[test]
    fn lazy_witnesses_match_eager_witnesses() {
        let (nfa, _) = compile("(a ; a ; a) + (b ; c) + c");
        let eager = Dfa::from_nfa(&nfa);
        assert_eq!(
            shortest_accepted(&NfaView::new(&nfa)),
            eager.shortest_accepted()
        );
        assert_eq!(is_empty(&NfaView::new(&nfa)), eager.is_empty());
    }

    #[test]
    fn product_and_complement_agree_with_dfa_algebra() {
        let mut ab = Alphabet::new();
        let re1 = parse_regex("(a + b)*", &mut ab).unwrap();
        let re2 = parse_regex("a ; (a + b)*", &mut ab).unwrap();
        let ab = Arc::new(ab);
        let n1 = Nfa::from_regex(&re1, ab.clone());
        let n2 = Nfa::from_regex(&re2, ab);
        let (d1, d2) = (Dfa::from_nfa(&n1), Dfa::from_nfa(&n2));
        let (v1, v2) = (NfaView::new(&n1), NfaView::new(&n2));

        // Difference witness identical to the eager engine.
        assert_eq!(
            shortest_accepted(&Product::difference(&v1, &v2)),
            d1.difference(&d2).shortest_accepted()
        );
        // Intersection / union emptiness agree.
        assert_eq!(
            is_empty(&Product::intersection(&v1, &v2)),
            d1.intersect(&d2).is_empty()
        );
        assert_eq!(
            is_empty(&Product::union(&v1, &v2)),
            d1.union(&d2).is_empty()
        );
        // Complement round-trips.
        assert_eq!(
            shortest_accepted(&Complement::new(&v2)),
            d2.complement().shortest_accepted()
        );
    }

    #[test]
    fn subset_of_matches_dfa_subset_of() {
        let mut ab = Alphabet::new();
        let small = parse_regex("a ; b", &mut ab).unwrap();
        let big = parse_regex("(a ; b) + (a ; c)", &mut ab).unwrap();
        let ab = Arc::new(ab);
        let ns = Nfa::from_regex(&small, ab.clone());
        let nb = Nfa::from_regex(&big, ab);
        let (ds, db) = (Dfa::from_nfa(&ns), Dfa::from_nfa(&nb));
        assert_eq!(subset_of(&NfaView::new(&ns), &NfaView::new(&nb)), Ok(()));
        assert_eq!(
            subset_of(&NfaView::new(&nb), &NfaView::new(&ns)),
            db.subset_of(&ds)
        );
    }

    #[test]
    fn erase_markers_makes_symbols_invisible() {
        let mut ab = Alphabet::new();
        let m = ab.intern("m");
        let a = ab.intern("a");
        let spec = parse_regex("a", &mut ab).unwrap();
        let ab = Arc::new(ab);
        let spec = Nfa::from_regex(&spec, ab);
        // The blind view accepts m·a·m because it only sees `a`.
        let view = EraseMarkers::new(NfaView::new(&spec), BTreeSet::from([m]));
        let mut state = view.start();
        for s in [m, a, m] {
            state = view.step(&state, s);
        }
        assert!(view.is_accepting(&state));
        assert!(!view.is_accepting(&view.start()));
    }

    #[test]
    #[should_panic(expected = "outside the shared alphabet")]
    fn erase_markers_rejects_foreign_symbols() {
        let (nfa, _) = compile("a");
        let foreign = Symbol::from_index(99);
        let _ = EraseMarkers::new(NfaView::new(&nfa), BTreeSet::from([foreign]));
    }

    #[test]
    #[should_panic(expected = "different alphabets")]
    fn product_rejects_mismatched_alphabets() {
        let (n1, _) = compile("a");
        let (n2, _) = compile("a ; b");
        let _ = Product::intersection(NfaView::new(&n1), NfaView::new(&n2));
    }

    #[test]
    fn counted_search_reports_explored_region() {
        let (nfa, _) = compile("a ; b ; c");
        let (word, visited) = shortest_accepted_counted(&NfaView::new(&nfa));
        assert!(word.is_some());
        // The search cannot have explored more than the full subset space.
        assert!(visited <= Dfa::from_nfa(&nfa).num_states());
        assert!(visited >= 1);
    }

    #[test]
    fn empty_alphabet_views_work() {
        let ab = Arc::new(Alphabet::new());
        let nfa = Nfa::from_regex(&crate::regex::Regex::Epsilon, ab);
        let view = NfaView::new(&nfa);
        assert_eq!(shortest_accepted(&view), Some(vec![]));
        let dfa = materialize(&view);
        assert!(dfa.accepts(&[]));
        assert!(is_empty(&Complement::new(&view)));
    }
}
