//! # shelley-regular
//!
//! Regular-expression and finite-automata toolkit underlying the Shelley
//! model-inference pipeline from *Formalizing Model Inference of
//! MicroPython* (DSN-W 2023).
//!
//! The paper's central result (Corollary 1) is that the behavior of a
//! method body is a **regular language**: behavior inference produces a
//! regular expression (`r ::= ε | ∅ | f | r·r | r+r | r*`), and all
//! downstream verification — subsystem-usage checking and LTLf temporal
//! claims — reduces to automata-theoretic operations on that language. This
//! crate provides those foundations:
//!
//! * [`Symbol`] / [`Alphabet`] — interned event names (`a.open`, `test`).
//! * [`Regex`] — the paper's regular expressions with smart constructors,
//!   [Brzozowski derivatives](Regex::derivative) and
//!   [membership](Regex::matches).
//! * [`Nfa`] — ε-NFAs with Thompson compilation, a builder for
//!   specification graphs, projection by symbol erasure, shortest-word
//!   search.
//! * [`StateSet`] / [`CompiledNfa`] — the bitset state engine: dense
//!   `u64`-block subsets plus once-per-NFA compiled ε-closures and CSR
//!   successor tables, powering allocation-free determinized stepping in
//!   every hot path below.
//! * [`Dfa`] — complete DFAs with subset construction, boolean algebra,
//!   inclusion/equivalence with shortest counterexamples,
//!   [Hopcroft minimization](Dfa::minimize), shortlex
//!   [word enumeration](Dfa::enumerate_words), each hot operation stepping
//!   a flat [`DenseDfa`] transition table.
//! * [`antichain`] — inclusion checking that prunes ⊆-subsumed spec
//!   macrostates (De Wulf–Doyen–Henzinger–Raskin), the engine under the
//!   verification hot path; the classic searches remain as oracles.
//! * [`lang`] — lazy language views: a [`lang::Lang`] trait with on-the-fly
//!   combinators (product, complement, marker erasure) and generic searches
//!   that explore only reachable states, with
//!   [`lang::materialize`] as the eager escape hatch for export.
//! * [`ops`] — marker-aware product searches used to produce the paper's
//!   annotated counterexamples (`open_a, a.test, a.open`).
//! * DOT rendering for the behavior diagrams of Figures 1–3.
//!
//! # Example
//!
//! Check that every behavior of a client is a valid usage of a
//! specification:
//!
//! ```
//! use shelley_regular::{Alphabet, Regex, Nfa, Dfa, parse_regex};
//! use std::sync::Arc;
//!
//! let mut ab = Alphabet::new();
//! // Valve usage specification: test then (open·close | clean), repeatedly.
//! let spec = parse_regex("(test ; (open ; close + clean))*", &mut ab)?;
//! // A client that tests then opens then closes once.
//! let client = parse_regex("test ; open ; close", &mut ab)?;
//! let ab = Arc::new(ab);
//! let spec_dfa = Dfa::from_nfa(&Nfa::from_regex(&spec, ab.clone()));
//! let client_dfa = Dfa::from_nfa(&Nfa::from_regex(&client, ab));
//! assert!(client_dfa.subset_of(&spec_dfa).is_ok());
//! # Ok::<(), shelley_regular::ParseRegexError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod antichain;
mod compiled;
mod dense;
mod derivative;
mod dfa;
mod dot;
mod enumerate;
pub mod lang;
mod minimize;
mod nfa;
pub mod ops;
mod parser;
mod regex;
mod stateset;
mod symbol;
mod to_regex;

pub use compiled::CompiledNfa;
pub use dense::DenseDfa;
pub use dfa::Dfa;
pub use nfa::{Label, Nfa, NfaBuilder, StateId};
pub use parser::{parse_regex, ParseRegexError};
pub use regex::{DisplayRegex, Regex};
pub use stateset::StateSet;
pub use symbol::{Alphabet, Symbol, Word};
