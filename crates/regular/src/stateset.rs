//! Dense bitset representation of NFA state sets.
//!
//! Subset construction, on-the-fly determinization, and the joint product
//! searches all manipulate *sets of NFA states* in their innermost loops.
//! The original engine represented them as `BTreeSet<StateId>` — one heap
//! node per element, pointer chasing on every membership test, and a fresh
//! allocation per step. [`StateSet`] replaces that with `⌈n/64⌉` dense
//! `u64` blocks sized once to the automaton: insertion and membership are a
//! shift and a mask, union is a word-wise `|=` loop, and equality/hashing
//! operate on the raw blocks, which is what makes it usable as a hash-map
//! key in the subset-construction index and the generic [`Lang`] searches.
//!
//! All sets manipulated together must come from the same automaton (same
//! [`StateSet::new`] capacity): equality and hashing compare raw blocks, so
//! sets of differing capacity are never equal even when they contain the
//! same states. [`CompiledNfa`](crate::CompiledNfa) upholds this by
//! construction.
//!
//! [`Lang`]: crate::lang::Lang

use crate::nfa::StateId;
use std::fmt;

/// Bits per block (`u64`).
const BITS: usize = 64;

/// A set of NFA states as a fixed-capacity dense bitset.
///
/// # Examples
///
/// ```
/// use shelley_regular::StateSet;
///
/// let mut s = StateSet::new(130);
/// assert!(s.insert(0));
/// assert!(s.insert(129));
/// assert!(!s.insert(129));
/// assert!(s.contains(129) && !s.contains(64));
/// assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 129]);
/// assert_eq!(s.len(), 2);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StateSet {
    blocks: Box<[u64]>,
}

impl StateSet {
    /// Creates an empty set with capacity for states `0..nstates`.
    pub fn new(nstates: usize) -> StateSet {
        StateSet {
            blocks: vec![0u64; nstates.div_ceil(BITS)].into_boxed_slice(),
        }
    }

    /// Number of states this set can hold (rounded up to whole blocks).
    pub fn capacity(&self) -> usize {
        self.blocks.len() * BITS
    }

    /// Inserts `state`, returning whether it was newly added.
    ///
    /// # Panics
    ///
    /// Panics if `state` is beyond the set's capacity.
    pub fn insert(&mut self, state: StateId) -> bool {
        let block = &mut self.blocks[state / BITS];
        let mask = 1u64 << (state % BITS);
        let fresh = *block & mask == 0;
        *block |= mask;
        fresh
    }

    /// Whether `state` is in the set (out-of-capacity states are not).
    pub fn contains(&self, state: StateId) -> bool {
        self.blocks
            .get(state / BITS)
            .is_some_and(|b| b & (1u64 << (state % BITS)) != 0)
    }

    /// Unions `other` into `self`, block-wise.
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ (sets from different automata).
    pub fn union_with(&mut self, other: &StateSet) {
        assert_eq!(
            self.blocks.len(),
            other.blocks.len(),
            "union of state sets with different capacities"
        );
        for (dst, src) in self.blocks.iter_mut().zip(other.blocks.iter()) {
            *dst |= src;
        }
    }

    /// Intersects `self` with `other`, block-wise (`self &= other`).
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ (sets from different automata).
    pub fn intersect_with(&mut self, other: &StateSet) {
        assert_eq!(
            self.blocks.len(),
            other.blocks.len(),
            "intersection of state sets with different capacities"
        );
        for (dst, src) in self.blocks.iter_mut().zip(other.blocks.iter()) {
            *dst &= src;
        }
    }

    /// Removes every state of `other` from `self`, block-wise
    /// (`self &= !other`).
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ (sets from different automata).
    pub fn difference_with(&mut self, other: &StateSet) {
        assert_eq!(
            self.blocks.len(),
            other.blocks.len(),
            "difference of state sets with different capacities"
        );
        for (dst, src) in self.blocks.iter_mut().zip(other.blocks.iter()) {
            *dst &= !src;
        }
    }

    /// Whether every state of `self` is also in `other`.
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ (sets from different automata).
    pub fn is_subset_of(&self, other: &StateSet) -> bool {
        assert_eq!(
            self.blocks.len(),
            other.blocks.len(),
            "subset test of state sets with different capacities"
        );
        self.blocks
            .iter()
            .zip(other.blocks.iter())
            .all(|(a, b)| a & !b == 0)
    }

    /// Size of the union `self ∪ other` without materializing it — one
    /// word-parallel pass of `popcount(a | b)` over the blocks.
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ (sets from different automata).
    pub fn union_count(&self, other: &StateSet) -> usize {
        assert_eq!(
            self.blocks.len(),
            other.blocks.len(),
            "union of state sets with different capacities"
        );
        self.blocks
            .iter()
            .zip(other.blocks.iter())
            .map(|(a, b)| (a | b).count_ones() as usize)
            .sum()
    }

    /// Size of the difference `self \ other` without materializing it — one
    /// word-parallel pass of `popcount(a & !b)` over the blocks.
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ (sets from different automata).
    pub fn difference_count(&self, other: &StateSet) -> usize {
        assert_eq!(
            self.blocks.len(),
            other.blocks.len(),
            "difference of state sets with different capacities"
        );
        self.blocks
            .iter()
            .zip(other.blocks.iter())
            .map(|(a, b)| (a & !b).count_ones() as usize)
            .sum()
    }

    /// Index of the first candidate that is a subset of `self` — the fused
    /// subsumption scan feeding antichain frontiers
    /// ([`crate::antichain`]): each candidate is tested block-wise
    /// (`cand & !self == 0`) with early exit on the first differing block,
    /// so a scan over `k` candidates touches at most `k · ⌈n/64⌉` words.
    ///
    /// # Panics
    ///
    /// Panics if any scanned candidate's capacity differs from `self`'s.
    pub fn position_of_subset<'a, I>(&self, candidates: I) -> Option<usize>
    where
        I: IntoIterator<Item = &'a StateSet>,
    {
        candidates
            .into_iter()
            .position(|cand| cand.is_subset_of(self))
    }

    /// Whether the sets share at least one state.
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ (sets from different automata).
    pub fn intersects(&self, other: &StateSet) -> bool {
        assert_eq!(
            self.blocks.len(),
            other.blocks.len(),
            "intersection of state sets with different capacities"
        );
        self.blocks
            .iter()
            .zip(other.blocks.iter())
            .any(|(a, b)| a & b != 0)
    }

    /// Removes every state.
    pub fn clear(&mut self) {
        self.blocks.fill(0);
    }

    /// Number of states in the set.
    pub fn len(&self) -> usize {
        self.blocks.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.blocks.iter().all(|&b| b == 0)
    }

    /// Iterates the states in ascending order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            blocks: &self.blocks,
            block_idx: 0,
            current: self.blocks.first().copied().unwrap_or(0),
        }
    }
}

impl fmt::Debug for StateSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl<'a> IntoIterator for &'a StateSet {
    type Item = StateId;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

/// Ascending iterator over the states of a [`StateSet`].
#[derive(Debug, Clone)]
pub struct Iter<'a> {
    blocks: &'a [u64],
    block_idx: usize,
    current: u64,
}

impl Iterator for Iter<'_> {
    type Item = StateId;

    fn next(&mut self) -> Option<StateId> {
        while self.current == 0 {
            self.block_idx += 1;
            self.current = *self.blocks.get(self.block_idx)?;
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1;
        Some(self.block_idx * BITS + bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    #[test]
    fn insert_contains_iter() {
        let mut s = StateSet::new(200);
        for q in [3, 64, 65, 127, 128, 199] {
            assert!(s.insert(q));
        }
        assert!(!s.insert(64));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 64, 65, 127, 128, 199]);
        assert_eq!(s.len(), 6);
        assert!(!s.contains(4));
        assert!(!s.contains(100_000));
    }

    #[test]
    fn union_and_intersects() {
        let mut a = StateSet::new(100);
        let mut b = StateSet::new(100);
        a.insert(1);
        b.insert(70);
        assert!(!a.intersects(&b));
        a.union_with(&b);
        assert!(a.contains(1) && a.contains(70));
        assert!(a.intersects(&b));
    }

    #[test]
    fn equality_and_hash_follow_contents() {
        let mut a = StateSet::new(130);
        let mut b = StateSet::new(130);
        a.insert(5);
        a.insert(129);
        b.insert(129);
        b.insert(5);
        assert_eq!(a, b);
        let hash = |s: &StateSet| {
            let mut h = DefaultHasher::new();
            s.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash(&a), hash(&b));
        b.insert(0);
        assert_ne!(a, b);
    }

    #[test]
    fn intersect_and_difference() {
        let mut a = StateSet::new(200);
        let mut b = StateSet::new(200);
        for q in [3, 64, 127, 128, 199] {
            a.insert(q);
        }
        for q in [64, 128, 5] {
            b.insert(q);
        }
        let mut inter = a.clone();
        inter.intersect_with(&b);
        assert_eq!(inter.iter().collect::<Vec<_>>(), vec![64, 128]);
        let mut diff = a.clone();
        diff.difference_with(&b);
        assert_eq!(diff.iter().collect::<Vec<_>>(), vec![3, 127, 199]);
        // a \ b and a ∩ b partition a.
        diff.union_with(&inter);
        assert_eq!(diff, a);
        // Difference with self empties; intersection with self is identity.
        let mut gone = a.clone();
        gone.difference_with(&a.clone());
        assert!(gone.is_empty());
        let mut same = a.clone();
        same.intersect_with(&a.clone());
        assert_eq!(same, a);
    }

    #[test]
    #[should_panic(expected = "different capacities")]
    fn intersect_rejects_mismatched_capacity() {
        let mut a = StateSet::new(64);
        let b = StateSet::new(128);
        a.intersect_with(&b);
    }

    #[test]
    #[should_panic(expected = "different capacities")]
    fn difference_rejects_mismatched_capacity() {
        let mut a = StateSet::new(64);
        let b = StateSet::new(128);
        a.difference_with(&b);
    }

    #[test]
    fn subset_relation() {
        let mut a = StateSet::new(100);
        let mut b = StateSet::new(100);
        assert!(a.is_subset_of(&b)); // empty ⊆ empty
        b.insert(3);
        b.insert(70);
        assert!(a.is_subset_of(&b));
        a.insert(70);
        assert!(a.is_subset_of(&b));
        assert!(!b.is_subset_of(&a));
        a.insert(4);
        assert!(!a.is_subset_of(&b));
    }

    #[test]
    fn union_and_difference_counts_match_materialized_ops() {
        let mut a = StateSet::new(200);
        let mut b = StateSet::new(200);
        for q in [3, 64, 127, 128, 199] {
            a.insert(q);
        }
        for q in [64, 128, 5] {
            b.insert(q);
        }
        let mut union = a.clone();
        union.union_with(&b);
        assert_eq!(a.union_count(&b), union.len());
        let mut diff = a.clone();
        diff.difference_with(&b);
        assert_eq!(a.difference_count(&b), diff.len());
        assert_eq!(b.difference_count(&a), 1); // only 5 survives
        assert_eq!(a.union_count(&a.clone()), a.len());
        assert_eq!(a.difference_count(&a.clone()), 0);
    }

    #[test]
    #[should_panic(expected = "different capacities")]
    fn union_count_rejects_mismatched_capacity() {
        let a = StateSet::new(64);
        let b = StateSet::new(128);
        let _ = a.union_count(&b);
    }

    #[test]
    #[should_panic(expected = "different capacities")]
    fn difference_count_rejects_mismatched_capacity() {
        let a = StateSet::new(64);
        let b = StateSet::new(128);
        let _ = a.difference_count(&b);
    }

    #[test]
    fn position_of_subset_scans_in_order() {
        let mut a = StateSet::new(100);
        a.insert(3);
        a.insert(70);
        let mut sub = StateSet::new(100);
        sub.insert(70);
        let mut other = StateSet::new(100);
        other.insert(4);
        // First subset wins; non-subsets are skipped.
        assert_eq!(
            a.position_of_subset([&other, &sub, &a].into_iter()),
            Some(1)
        );
        assert_eq!(a.position_of_subset([&other].into_iter()), None);
        assert_eq!(a.position_of_subset(std::iter::empty()), None);
        // The empty set is a subset of everything.
        let empty = StateSet::new(100);
        assert_eq!(a.position_of_subset([&empty].into_iter()), Some(0));
    }

    #[test]
    fn clear_empties() {
        let mut s = StateSet::new(10);
        s.insert(7);
        assert!(!s.is_empty());
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
    }

    #[test]
    fn zero_capacity_set_works() {
        let s = StateSet::new(0);
        assert!(s.is_empty());
        assert!(!s.contains(0));
        assert_eq!(s.iter().count(), 0);
    }

    #[test]
    #[should_panic(expected = "different capacities")]
    fn union_rejects_mismatched_capacity() {
        let mut a = StateSet::new(64);
        let b = StateSet::new(128);
        a.union_with(&b);
    }
}
