//! Antichain-pruned inclusion checking over lazy language views.
//!
//! The classic inclusion checks ([`lang::subset_of`]
//! and [`ops::projected_subset`](crate::ops::projected_subset)) determinize
//! the spec side on the fly: the product search distinguishes every
//! reachable spec macrostate, which on adversarial specs (`Σ*·a·Σ^n`) means
//! `2^n` macrostates even when the model side is tiny. The antichain
//! algorithm of De Wulf, Doyen, Henzinger & Raskin (CAV'06) observes that
//! an inclusion search only needs the **⊆-minimal** macrostates: a pair
//! `(q, S)` can reach a violation — a word the model accepts while the spec
//! macrostate holds no accepting state — only if `(q, S')` with `S' ⊆ S`
//! can, at the same or smaller distance, because macrostate successors are
//! monotone under `⊆` and a smaller macrostate rejects everything a larger
//! one rejects. The searches here therefore keep, per model state, an
//! *antichain* of kept spec macrostates and discard every newly discovered
//! pair that a kept pair subsumes (same model state, `⊆`-smaller macrostate,
//! no larger distance).
//!
//! Two guarantees survive the pruning, both pinned by differential property
//! suites against the classic engines:
//!
//! * **Witnesses replay.** A kept pair's macrostate is always the *exact*
//!   subset-construction state of its discovery word — pruning discards
//!   whole pairs, it never approximates a macrostate — so an extracted
//!   counterexample is a genuine violation, not an artifact.
//! * **Witness length is preserved.** Every pruned pair is dominated by a
//!   kept pair at equal-or-smaller distance that rejects at least as much,
//!   so the first violation dequeued is as short as the classic engine's.
//!   Only the shortlex tie-break may differ: the ⊆-minimal representative
//!   that survives pruning may spell a different word of the same length.
//!
//! The spec side is always an [`NfaView`] here — the antichain order *is*
//! the `⊆` order on its [`StateSet`] macrostates, tested with the
//! word-parallel block kernels of [`StateSet`]. The model side of
//! [`subset_of`] is any [`Lang`]; [`projected_subset`] mirrors the
//! marker-aware 0-1 BFS of [`ops`](crate::ops) over an explicit [`Nfa`].

use crate::lang::{self, Lang, NfaView};
use crate::nfa::{Label, Nfa, StateId};
use crate::stateset::StateSet;
use crate::symbol::{Symbol, Word};
use std::collections::{BTreeSet, HashMap, VecDeque};

/// Search counters of one antichain inclusion check.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InclusionStats {
    /// Pairs kept on the frontier (discovered and not subsumed).
    pub frontier: usize,
    /// Candidate pairs discarded because a kept pair with a strictly
    /// smaller macrostate subsumed them.
    pub pruned: usize,
}

impl InclusionStats {
    fn absorb(&mut self, other: InclusionStats) {
        self.frontier += other.frontier;
        self.pruned += other.pruned;
    }
}

/// The per-model-state antichain: kept spec macrostates plus the distance
/// each was discovered at.
#[derive(Default)]
struct Frontier {
    sets: Vec<StateSet>,
    labels: Vec<u32>,
}

impl Frontier {
    /// Whether `cand` (at distance `label`) is subsumed by a kept entry.
    /// Returns `None` to keep, `Some(proper)` to discard — `proper` is
    /// `false` for an exact re-discovery (plain dedup, not pruning).
    fn subsumes(&self, cand: &StateSet, label: u32) -> Option<bool> {
        self.sets
            .iter()
            .zip(self.labels.iter())
            .find(|(kept, &kept_label)| kept_label <= label && kept.is_subset_of(cand))
            .map(|(kept, _)| kept != cand)
    }

    /// Whether a *strictly* smaller kept entry at equal-or-smaller distance
    /// dominates `cand` — the pop-time test. A pair can be kept before the
    /// ⊆-minimal representative of its level is discovered; skipping its
    /// expansion once a dominator exists is what keeps the frontier an
    /// antichain in effect. The strict-subset requirement keeps an entry
    /// from dominating itself (sets are deduped at push, so equality means
    /// "same entry").
    fn dominated(&self, cand: &StateSet, label: u32) -> bool {
        self.sets
            .iter()
            .zip(self.labels.iter())
            .any(|(kept, &kept_label)| {
                kept_label <= label && kept != cand && kept.is_subset_of(cand)
            })
    }

    fn keep(&mut self, set: StateSet, label: u32) {
        self.sets.push(set);
        self.labels.push(label);
    }
}

/// Checks `L(a) ⊆ L(b)` with antichain pruning; on failure returns a
/// violating word no longer than the classic engine's shortest witness.
///
/// The classic [`lang::subset_of`] stays available
/// as the unpruned oracle (and produces the canonical shortlex witness).
///
/// # Panics
///
/// Panics if the alphabets differ.
pub fn subset_of<A: Lang>(a: &A, b: &NfaView<'_>) -> Result<(), Word> {
    subset_of_counted(a, b).0
}

/// [`subset_of`] plus the antichain frontier/pruned counters.
///
/// # Panics
///
/// Panics if the alphabets differ.
pub fn subset_of_counted<A: Lang>(a: &A, b: &NfaView<'_>) -> (Result<(), Word>, InclusionStats) {
    assert_eq!(
        **a.alphabet(),
        **b.alphabet(),
        "inclusion check of language views over different alphabets"
    );
    let compiled = b.compiled();
    let nsyms = a.alphabet().len();
    let mut stats = InclusionStats::default();

    // Discovered pairs, indexed; `parents` spells the discovery word.
    let mut a_states: Vec<A::State> = Vec::new();
    let mut b_sets: Vec<StateSet> = Vec::new();
    let mut parents: Vec<Option<(usize, Symbol)>> = Vec::new();
    let mut store: HashMap<A::State, Frontier> = HashMap::new();

    let start_a = a.start();
    let start_b = compiled.start_set();
    store
        .entry(start_a.clone())
        .or_default()
        .keep(start_b.clone(), 0);
    a_states.push(start_a);
    b_sets.push(start_b);
    parents.push(None);

    let mut queue: VecDeque<(usize, u32)> = VecDeque::from([(0, 0)]);
    let mut a_scratch = a.start();
    let mut b_scratch = compiled.empty_set();
    while let Some((idx, label)) = queue.pop_front() {
        if a.is_accepting(&a_states[idx]) && !compiled.is_accepting(&b_sets[idx]) {
            stats.frontier = a_states.len();
            return (Err(spell(&parents, idx)), stats);
        }
        // Pop-time antichain skip: a strictly smaller macrostate kept at
        // equal-or-smaller distance rejects at least as much, so its
        // expansion dominates this one's. (Acceptance was tested above, so
        // a violation at this level is never lost.)
        if store[&a_states[idx]].dominated(&b_sets[idx], label) {
            stats.pruned += 1;
            continue;
        }
        for sym_idx in 0..nsyms {
            let sym = Symbol::from_index(sym_idx);
            a.step_into(&a_states[idx], sym, &mut a_scratch);
            compiled.step_into(&b_sets[idx], sym, &mut b_scratch);
            let frontier = store.entry(a_scratch.clone()).or_default();
            // Plain BFS discovers in distance order, so every kept label is
            // already ≤ label + 1: the scan is the pure block-wise
            // subsumption kernel.
            match b_scratch.position_of_subset(frontier.sets.iter()) {
                Some(i) => {
                    if frontier.sets[i] != b_scratch {
                        stats.pruned += 1;
                    }
                }
                None => {
                    frontier.keep(b_scratch.clone(), label + 1);
                    let id = a_states.len();
                    a_states.push(a_scratch.clone());
                    b_sets.push(b_scratch.clone());
                    parents.push(Some((idx, sym)));
                    queue.push_back((id, label + 1));
                }
            }
        }
    }
    stats.frontier = a_states.len();
    (Ok(()), stats)
}

/// Checks `π(L(nfa)) ⊆ L(spec)` (with `π` erasing `markers`) by the same
/// marker-aware 0-1 BFS as [`ops::projected_subset`](crate::ops::projected_subset),
/// pruning the frontier with the antichain order on spec macrostates; on
/// failure returns a violating word (markers preserved) of the same length
/// as the classic engine's shortest witness.
///
/// # Panics
///
/// Panics if the automata are over different alphabets, or if `markers`
/// contains a symbol outside the shared alphabet.
pub fn projected_subset(
    nfa: &Nfa,
    spec: &NfaView<'_>,
    markers: &BTreeSet<Symbol>,
) -> Result<(), Word> {
    projected_subset_counted(nfa, spec, markers).0
}

/// [`projected_subset`] plus the antichain frontier/pruned counters.
///
/// # Panics
///
/// Same contract as [`projected_subset`].
pub fn projected_subset_counted(
    nfa: &Nfa,
    spec: &NfaView<'_>,
    markers: &BTreeSet<Symbol>,
) -> (Result<(), Word>, InclusionStats) {
    assert_eq!(
        **nfa.alphabet(),
        **spec.alphabet(),
        "joint search over different alphabets"
    );
    lang::assert_markers_in_alphabet(markers, nfa.alphabet());
    let compiled = spec.compiled();
    let mut stats = InclusionStats::default();

    // Discovered pairs; `parents` records the consumed symbol (`None` for
    // ε-edges), exactly like the classic joint search.
    let mut nfa_states: Vec<StateId> = Vec::new();
    let mut spec_sets: Vec<StateSet> = Vec::new();
    let mut parents: Vec<Option<(usize, Option<Symbol>)>> = Vec::new();
    let mut store: HashMap<StateId, Frontier> = HashMap::new();

    let start_set = compiled.start_set();
    store
        .entry(nfa.start())
        .or_default()
        .keep(start_set.clone(), 0);
    nfa_states.push(nfa.start());
    spec_sets.push(start_set);
    parents.push(None);

    let mut deque: VecDeque<(usize, u32)> = VecDeque::from([(0, 0)]);
    let mut scratch = compiled.empty_set();
    while let Some((idx, label)) = deque.pop_front() {
        let qn = nfa_states[idx];
        // Violation: the model accepts while the spec macrostate rejects.
        if nfa.is_accepting(qn) && !compiled.is_accepting(&spec_sets[idx]) {
            stats.frontier = nfa_states.len();
            let word = spell_joint(&parents, idx);
            return (Err(word), stats);
        }
        // Pop-time antichain skip, as in [`subset_of_counted`].
        if store[&qn].dominated(&spec_sets[idx], label) {
            stats.pruned += 1;
            continue;
        }
        for &(edge, dst) in nfa.edges_from(qn) {
            let (consumed, cost, stepped) = match edge {
                Label::Eps => (None, 0, false),
                Label::Sym(s) if markers.contains(&s) => (Some(s), 1, false),
                Label::Sym(s) => {
                    compiled.step_into(&spec_sets[idx], s, &mut scratch);
                    (Some(s), 1, true)
                }
            };
            let cand = if stepped { &scratch } else { &spec_sets[idx] };
            let next_label = label + cost;
            let frontier = store.entry(dst).or_default();
            match frontier.subsumes(cand, next_label) {
                Some(proper) => {
                    if proper {
                        stats.pruned += 1;
                    }
                }
                None => {
                    let owned = cand.clone();
                    frontier.keep(owned.clone(), next_label);
                    let id = nfa_states.len();
                    nfa_states.push(dst);
                    spec_sets.push(owned);
                    parents.push(Some((idx, consumed)));
                    // 0-1 BFS: ε-edges keep the distance, symbol edges
                    // extend it — the classic engine's exact discipline.
                    if cost == 0 {
                        deque.push_front((id, next_label));
                    } else {
                        deque.push_back((id, next_label));
                    }
                }
            }
        }
    }
    stats.frontier = nfa_states.len();
    (Ok(()), stats)
}

/// Sums the counters of per-subsystem checks into one total.
pub fn absorb_stats(total: &mut InclusionStats, one: InclusionStats) {
    total.absorb(one);
}

fn spell(parents: &[Option<(usize, Symbol)>], mut idx: usize) -> Word {
    let mut word = Vec::new();
    while let Some((prev, sym)) = parents[idx] {
        word.push(sym);
        idx = prev;
    }
    word.reverse();
    word
}

fn spell_joint(parents: &[Option<(usize, Option<Symbol>)>], mut idx: usize) -> Word {
    let mut word = Vec::new();
    while let Some((prev, sym)) = parents[idx] {
        if let Some(s) = sym {
            word.push(s);
        }
        idx = prev;
    }
    word.reverse();
    word
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfa::Dfa;
    use crate::ops;
    use crate::parser::parse_regex;
    use crate::regex::Regex;
    use crate::symbol::Alphabet;
    use std::sync::Arc;

    fn pair(left: &str, right: &str) -> (Nfa, Nfa) {
        let mut ab = Alphabet::new();
        let l = parse_regex(left, &mut ab).unwrap();
        let r = parse_regex(right, &mut ab).unwrap();
        let ab = Arc::new(ab);
        (Nfa::from_regex(&l, ab.clone()), Nfa::from_regex(&r, ab))
    }

    #[test]
    fn agrees_with_classic_subset_on_inclusion_and_violation() {
        let (small, big) = pair("a ; b", "(a ; b) + (a ; c)");
        assert_eq!(
            subset_of(&NfaView::new(&small), &NfaView::new(&big)),
            Ok(())
        );
        let classic = lang::subset_of(&NfaView::new(&big), &NfaView::new(&small)).unwrap_err();
        let (result, stats) = subset_of_counted(&NfaView::new(&big), &NfaView::new(&small));
        let witness = result.unwrap_err();
        assert_eq!(witness.len(), classic.len());
        // The witness replays as a genuine violation.
        let (db, ds) = (Dfa::from_nfa(&big), Dfa::from_nfa(&small));
        assert!(db.accepts(&witness) && !ds.accepts(&witness));
        assert!(stats.frontier >= 1);
    }

    #[test]
    fn prunes_subsumed_macrostates_on_the_blowup_family() {
        // Spec Σ*·a·Σ^(n-1): classic determinization distinguishes 2^n
        // macrostates; the model a·(a+b)^(n-1) is included. The antichain
        // keeps one ⊆-minimal macrostate per position.
        let n = 8;
        let mut ab = Alphabet::new();
        let a = ab.intern("a");
        let b = ab.intern("b");
        let ab = Arc::new(ab);
        let sigma = Regex::union(Regex::sym(a), Regex::sym(b));
        let mut spec = Regex::concat(Regex::star(sigma.clone()), Regex::sym(a));
        let mut model = Regex::sym(a);
        for _ in 0..n - 1 {
            spec = Regex::concat(spec, sigma.clone());
            model = Regex::concat(model, sigma.clone());
        }
        let spec = Nfa::from_regex(&spec, ab.clone());
        let model = Nfa::from_regex(&model, ab);
        let (result, stats) = subset_of_counted(&NfaView::new(&model), &NfaView::new(&spec));
        assert_eq!(result, Ok(()));
        assert!(stats.pruned > 0, "no pruning on the blowup family");
        // Classic explores the exponential macrostate space; the antichain
        // frontier stays far below it.
        let (_, classic_visited) = lang::shortest_accepted_counted(&lang::Product::difference(
            NfaView::new(&model),
            NfaView::new(&spec),
        ));
        assert!(
            stats.frontier * 4 < classic_visited,
            "frontier {} vs classic {classic_visited}",
            stats.frontier
        );
    }

    #[test]
    fn projected_agrees_with_classic_joint_search() {
        let mut ab = Alphabet::new();
        let m = ab.intern("m");
        let a = ab.intern("a");
        let b = ab.intern("b");
        let ab = Arc::new(ab);
        let markers = BTreeSet::from([m]);
        let model = Nfa::from_regex(&Regex::word(&[m, a]), ab.clone());
        let spec = Nfa::from_regex(&Regex::word(&[a, b]), ab.clone());
        let classic = ops::projected_subset(&model, &NfaView::new(&spec), &markers).unwrap_err();
        let (result, _) = projected_subset_counted(&model, &NfaView::new(&spec), &markers);
        let witness = result.unwrap_err();
        assert_eq!(witness.len(), classic.len());
        assert_eq!(ops::strip_markers(&witness, &markers), vec![a]);
        // Conforming behavior passes under both engines.
        let good = Nfa::from_regex(&Regex::word(&[m, a, b]), ab);
        assert!(projected_subset(&good, &NfaView::new(&spec), &markers).is_ok());
        assert!(ops::projected_subset(&good, &NfaView::new(&spec), &markers).is_ok());
    }

    #[test]
    fn empty_alphabet_inclusion() {
        let ab = Arc::new(Alphabet::new());
        let eps = Nfa::from_regex(&Regex::Epsilon, ab.clone());
        let void = Nfa::from_regex(&Regex::Empty, ab);
        assert_eq!(subset_of(&NfaView::new(&void), &NfaView::new(&eps)), Ok(()));
        let witness = subset_of(&NfaView::new(&eps), &NfaView::new(&void)).unwrap_err();
        assert!(witness.is_empty());
        assert!(projected_subset(&void, &NfaView::new(&eps), &BTreeSet::new()).is_ok());
    }

    #[test]
    #[should_panic(expected = "different alphabets")]
    fn rejects_mismatched_alphabets() {
        let (n1, _) = {
            let mut ab = Alphabet::new();
            let r = parse_regex("a", &mut ab).unwrap();
            let ab = Arc::new(ab);
            (Nfa::from_regex(&r, ab.clone()), ab)
        };
        let mut other = Alphabet::new();
        let r = parse_regex("a ; b", &mut other).unwrap();
        let n2 = Nfa::from_regex(&r, Arc::new(other));
        let _ = subset_of(&NfaView::new(&n1), &NfaView::new(&n2));
    }

    #[test]
    #[should_panic(expected = "outside the shared alphabet")]
    fn rejects_foreign_markers() {
        let mut ab = Alphabet::new();
        let r = parse_regex("a", &mut ab).unwrap();
        let nfa = Nfa::from_regex(&r, Arc::new(ab));
        let foreign = Symbol::from_index(99);
        let _ = projected_subset(&nfa, &NfaView::new(&nfa), &BTreeSet::from([foreign]));
    }

    #[test]
    fn stats_absorb_sums() {
        let mut total = InclusionStats::default();
        absorb_stats(
            &mut total,
            InclusionStats {
                frontier: 3,
                pruned: 1,
            },
        );
        absorb_stats(
            &mut total,
            InclusionStats {
                frontier: 2,
                pruned: 4,
            },
        );
        assert_eq!(
            total,
            InclusionStats {
                frontier: 5,
                pruned: 5,
            }
        );
    }
}
