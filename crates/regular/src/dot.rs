//! Graphviz DOT rendering for automata.
//!
//! Shelley's behavior diagrams (Figures 1–3 of the paper) are produced by
//! rendering specification automata with these helpers.

use crate::dfa::Dfa;
use crate::nfa::{Label, Nfa};
use std::fmt::Write as _;

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

impl Nfa {
    /// Renders the automaton as a Graphviz digraph named `name`.
    pub fn to_dot(&self, name: &str) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "digraph \"{}\" {{", escape(name));
        let _ = writeln!(out, "  rankdir=LR;");
        let _ = writeln!(out, "  node [shape=circle];");
        let _ = writeln!(out, "  __start [shape=point];");
        let _ = writeln!(out, "  __start -> q{};", self.start());
        for q in 0..self.num_states() {
            if self.is_accepting(q) {
                let _ = writeln!(out, "  q{q} [shape=doublecircle];");
            }
        }
        for q in 0..self.num_states() {
            for &(label, dst) in self.edges_from(q) {
                let text = match label {
                    Label::Eps => "ε".to_string(),
                    Label::Sym(s) => escape(self.alphabet().name(s)),
                };
                let _ = writeln!(out, "  q{q} -> q{dst} [label=\"{text}\"];");
            }
        }
        out.push_str("}\n");
        out
    }
}

impl Dfa {
    /// Renders the automaton as a Graphviz digraph named `name`.
    ///
    /// Transitions into a dead rejecting sink are omitted for readability.
    pub fn to_dot(&self, name: &str) -> String {
        let dead = self.dead_states();
        let mut out = String::new();
        let _ = writeln!(out, "digraph \"{}\" {{", escape(name));
        let _ = writeln!(out, "  rankdir=LR;");
        let _ = writeln!(out, "  node [shape=circle];");
        let _ = writeln!(out, "  __start [shape=point];");
        let _ = writeln!(out, "  __start -> q{};", self.start());
        for (q, _) in dead.iter().enumerate().filter(|(_, &d)| !d) {
            if self.is_accepting(q) {
                let _ = writeln!(out, "  q{q} [shape=doublecircle];");
            }
        }
        for q in 0..self.num_states() {
            if dead[q] {
                continue;
            }
            for (sym, name) in self.alphabet().iter() {
                let dst = self.step(q, sym);
                if dead[dst] {
                    continue;
                }
                let _ = writeln!(out, "  q{q} -> q{dst} [label=\"{}\"];", escape(name));
            }
        }
        out.push_str("}\n");
        out
    }

    /// States from which no accepting state is reachable.
    pub fn dead_states(&self) -> Vec<bool> {
        // Backwards reachability from accepting states; the predecessor
        // scan walks the dense successor rows, one contiguous slice per
        // state.
        let n = self.num_states();
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
        for q in 0..n {
            for &dst in self.dense().row(q) {
                preds[dst as usize].push(q);
            }
        }
        let mut live = vec![false; n];
        let mut stack: Vec<usize> = (0..n).filter(|&q| self.is_accepting(q)).collect();
        for &q in &stack {
            live[q] = true;
        }
        while let Some(q) = stack.pop() {
            for &p in &preds[q] {
                if !live[p] {
                    live[p] = true;
                    stack.push(p);
                }
            }
        }
        live.iter().map(|&l| !l).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regex::Regex;
    use crate::symbol::Alphabet;
    use std::sync::Arc;

    #[test]
    fn nfa_dot_contains_states_and_labels() {
        let mut ab = Alphabet::new();
        let a = ab.intern("a.open");
        let nfa = Nfa::from_regex(&Regex::sym(a), Arc::new(ab));
        let dot = nfa.to_dot("valve");
        assert!(dot.starts_with("digraph \"valve\""));
        assert!(dot.contains("a.open"));
        assert!(dot.contains("doublecircle"));
    }

    #[test]
    fn dfa_dot_omits_dead_sink() {
        let mut ab = Alphabet::new();
        let a = ab.intern("a");
        let b = ab.intern("b");
        let nfa = Nfa::from_regex(&Regex::sym(a), Arc::new(ab));
        let dfa = Dfa::from_nfa(&nfa);
        let dot = dfa.to_dot("d");
        // Only one real edge (on a); the b-edge into the sink is hidden.
        assert_eq!(dot.matches("->").count(), 2); // __start edge + a edge
        let _ = b;
    }

    #[test]
    fn dead_states_detects_sink() {
        let mut ab = Alphabet::new();
        let a = ab.intern("a");
        let nfa = Nfa::from_regex(&Regex::sym(a), Arc::new(ab));
        let dfa = Dfa::from_nfa(&nfa);
        let dead = dfa.dead_states();
        assert_eq!(dead.iter().filter(|&&d| d).count(), 1);
    }
}
