//! Brzozowski derivatives and word membership for [`Regex`].
//!
//! The derivative `∂ₐ r` of a regular expression `r` with respect to a
//! symbol `a` is the expression whose language is
//! `{ w | a·w ∈ L(r) }`. Iterating derivatives over a word and testing
//! nullability decides membership without constructing an automaton — this
//! is the reference membership procedure used by the Theorem 1/2 property
//! suites (the automaton pipeline is cross-checked against it).

use crate::regex::Regex;
use crate::symbol::Symbol;

impl Regex {
    /// The Brzozowski derivative `∂ₛ r`.
    ///
    /// # Examples
    ///
    /// ```
    /// use shelley_regular::{Alphabet, Regex};
    /// let mut ab = Alphabet::new();
    /// let a = ab.intern("a");
    /// let b = ab.intern("b");
    /// let r = Regex::concat(Regex::sym(a), Regex::sym(b));
    /// assert_eq!(r.derivative(a), Regex::sym(b));
    /// assert_eq!(r.derivative(b), Regex::empty());
    /// ```
    pub fn derivative(&self, s: Symbol) -> Regex {
        match self {
            Regex::Empty | Regex::Epsilon => Regex::Empty,
            Regex::Sym(t) => {
                if *t == s {
                    Regex::Epsilon
                } else {
                    Regex::Empty
                }
            }
            Regex::Concat(a, b) => {
                let head = Regex::concat(a.derivative(s), (**b).clone());
                if a.nullable() {
                    Regex::union(head, b.derivative(s))
                } else {
                    head
                }
            }
            Regex::Union(a, b) => Regex::union(a.derivative(s), b.derivative(s)),
            Regex::Star(a) => Regex::concat(a.derivative(s), Regex::star((**a).clone())),
        }
    }

    /// Decides `word ∈ L(self)` by iterated derivatives.
    pub fn matches(&self, word: &[Symbol]) -> bool {
        let mut cur = self.clone();
        for &s in word {
            cur = cur.derivative(s);
            if cur.is_empty_language() {
                return false;
            }
        }
        cur.nullable()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::Alphabet;

    fn setup() -> (Alphabet, Symbol, Symbol, Symbol) {
        let mut ab = Alphabet::new();
        let a = ab.intern("a");
        let b = ab.intern("b");
        let c = ab.intern("c");
        (ab, a, b, c)
    }

    #[test]
    fn matches_simple_languages() {
        let (_, a, b, _) = setup();
        let r = Regex::union(
            Regex::concat(Regex::sym(a), Regex::sym(b)),
            Regex::star(Regex::sym(a)),
        );
        assert!(r.matches(&[]));
        assert!(r.matches(&[a]));
        assert!(r.matches(&[a, a, a]));
        assert!(r.matches(&[a, b]));
        assert!(!r.matches(&[b]));
        assert!(!r.matches(&[a, b, a]));
    }

    #[test]
    fn matches_example3_behavior() {
        // infer of Example 3: (a·(b·∅ + c))* + (a·(b·∅ + c))*·a·b
        let (_, a, b, c) = setup();
        let loop_body = Regex::concat(
            Regex::sym(a),
            Regex::union(Regex::concat(Regex::sym(b), Regex::empty()), Regex::sym(c)),
        );
        let ongoing = Regex::star(loop_body);
        let returned = Regex::concat(ongoing.clone(), Regex::concat(Regex::sym(a), Regex::sym(b)));
        let inferred = Regex::union(ongoing, returned);
        // Example 1: [a,c,a,c] ongoing.
        assert!(inferred.matches(&[a, c, a, c]));
        // Example 2: [a,c,a,b] returned.
        assert!(inferred.matches(&[a, c, a, b]));
        // b with no preceding a is not a behavior.
        assert!(!inferred.matches(&[b]));
        // After a return no trace may continue.
        assert!(!inferred.matches(&[a, b, a]));
    }

    #[test]
    fn derivative_of_star_unrolls() {
        let (_, a, _, _) = setup();
        let r = Regex::star(Regex::sym(a));
        assert_eq!(r.derivative(a), Regex::star(Regex::sym(a)));
    }

    #[test]
    fn empty_language_never_matches() {
        let (_, a, _, _) = setup();
        assert!(!Regex::empty().matches(&[]));
        assert!(!Regex::empty().matches(&[a]));
    }
}
