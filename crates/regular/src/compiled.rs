//! A compiled form of an [`Nfa`] for allocation-free subset stepping.
//!
//! Every determinizing traversal — [`Dfa::from_nfa`], the lazy
//! [`NfaView`](crate::lang::NfaView), and the joint product searches driving
//! spec monitors — repeats the same two computations in its hot loop:
//! ε-closure of the states just reached, and the symbol successors of every
//! state in the current subset. [`CompiledNfa`] hoists both out of the loop,
//! once per automaton:
//!
//! * the **ε-closure of each state** as a [`StateSet`] bitset, so closing a
//!   freshly-stepped subset is a union of precomputed blocks instead of a
//!   worklist walk over ε-edges;
//! * the **symbol successors of each `(state, symbol)` pair** in one flat
//!   CSR-style table (`offsets` into a shared `targets` array), so stepping
//!   never filters a state's mixed edge list by label.
//!
//! [`step_into`](CompiledNfa::step_into) then performs a whole
//! symbol-move-plus-closure into a caller-provided scratch set without
//! allocating. The `BTreeSet`-based path
//! ([`Nfa::epsilon_closure`], [`NfaViewRef`](crate::lang::NfaViewRef))
//! survives as the slow reference engine that differential tests pin this
//! one against.

use crate::nfa::{Label, Nfa, StateId};
use crate::stateset::StateSet;
use crate::symbol::{Alphabet, Symbol};
use std::sync::Arc;

/// Precomputed ε-closures and per-symbol successor tables of an [`Nfa`].
///
/// # Examples
///
/// ```
/// use shelley_regular::{Alphabet, CompiledNfa, Nfa, Regex};
/// use std::sync::Arc;
///
/// let mut ab = Alphabet::new();
/// let a = ab.intern("a");
/// let nfa = Nfa::from_regex(&Regex::star(Regex::sym(a)), Arc::new(ab));
/// let compiled = CompiledNfa::compile(&nfa);
/// let mut current = compiled.start_set();
/// let mut scratch = compiled.empty_set();
/// compiled.step_into(&current, a, &mut scratch);
/// std::mem::swap(&mut current, &mut scratch);
/// assert!(compiled.is_accepting(&current));
/// ```
#[derive(Debug, Clone)]
pub struct CompiledNfa {
    alphabet: Arc<Alphabet>,
    nstates: usize,
    start: StateId,
    /// `closure[q]` = ε-closure of `{q}` (always contains `q`).
    closure: Vec<StateSet>,
    /// CSR row offsets: the symbol successors of `(q, s)` are
    /// `targets[offsets[q * nsyms + s] .. offsets[q * nsyms + s + 1]]`.
    offsets: Vec<u32>,
    /// Flat successor array indexed through `offsets`.
    targets: Vec<u32>,
    /// Accepting states as a bitset (acceptance of a subset is one
    /// block-wise intersection test).
    accepting: StateSet,
}

impl CompiledNfa {
    /// Compiles `nfa`: one ε-closure per state plus the CSR successor table.
    pub fn compile(nfa: &Nfa) -> CompiledNfa {
        let nstates = nfa.num_states();
        let nsyms = nfa.alphabet().len();

        // Per-state ε-closure by worklist, reusing each predecessor's
        // already-computed closure is unsound under cycles, so close each
        // state independently (still linear in practice: Thompson NFAs have
        // out-degree ≤ 2).
        let mut closure = Vec::with_capacity(nstates);
        let mut stack: Vec<StateId> = Vec::new();
        for q in 0..nstates {
            let mut set = StateSet::new(nstates);
            set.insert(q);
            stack.push(q);
            while let Some(p) = stack.pop() {
                for &(label, dst) in nfa.edges_from(p) {
                    if label == Label::Eps && set.insert(dst) {
                        stack.push(dst);
                    }
                }
            }
            closure.push(set);
        }

        // CSR: count, prefix-sum, fill.
        let mut counts = vec![0u32; nstates * nsyms + 1];
        for q in 0..nstates {
            for &(label, _) in nfa.edges_from(q) {
                if let Label::Sym(s) = label {
                    counts[q * nsyms + s.index() + 1] += 1;
                }
            }
        }
        for i in 1..counts.len() {
            counts[i] += counts[i - 1];
        }
        let offsets = counts;
        let mut cursor = offsets.clone();
        let mut targets = vec![0u32; *offsets.last().unwrap_or(&0) as usize];
        for q in 0..nstates {
            for &(label, dst) in nfa.edges_from(q) {
                if let Label::Sym(s) = label {
                    let at = &mut cursor[q * nsyms + s.index()];
                    targets[*at as usize] = u32::try_from(dst).expect("NFA larger than u32::MAX");
                    *at += 1;
                }
            }
        }

        let mut accepting = StateSet::new(nstates);
        for q in 0..nstates {
            if nfa.is_accepting(q) {
                accepting.insert(q);
            }
        }

        CompiledNfa {
            alphabet: nfa.alphabet().clone(),
            nstates,
            start: nfa.start(),
            closure,
            offsets,
            targets,
            accepting,
        }
    }

    /// The automaton's alphabet.
    pub fn alphabet(&self) -> &Arc<Alphabet> {
        &self.alphabet
    }

    /// Number of NFA states (the capacity of every [`StateSet`] here).
    pub fn num_states(&self) -> usize {
        self.nstates
    }

    /// A fresh empty set sized to this automaton, for use as scratch space
    /// with [`step_into`](Self::step_into).
    pub fn empty_set(&self) -> StateSet {
        StateSet::new(self.nstates)
    }

    /// The ε-closed start subset (the initial state of determinization).
    pub fn start_set(&self) -> StateSet {
        self.closure[self.start].clone()
    }

    /// The precomputed ε-closure of a single state.
    pub fn closure_of(&self, state: StateId) -> &StateSet {
        &self.closure[state]
    }

    /// The symbol successors of `(state, symbol)` from the CSR table.
    pub fn successors(&self, state: StateId, symbol: Symbol) -> &[u32] {
        let row = state * self.alphabet.len() + symbol.index();
        &self.targets[self.offsets[row] as usize..self.offsets[row + 1] as usize]
    }

    /// One determinized step, allocation-free: `out` becomes the ε-closure
    /// of the `symbol`-successors of `current`.
    ///
    /// `out` is cleared first; callers keep two sets and swap them to stream
    /// a word through the automaton without touching the allocator.
    pub fn step_into(&self, current: &StateSet, symbol: Symbol, out: &mut StateSet) {
        out.clear();
        for q in current {
            for &dst in self.successors(q, symbol) {
                out.union_with(&self.closure[dst as usize]);
            }
        }
    }

    /// [`step_into`](Self::step_into) allocating a fresh result set.
    pub fn step(&self, current: &StateSet, symbol: Symbol) -> StateSet {
        let mut out = self.empty_set();
        for q in current {
            for &dst in self.successors(q, symbol) {
                out.union_with(&self.closure[dst as usize]);
            }
        }
        out
    }

    /// Whether the subset contains an accepting NFA state.
    pub fn is_accepting(&self, subset: &StateSet) -> bool {
        self.accepting.intersects(subset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regex::Regex;
    use std::collections::BTreeSet;

    fn compile3(r: &Regex) -> (Nfa, CompiledNfa) {
        let ab = Arc::new(Alphabet::from_names(["a", "b", "c"]));
        let nfa = Nfa::from_regex(r, ab);
        let compiled = CompiledNfa::compile(&nfa);
        (nfa, compiled)
    }

    fn as_btree(set: &StateSet) -> BTreeSet<StateId> {
        set.iter().collect()
    }

    #[test]
    fn closures_match_reference_epsilon_closure() {
        let a = Symbol::from_index(0);
        let b = Symbol::from_index(1);
        let r = Regex::star(Regex::union(
            Regex::word(&[a, b]),
            Regex::star(Regex::sym(b)),
        ));
        let (nfa, compiled) = compile3(&r);
        for q in 0..nfa.num_states() {
            let reference = nfa.epsilon_closure(&BTreeSet::from([q]));
            assert_eq!(as_btree(compiled.closure_of(q)), reference, "state {q}");
        }
        assert_eq!(
            as_btree(&compiled.start_set()),
            nfa.epsilon_closure(&BTreeSet::from([nfa.start()]))
        );
    }

    #[test]
    fn stepping_matches_reference_subset_simulation() {
        let a = Symbol::from_index(0);
        let b = Symbol::from_index(1);
        let c = Symbol::from_index(2);
        let r = Regex::union(
            Regex::concat(Regex::star(Regex::sym(a)), Regex::word(&[b, c])),
            Regex::star(Regex::word(&[a, b])),
        );
        let (nfa, compiled) = compile3(&r);
        let mut current = compiled.start_set();
        let mut scratch = compiled.empty_set();
        let mut reference = nfa.epsilon_closure(&BTreeSet::from([nfa.start()]));
        for sym in [a, b, a, b, c, a] {
            compiled.step_into(&current, sym, &mut scratch);
            std::mem::swap(&mut current, &mut scratch);
            let mut next = BTreeSet::new();
            for &q in &reference {
                for &(label, dst) in nfa.edges_from(q) {
                    if label == Label::Sym(sym) {
                        next.insert(dst);
                    }
                }
            }
            reference = nfa.epsilon_closure(&next);
            assert_eq!(as_btree(&current), reference);
            assert_eq!(
                compiled.is_accepting(&current),
                reference.iter().any(|&q| nfa.is_accepting(q))
            );
            assert_eq!(compiled.step(&current, sym), {
                let mut out = compiled.empty_set();
                compiled.step_into(&current, sym, &mut out);
                out
            });
        }
    }

    #[test]
    fn empty_alphabet_compiles() {
        let ab = Arc::new(Alphabet::new());
        let nfa = Nfa::from_regex(&Regex::Epsilon, ab);
        let compiled = CompiledNfa::compile(&nfa);
        assert!(compiled.is_accepting(&compiled.start_set()));
    }
}
