//! DFA minimization (Hopcroft's algorithm) and a naive baseline.
//!
//! The naive O(n²·|Σ|) Moore refinement is kept as an ablation baseline for
//! the benchmark suite and as a differential-testing oracle for Hopcroft.

use crate::dfa::Dfa;
use crate::nfa::StateId;
use crate::symbol::Symbol;
use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};

impl Dfa {
    /// Returns the unique (up to isomorphism) minimal DFA for this language,
    /// computed with Hopcroft's partition-refinement algorithm.
    pub fn minimize(&self) -> Dfa {
        let reachable = self.reachable_states();
        let n = reachable.len();
        if n == 0 {
            // Degenerate: unreachable start cannot happen (start is always
            // reachable), so n >= 1 in practice.
            return self.clone();
        }
        // Renumber reachable states densely.
        let mut dense: HashMap<StateId, usize> = HashMap::new();
        for (i, &q) in reachable.iter().enumerate() {
            dense.insert(q, i);
        }
        let nsyms = self.alphabet().len();
        // delta[q][s] in dense ids; inverse[s][q] = predecessors of q on s.
        let mut delta = vec![vec![0usize; nsyms]; n];
        let mut inverse: Vec<Vec<Vec<usize>>> = vec![vec![Vec::new(); n]; nsyms];
        for (i, &q) in reachable.iter().enumerate() {
            for s in 0..nsyms {
                let dst = dense[&self.step(q, Symbol::from_index(s))];
                delta[i][s] = dst;
                inverse[s][dst].push(i);
            }
        }
        let accepting: Vec<bool> = reachable.iter().map(|&q| self.is_accepting(q)).collect();

        // Hopcroft partition refinement.
        let mut partition: Vec<usize> = vec![0; n]; // state -> block id
        let mut blocks: Vec<Vec<usize>> = Vec::new();
        let acc: Vec<usize> = (0..n).filter(|&q| accepting[q]).collect();
        let rej: Vec<usize> = (0..n).filter(|&q| !accepting[q]).collect();
        for set in [acc, rej] {
            if !set.is_empty() {
                let id = blocks.len();
                for &q in &set {
                    partition[q] = id;
                }
                blocks.push(set);
            }
        }
        let mut worklist: VecDeque<(usize, usize)> = VecDeque::new();
        let mut in_worklist: HashSet<(usize, usize)> = HashSet::new();
        for s in 0..nsyms {
            // Push the smaller of the two initial blocks (or the only one).
            let idx = if blocks.len() == 2 && blocks[1].len() < blocks[0].len() {
                1
            } else {
                0
            };
            worklist.push_back((idx, s));
            in_worklist.insert((idx, s));
        }

        while let Some((block_id, sym)) = worklist.pop_front() {
            in_worklist.remove(&(block_id, sym));
            // X = states with a transition on sym into block_id.
            let splitter: Vec<usize> = blocks[block_id].clone();
            let mut x: HashSet<usize> = HashSet::new();
            for &q in &splitter {
                for &p in &inverse[sym][q] {
                    x.insert(p);
                }
            }
            if x.is_empty() {
                continue;
            }
            // Split every block B into B∩X and B\X. Iterate the affected
            // blocks in sorted order: new block ids are assigned during this
            // loop, so an unordered (HashSet) iteration made minimized-DFA
            // state numbering vary run to run.
            let affected: BTreeSet<usize> = x.iter().map(|&q| partition[q]).collect();
            for b in affected {
                let inside: Vec<usize> = blocks[b]
                    .iter()
                    .copied()
                    .filter(|q| x.contains(q))
                    .collect();
                if inside.len() == blocks[b].len() || inside.is_empty() {
                    continue;
                }
                let outside: Vec<usize> = blocks[b]
                    .iter()
                    .copied()
                    .filter(|q| !x.contains(q))
                    .collect();
                // Replace b with the larger part, create new block for the
                // smaller part.
                let (keep, split) = if inside.len() <= outside.len() {
                    (outside, inside)
                } else {
                    (inside, outside)
                };
                let new_id = blocks.len();
                for &q in &split {
                    partition[q] = new_id;
                }
                blocks[b] = keep;
                blocks.push(split);
                for s in 0..nsyms {
                    if in_worklist.contains(&(b, s)) {
                        worklist.push_back((new_id, s));
                        in_worklist.insert((new_id, s));
                    } else {
                        // Push the smaller of the two.
                        let idx = if blocks[new_id].len() < blocks[b].len() {
                            new_id
                        } else {
                            b
                        };
                        worklist.push_back((idx, s));
                        in_worklist.insert((idx, s));
                    }
                }
            }
        }

        self.quotient(&reachable, &partition, blocks.len())
    }

    /// Naive Moore-style minimization: iterated pairwise refinement.
    ///
    /// Quadratic; exists as a benchmark baseline and a differential oracle
    /// for [`Dfa::minimize`].
    pub fn minimize_naive(&self) -> Dfa {
        let reachable = self.reachable_states();
        let n = reachable.len();
        let mut dense: HashMap<StateId, usize> = HashMap::new();
        for (i, &q) in reachable.iter().enumerate() {
            dense.insert(q, i);
        }
        let nsyms = self.alphabet().len();
        let mut class: Vec<usize> = reachable
            .iter()
            .map(|&q| usize::from(self.is_accepting(q)))
            .collect();
        loop {
            let mut signature: HashMap<(usize, Vec<usize>), usize> = HashMap::new();
            let mut next: Vec<usize> = vec![0; n];
            for i in 0..n {
                let row: Vec<usize> = (0..nsyms)
                    .map(|s| class[dense[&self.step(reachable[i], Symbol::from_index(s))]])
                    .collect();
                let key = (class[i], row);
                let len = signature.len();
                let id = *signature.entry(key).or_insert(len);
                next[i] = id;
            }
            if next == class {
                break;
            }
            class = next;
        }
        let nblocks = class.iter().copied().max().map_or(0, |m| m + 1);
        self.quotient(&reachable, &class, nblocks)
    }

    fn reachable_states(&self) -> Vec<StateId> {
        let mut seen = vec![false; self.num_states()];
        let mut order = Vec::new();
        let mut queue = VecDeque::from([self.start()]);
        seen[self.start()] = true;
        while let Some(q) = queue.pop_front() {
            order.push(q);
            for s in 0..self.alphabet().len() {
                let dst = self.step(q, Symbol::from_index(s));
                if !seen[dst] {
                    seen[dst] = true;
                    queue.push_back(dst);
                }
            }
        }
        order
    }

    fn quotient(&self, reachable: &[StateId], class_of_dense: &[usize], nblocks: usize) -> Dfa {
        let nsyms = self.alphabet().len();
        let mut dense: HashMap<StateId, usize> = HashMap::new();
        for (i, &q) in reachable.iter().enumerate() {
            dense.insert(q, i);
        }
        let mut table = vec![vec![usize::MAX; nsyms]; nblocks];
        let mut accepting = vec![false; nblocks];
        for (i, &q) in reachable.iter().enumerate() {
            let b = class_of_dense[i];
            accepting[b] = accepting[b] || self.is_accepting(q);
            for s in 0..nsyms {
                let dst = dense[&self.step(q, Symbol::from_index(s))];
                table[b][s] = class_of_dense[dst];
            }
        }
        let start = class_of_dense[dense[&self.start()]];
        Dfa::from_parts(self.alphabet().clone(), table, start, accepting)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nfa::Nfa;
    use crate::regex::Regex;
    use crate::symbol::Alphabet;
    use std::sync::Arc;

    fn ab2() -> (Arc<Alphabet>, Symbol, Symbol) {
        let mut ab = Alphabet::new();
        let a = ab.intern("a");
        let b = ab.intern("b");
        (Arc::new(ab), a, b)
    }

    fn dfa_of(r: &Regex, ab: Arc<Alphabet>) -> Dfa {
        Dfa::from_nfa(&Nfa::from_regex(r, ab))
    }

    #[test]
    fn minimization_preserves_language() {
        let (ab, a, b) = ab2();
        let r = Regex::union(
            Regex::star(Regex::concat(Regex::sym(a), Regex::sym(b))),
            Regex::concat(Regex::sym(a), Regex::star(Regex::sym(b))),
        );
        let dfa = dfa_of(&r, ab);
        let min = dfa.minimize();
        assert!(min.num_states() <= dfa.num_states());
        assert!(min.equivalent(&dfa).is_ok());
    }

    #[test]
    fn hopcroft_agrees_with_naive() {
        let (ab, a, b) = ab2();
        let exprs = [
            Regex::star(Regex::sym(a)),
            Regex::union(Regex::word(&[a, b]), Regex::word(&[b, a])),
            Regex::concat(
                Regex::star(Regex::union(Regex::sym(a), Regex::sym(b))),
                Regex::word(&[a, b, a]),
            ),
            Regex::epsilon(),
            Regex::empty(),
        ];
        for r in &exprs {
            let dfa = dfa_of(r, ab.clone());
            let h = dfa.minimize();
            let m = dfa.minimize_naive();
            assert_eq!(h.num_states(), m.num_states(), "expr {:?}", r);
            assert!(h.equivalent(&m).is_ok());
        }
    }

    #[test]
    fn minimal_dfa_for_even_as_has_expected_size() {
        let (ab, a, _) = ab2();
        // (a·a)* over {a,b}: 2 live states + sink = 3.
        let r = Regex::star(Regex::word(&[a, a]));
        let min = dfa_of(&r, ab).minimize();
        assert_eq!(min.num_states(), 3);
    }

    #[test]
    fn minimization_is_deterministic_run_to_run() {
        // Regression: Hopcroft used to iterate affected blocks through a
        // HashSet, so the minimized DFA's state numbering depended on hash
        // iteration order. Two HashSets with equal contents hash-iterate
        // differently even within one process, so minimizing the same DFA
        // repeatedly genuinely exercises the old bug.
        let (ab, a, b) = ab2();
        // Enough states to produce several refinement splits.
        let r = Regex::union(
            Regex::concat(
                Regex::star(Regex::union(Regex::sym(a), Regex::sym(b))),
                Regex::word(&[a, b, a, a]),
            ),
            Regex::star(Regex::word(&[b, b, a])),
        );
        let dfa = dfa_of(&r, ab.clone());
        let first = dfa.minimize();
        for round in 0..8 {
            let again = dfa.minimize();
            assert_eq!(again.num_states(), first.num_states(), "round {round}");
            assert_eq!(again.start(), first.start(), "round {round}");
            for q in 0..first.num_states() {
                assert_eq!(again.is_accepting(q), first.is_accepting(q));
                for s in ab.symbols() {
                    assert_eq!(
                        again.step(q, s),
                        first.step(q, s),
                        "state {q} round {round}"
                    );
                }
            }
        }
    }

    #[test]
    fn empty_language_minimizes_to_single_state() {
        let (ab, _, _) = ab2();
        let min = dfa_of(&Regex::empty(), ab).minimize();
        assert_eq!(min.num_states(), 1);
        assert!(min.is_empty());
    }
}
