//! DFA minimization (Hopcroft's algorithm) and a naive baseline.
//!
//! The naive O(n²·|Σ|) Moore refinement is kept as an ablation baseline for
//! the benchmark suite and as a differential-testing oracle for Hopcroft.

use crate::dfa::Dfa;
use crate::nfa::StateId;
use crate::symbol::Symbol;
use std::collections::{HashMap, VecDeque};

/// A refinable partition of `0..n` in the style of Valmari/Knuutila: the
/// elements live in one permutation array, each block is a contiguous
/// slice of it, and splitting a block moves only the *marked* elements to
/// its front. Marking and splitting are O(1) array swaps, so one Hopcroft
/// splitter round costs O(|predecessors|) instead of a scan over every
/// affected block's elements.
///
/// All state is plain arrays and the `touched` stack is filled in mark
/// order, so refinement — and hence minimized-DFA state numbering — is
/// deterministic run to run.
struct RefinablePartition {
    /// Permutation of `0..n`; each block is `elems[begin[b]..end[b]]`.
    elems: Vec<usize>,
    /// Position of each element inside `elems`.
    loc: Vec<usize>,
    /// Block id of each element.
    block_of: Vec<usize>,
    begin: Vec<usize>,
    end: Vec<usize>,
    /// Marked elements sit at `elems[begin[b]..begin[b] + marked[b]]`.
    marked: Vec<usize>,
    /// Blocks with at least one marked element, in first-mark order.
    touched: Vec<usize>,
}

impl RefinablePartition {
    fn new(n: usize) -> Self {
        RefinablePartition {
            elems: (0..n).collect(),
            loc: (0..n).collect(),
            block_of: vec![0; n],
            begin: vec![0],
            end: vec![n],
            marked: vec![0],
            touched: Vec::new(),
        }
    }

    fn num_blocks(&self) -> usize {
        self.begin.len()
    }

    fn size(&self, b: usize) -> usize {
        self.end[b] - self.begin[b]
    }

    /// Marks one element of its block (idempotent).
    fn mark(&mut self, q: usize) {
        let b = self.block_of[q];
        let i = self.loc[q];
        let m = self.begin[b] + self.marked[b];
        if i < m {
            return; // already marked
        }
        if self.marked[b] == 0 {
            self.touched.push(b);
        }
        self.elems.swap(i, m);
        self.loc[self.elems[i]] = i;
        self.loc[self.elems[m]] = m;
        self.marked[b] += 1;
    }

    /// Splits every touched block into its marked and unmarked halves,
    /// clearing all marks. The *smaller* half becomes the new block
    /// (Hopcroft's invariant); `on_split(old, new)` fires per real split.
    fn split_marked(&mut self, mut on_split: impl FnMut(&Self, usize, usize)) {
        // LIFO over a deterministic stack: order only affects block-id
        // assignment, which stays reproducible because `touched` is built
        // in mark order.
        while let Some(b) = self.touched.pop() {
            let m = std::mem::take(&mut self.marked[b]);
            if m == self.size(b) {
                continue; // fully marked: nothing splits off
            }
            let new_id = self.begin.len();
            if m <= self.size(b) - m {
                // Marked prefix becomes the new block.
                self.begin.push(self.begin[b]);
                self.end.push(self.begin[b] + m);
                self.begin[b] += m;
            } else {
                // Unmarked suffix becomes the new block.
                self.begin.push(self.begin[b] + m);
                self.end.push(self.end[b]);
                self.end[b] = self.begin[b] + m;
            }
            self.marked.push(0);
            for i in self.begin[new_id]..self.end[new_id] {
                self.block_of[self.elems[i]] = new_id;
            }
            on_split(self, b, new_id);
        }
    }
}

impl Dfa {
    /// Returns the unique (up to isomorphism) minimal DFA for this language,
    /// computed with Hopcroft's partition-refinement algorithm over a
    /// refinable partition (constant-time marking and splitting; the
    /// splitter queue holds `(block, symbol)` pairs and always re-enqueues
    /// the smaller half of a split).
    pub fn minimize(&self) -> Dfa {
        let reachable = self.reachable_states();
        let n = reachable.len();
        if n == 0 {
            // Degenerate: unreachable start cannot happen (start is always
            // reachable), so n >= 1 in practice.
            return self.clone();
        }
        // Renumber reachable states densely.
        let mut dense: HashMap<StateId, usize> = HashMap::new();
        for (i, &q) in reachable.iter().enumerate() {
            dense.insert(q, i);
        }
        let nsyms = self.alphabet().len();
        // inverse[s][q] = predecessors of q on s, flattened CSR-style.
        let mut inverse: Vec<Vec<Vec<usize>>> = vec![vec![Vec::new(); n]; nsyms];
        for (i, &q) in reachable.iter().enumerate() {
            for s in 0..nsyms {
                let dst = dense[&self.step(q, Symbol::from_index(s))];
                inverse[s][dst].push(i);
            }
        }

        // Initial partition: accepting vs rejecting.
        let mut partition = RefinablePartition::new(n);
        for (i, &q) in reachable.iter().enumerate() {
            if self.is_accepting(q) {
                partition.mark(i);
            }
        }
        partition.split_marked(|_, _, _| {});

        // Splitter queue: seed the smaller initial block on every symbol.
        // Worst case n blocks, so `scheduled` can be sized up front.
        let mut worklist: VecDeque<(usize, usize)> = VecDeque::new();
        let mut scheduled = vec![false; n * nsyms.max(1)];
        let seed = if partition.num_blocks() == 2 && partition.size(1) < partition.size(0) {
            1
        } else {
            0
        };
        for s in 0..nsyms {
            worklist.push_back((seed, s));
            scheduled[seed * nsyms + s] = true;
        }

        while let Some((block_id, sym)) = worklist.pop_front() {
            scheduled[block_id * nsyms + sym] = false;
            // Snapshot the splitter: marking below permutes `elems`,
            // including possibly this very block's slice.
            let splitter: Vec<usize> =
                partition.elems[partition.begin[block_id]..partition.end[block_id]].to_vec();
            for &q in &splitter {
                for &p in &inverse[sym][q] {
                    partition.mark(p);
                }
            }
            partition.split_marked(|p, old, new| {
                for s in 0..nsyms {
                    if scheduled[old * nsyms + s] {
                        // Old block already pending: both halves must be
                        // processed.
                        worklist.push_back((new, s));
                        scheduled[new * nsyms + s] = true;
                    } else {
                        let idx = if p.size(new) < p.size(old) { new } else { old };
                        worklist.push_back((idx, s));
                        scheduled[idx * nsyms + s] = true;
                    }
                }
            });
        }

        let class: Vec<usize> = partition.block_of.clone();
        self.quotient(&reachable, &class, partition.num_blocks())
    }

    /// Naive Moore-style minimization: iterated pairwise refinement.
    ///
    /// Quadratic; exists as a benchmark baseline and a differential oracle
    /// for [`Dfa::minimize`].
    pub fn minimize_naive(&self) -> Dfa {
        let reachable = self.reachable_states();
        let n = reachable.len();
        let mut dense: HashMap<StateId, usize> = HashMap::new();
        for (i, &q) in reachable.iter().enumerate() {
            dense.insert(q, i);
        }
        let nsyms = self.alphabet().len();
        let mut class: Vec<usize> = reachable
            .iter()
            .map(|&q| usize::from(self.is_accepting(q)))
            .collect();
        loop {
            let mut signature: HashMap<(usize, Vec<usize>), usize> = HashMap::new();
            let mut next: Vec<usize> = vec![0; n];
            for i in 0..n {
                let row: Vec<usize> = (0..nsyms)
                    .map(|s| class[dense[&self.step(reachable[i], Symbol::from_index(s))]])
                    .collect();
                let key = (class[i], row);
                let len = signature.len();
                let id = *signature.entry(key).or_insert(len);
                next[i] = id;
            }
            if next == class {
                break;
            }
            class = next;
        }
        let nblocks = class.iter().copied().max().map_or(0, |m| m + 1);
        self.quotient(&reachable, &class, nblocks)
    }

    fn reachable_states(&self) -> Vec<StateId> {
        let mut seen = vec![false; self.num_states()];
        let mut order = Vec::new();
        let mut queue = VecDeque::from([self.start()]);
        seen[self.start()] = true;
        while let Some(q) = queue.pop_front() {
            order.push(q);
            for s in 0..self.alphabet().len() {
                let dst = self.step(q, Symbol::from_index(s));
                if !seen[dst] {
                    seen[dst] = true;
                    queue.push_back(dst);
                }
            }
        }
        order
    }

    fn quotient(&self, reachable: &[StateId], class_of_dense: &[usize], nblocks: usize) -> Dfa {
        let nsyms = self.alphabet().len();
        let mut dense: HashMap<StateId, usize> = HashMap::new();
        for (i, &q) in reachable.iter().enumerate() {
            dense.insert(q, i);
        }
        let mut table = vec![vec![usize::MAX; nsyms]; nblocks];
        let mut accepting = vec![false; nblocks];
        for (i, &q) in reachable.iter().enumerate() {
            let b = class_of_dense[i];
            accepting[b] = accepting[b] || self.is_accepting(q);
            for s in 0..nsyms {
                let dst = dense[&self.step(q, Symbol::from_index(s))];
                table[b][s] = class_of_dense[dst];
            }
        }
        let start = class_of_dense[dense[&self.start()]];
        Dfa::from_parts(self.alphabet().clone(), table, start, accepting)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nfa::Nfa;
    use crate::regex::Regex;
    use crate::symbol::Alphabet;
    use std::sync::Arc;

    fn ab2() -> (Arc<Alphabet>, Symbol, Symbol) {
        let mut ab = Alphabet::new();
        let a = ab.intern("a");
        let b = ab.intern("b");
        (Arc::new(ab), a, b)
    }

    fn dfa_of(r: &Regex, ab: Arc<Alphabet>) -> Dfa {
        Dfa::from_nfa(&Nfa::from_regex(r, ab))
    }

    #[test]
    fn minimization_preserves_language() {
        let (ab, a, b) = ab2();
        let r = Regex::union(
            Regex::star(Regex::concat(Regex::sym(a), Regex::sym(b))),
            Regex::concat(Regex::sym(a), Regex::star(Regex::sym(b))),
        );
        let dfa = dfa_of(&r, ab);
        let min = dfa.minimize();
        assert!(min.num_states() <= dfa.num_states());
        assert!(min.equivalent(&dfa).is_ok());
    }

    #[test]
    fn hopcroft_agrees_with_naive() {
        let (ab, a, b) = ab2();
        let exprs = [
            Regex::star(Regex::sym(a)),
            Regex::union(Regex::word(&[a, b]), Regex::word(&[b, a])),
            Regex::concat(
                Regex::star(Regex::union(Regex::sym(a), Regex::sym(b))),
                Regex::word(&[a, b, a]),
            ),
            Regex::epsilon(),
            Regex::empty(),
        ];
        for r in &exprs {
            let dfa = dfa_of(r, ab.clone());
            let h = dfa.minimize();
            let m = dfa.minimize_naive();
            assert_eq!(h.num_states(), m.num_states(), "expr {:?}", r);
            assert!(h.equivalent(&m).is_ok());
        }
    }

    #[test]
    fn minimal_dfa_for_even_as_has_expected_size() {
        let (ab, a, _) = ab2();
        // (a·a)* over {a,b}: 2 live states + sink = 3.
        let r = Regex::star(Regex::word(&[a, a]));
        let min = dfa_of(&r, ab).minimize();
        assert_eq!(min.num_states(), 3);
    }

    #[test]
    fn minimization_is_deterministic_run_to_run() {
        // Regression: Hopcroft used to iterate affected blocks through a
        // HashSet, so the minimized DFA's state numbering depended on hash
        // iteration order. Two HashSets with equal contents hash-iterate
        // differently even within one process, so minimizing the same DFA
        // repeatedly genuinely exercises the old bug.
        let (ab, a, b) = ab2();
        // Enough states to produce several refinement splits.
        let r = Regex::union(
            Regex::concat(
                Regex::star(Regex::union(Regex::sym(a), Regex::sym(b))),
                Regex::word(&[a, b, a, a]),
            ),
            Regex::star(Regex::word(&[b, b, a])),
        );
        let dfa = dfa_of(&r, ab.clone());
        let first = dfa.minimize();
        for round in 0..8 {
            let again = dfa.minimize();
            assert_eq!(again.num_states(), first.num_states(), "round {round}");
            assert_eq!(again.start(), first.start(), "round {round}");
            for q in 0..first.num_states() {
                assert_eq!(again.is_accepting(q), first.is_accepting(q));
                for s in ab.symbols() {
                    assert_eq!(
                        again.step(q, s),
                        first.step(q, s),
                        "state {q} round {round}"
                    );
                }
            }
        }
    }

    #[test]
    fn empty_language_minimizes_to_single_state() {
        let (ab, _, _) = ab2();
        let min = dfa_of(&Regex::empty(), ab).minimize();
        assert_eq!(min.num_states(), 1);
        assert!(min.is_empty());
    }
}
