//! Property-based tests for the regular-language toolkit.
//!
//! The key invariant: every representation of a language (regex via
//! derivatives, Thompson NFA, subset-construction DFA, minimized DFA) must
//! agree on membership, and the boolean algebra must satisfy its laws.

use proptest::prelude::*;
use shelley_regular::{Alphabet, Dfa, Nfa, Regex, Symbol};
use std::sync::Arc;

const NSYMS: usize = 3;

fn alphabet() -> Arc<Alphabet> {
    Arc::new(Alphabet::from_names(["a", "b", "c"]))
}

fn arb_regex() -> impl Strategy<Value = Regex> {
    let leaf = prop_oneof![
        Just(Regex::empty()),
        Just(Regex::epsilon()),
        (0..NSYMS).prop_map(|i| Regex::sym(Symbol::from_index(i))),
    ];
    leaf.prop_recursive(5, 32, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Regex::concat(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Regex::union(a, b)),
            inner.prop_map(Regex::star),
        ]
    })
}

fn arb_word() -> impl Strategy<Value = Vec<Symbol>> {
    proptest::collection::vec((0..NSYMS).prop_map(Symbol::from_index), 0..8)
}

proptest! {
    /// Derivative-based membership agrees with the NFA and DFA pipelines.
    #[test]
    fn representations_agree(r in arb_regex(), w in arb_word()) {
        let ab = alphabet();
        let expected = r.matches(&w);
        let nfa = Nfa::from_regex(&r, ab.clone());
        prop_assert_eq!(nfa.accepts(&w), expected);
        let dfa = Dfa::from_nfa(&nfa);
        prop_assert_eq!(dfa.accepts(&w), expected);
        let min = dfa.minimize();
        prop_assert_eq!(min.accepts(&w), expected);
    }

    /// Hopcroft and naive minimization build equivalent automata of equal size.
    #[test]
    fn minimizers_agree(r in arb_regex()) {
        let ab = alphabet();
        let dfa = Dfa::from_nfa(&Nfa::from_regex(&r, ab));
        let h = dfa.minimize();
        let n = dfa.minimize_naive();
        prop_assert_eq!(h.num_states(), n.num_states());
        prop_assert!(h.equivalent(&n).is_ok());
        prop_assert!(h.equivalent(&dfa).is_ok());
    }

    /// Minimizing twice is a fixpoint (state count stabilizes).
    #[test]
    fn minimize_is_idempotent(r in arb_regex()) {
        let ab = alphabet();
        let m1 = Dfa::from_nfa(&Nfa::from_regex(&r, ab)).minimize();
        let m2 = m1.minimize();
        prop_assert_eq!(m1.num_states(), m2.num_states());
    }

    /// De Morgan over the DFA boolean algebra.
    #[test]
    fn de_morgan(r1 in arb_regex(), r2 in arb_regex(), w in arb_word()) {
        let ab = alphabet();
        let d1 = Dfa::from_nfa(&Nfa::from_regex(&r1, ab.clone()));
        let d2 = Dfa::from_nfa(&Nfa::from_regex(&r2, ab));
        let lhs = d1.intersect(&d2).complement();
        let rhs = d1.complement().union(&d2.complement());
        prop_assert_eq!(lhs.accepts(&w), rhs.accepts(&w));
    }

    /// Concatenation of languages corresponds to splitting the word.
    #[test]
    fn concat_splits(r1 in arb_regex(), r2 in arb_regex(), w in arb_word()) {
        let cat = Regex::concat(r1.clone(), r2.clone());
        let direct = cat.matches(&w);
        let split = (0..=w.len())
            .any(|i| r1.matches(&w[..i]) && r2.matches(&w[i..]));
        prop_assert_eq!(direct, split);
    }

    /// Union behaves pointwise.
    #[test]
    fn union_pointwise(r1 in arb_regex(), r2 in arb_regex(), w in arb_word()) {
        let u = Regex::union(r1.clone(), r2.clone());
        prop_assert_eq!(u.matches(&w), r1.matches(&w) || r2.matches(&w));
    }

    /// Star absorbs repetition: if w ∈ L(r*) and v ∈ L(r*) then wv ∈ L(r*).
    #[test]
    fn star_is_closed_under_concat(
        r in arb_regex(),
        w in arb_word(),
        v in arb_word()
    ) {
        let star = Regex::star(r);
        if star.matches(&w) && star.matches(&v) {
            let mut wv = w.clone();
            wv.extend_from_slice(&v);
            prop_assert!(star.matches(&wv));
        }
    }

    /// Enumerated words are all members; membership of enumerated words is
    /// complete up to the bound.
    #[test]
    fn enumeration_sound_and_complete(r in arb_regex()) {
        let ab = alphabet();
        let dfa = Dfa::from_nfa(&Nfa::from_regex(&r, ab));
        let words = dfa.enumerate_words(4, 2000);
        for w in &words {
            prop_assert!(r.matches(w), "enumerated non-member {:?}", w);
        }
        // Cross-check counts (only when the enumeration wasn't truncated).
        if words.len() < 2000 {
            let counts = dfa.count_words_by_length(4);
            let total: u64 = counts.iter().sum();
            prop_assert_eq!(total, words.len() as u64);
        }
    }

    /// `subset_of` counterexamples are genuine.
    #[test]
    fn subset_counterexamples_are_real(r1 in arb_regex(), r2 in arb_regex()) {
        let ab = alphabet();
        let d1 = Dfa::from_nfa(&Nfa::from_regex(&r1, ab.clone()));
        let d2 = Dfa::from_nfa(&Nfa::from_regex(&r2, ab));
        match d1.subset_of(&d2) {
            Ok(()) => {
                // Spot-check on enumerated words of d1.
                for w in d1.enumerate_words(3, 50) {
                    prop_assert!(d2.accepts(&w));
                }
            }
            Err(w) => {
                prop_assert!(d1.accepts(&w));
                prop_assert!(!d2.accepts(&w));
            }
        }
    }

    /// Shortest accepted word from the NFA matches the DFA's.
    #[test]
    fn shortest_words_agree(r in arb_regex()) {
        let ab = alphabet();
        let nfa = Nfa::from_regex(&r, ab);
        let dfa = Dfa::from_nfa(&nfa);
        match (nfa.shortest_accepted(), dfa.shortest_accepted()) {
            (None, None) => {}
            (Some(a), Some(b)) => {
                prop_assert_eq!(a.len(), b.len());
                prop_assert!(r.matches(&a));
                prop_assert!(r.matches(&b));
            }
            (a, b) => prop_assert!(false, "disagree: {:?} vs {:?}", a, b),
        }
    }

    /// Erasing all symbols of a word-regex leaves only ε.
    #[test]
    fn erase_everything_gives_epsilon(w in arb_word()) {
        let ab = alphabet();
        let r = Regex::word(&w);
        let nfa = Nfa::from_regex(&r, ab.clone());
        let all: std::collections::BTreeSet<Symbol> = ab.symbols().collect();
        let erased = nfa.erase_symbols(&all);
        prop_assert!(erased.accepts(&[]));
    }
}

proptest! {
    /// The lazy language-view engine and the eager DFA algebra produce
    /// byte-identical answers: same subset verdicts, same witnesses, same
    /// shortest words, on every generated pair of regexes.
    #[test]
    fn lazy_engine_matches_eager_engine(r1 in arb_regex(), r2 in arb_regex()) {
        use shelley_regular::lang::{self, Complement, NfaView, Product};
        let ab = alphabet();
        let n1 = Nfa::from_regex(&r1, ab.clone());
        let n2 = Nfa::from_regex(&r2, ab.clone());
        let d1 = Dfa::from_nfa(&n1);
        let d2 = Dfa::from_nfa(&n2);

        // Subset checks: verdict AND witness must be byte-identical.
        prop_assert_eq!(
            lang::subset_of(&NfaView::new(&n1), &NfaView::new(&n2)),
            d1.subset_of(&d2)
        );

        // Boolean combinators: shortest accepted word must be identical to
        // the eager product construction's (both are shortlex-minimal).
        prop_assert_eq!(
            lang::shortest_accepted(&Product::intersection(NfaView::new(&n1), NfaView::new(&n2))),
            d1.intersect(&d2).shortest_accepted()
        );
        prop_assert_eq!(
            lang::shortest_accepted(&Product::union(NfaView::new(&n1), NfaView::new(&n2))),
            d1.union(&d2).shortest_accepted()
        );
        prop_assert_eq!(
            lang::shortest_accepted(&Product::difference(NfaView::new(&n1), NfaView::new(&n2))),
            d1.difference(&d2).shortest_accepted()
        );
        prop_assert_eq!(
            lang::shortest_accepted(&Complement::new(NfaView::new(&n1))),
            d1.complement().shortest_accepted()
        );
    }

    /// Materializing the lazy subset view reproduces eager subset
    /// construction exactly: same state numbering, same table, same
    /// acceptance — not merely an equivalent automaton.
    #[test]
    fn materialize_is_identical_to_subset_construction(r in arb_regex(), w in arb_word()) {
        use shelley_regular::lang::{self, NfaView};
        let ab = alphabet();
        let nfa = Nfa::from_regex(&r, ab.clone());
        let lazy = lang::materialize(&NfaView::new(&nfa));
        let eager = Dfa::from_nfa(&nfa);
        prop_assert_eq!(lazy.num_states(), eager.num_states());
        prop_assert_eq!(lazy.start(), eager.start());
        for q in 0..lazy.num_states() {
            prop_assert_eq!(lazy.is_accepting(q), eager.is_accepting(q));
            for s in ab.symbols() {
                prop_assert_eq!(lazy.step(q, s), eager.step(q, s));
            }
        }
        prop_assert_eq!(lazy.accepts(&w), r.matches(&w));
    }

    /// The lazy shortest-word search on a DFA view returns exactly what
    /// the DFA's own search returns (both shortlex-minimal, same
    /// tie-breaking).
    #[test]
    fn lazy_shortest_accepted_matches_dfa_search(r in arb_regex()) {
        use shelley_regular::lang;
        let ab = alphabet();
        let nfa = Nfa::from_regex(&r, ab.clone());
        let dfa = Dfa::from_nfa(&nfa);
        prop_assert_eq!(lang::shortest_accepted(&dfa), dfa.shortest_accepted());
        prop_assert_eq!(
            lang::shortest_accepted(&lang::NfaView::new(&nfa)),
            dfa.shortest_accepted()
        );
        prop_assert_eq!(lang::is_empty(&dfa), dfa.shortest_accepted().is_none());
    }

    /// State elimination recovers the same language.
    #[test]
    fn to_regex_roundtrip(r in arb_regex()) {
        let ab = alphabet();
        let nfa = Nfa::from_regex(&r, ab.clone());
        let recovered = nfa.to_regex();
        let d1 = Dfa::from_nfa(&nfa);
        let d2 = Dfa::from_nfa(&Nfa::from_regex(&recovered, ab));
        prop_assert!(d1.equivalent(&d2).is_ok());
    }

    /// DFA-to-regex after minimization also recovers the language.
    #[test]
    fn dfa_to_regex_roundtrip(r in arb_regex()) {
        let ab = alphabet();
        let dfa = Dfa::from_nfa(&Nfa::from_regex(&r, ab.clone())).minimize();
        let back = dfa.to_regex();
        let d2 = Dfa::from_nfa(&Nfa::from_regex(&back, ab));
        prop_assert!(dfa.equivalent(&d2).is_ok());
    }
}
