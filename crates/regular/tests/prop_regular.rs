//! Property-based tests for the regular-language toolkit.
//!
//! The key invariant: every representation of a language (regex via
//! derivatives, Thompson NFA, subset-construction DFA, minimized DFA) must
//! agree on membership, and the boolean algebra must satisfy its laws.

use proptest::prelude::*;
use shelley_regular::{Alphabet, Dfa, Nfa, Regex, Symbol};
use std::sync::Arc;

const NSYMS: usize = 3;

fn alphabet() -> Arc<Alphabet> {
    Arc::new(Alphabet::from_names(["a", "b", "c"]))
}

fn arb_regex() -> impl Strategy<Value = Regex> {
    let leaf = prop_oneof![
        Just(Regex::empty()),
        Just(Regex::epsilon()),
        (0..NSYMS).prop_map(|i| Regex::sym(Symbol::from_index(i))),
    ];
    leaf.prop_recursive(5, 32, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Regex::concat(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Regex::union(a, b)),
            inner.prop_map(Regex::star),
        ]
    })
}

fn arb_word() -> impl Strategy<Value = Vec<Symbol>> {
    proptest::collection::vec((0..NSYMS).prop_map(Symbol::from_index), 0..8)
}

proptest! {
    /// Derivative-based membership agrees with the NFA and DFA pipelines.
    #[test]
    fn representations_agree(r in arb_regex(), w in arb_word()) {
        let ab = alphabet();
        let expected = r.matches(&w);
        let nfa = Nfa::from_regex(&r, ab.clone());
        prop_assert_eq!(nfa.accepts(&w), expected);
        let dfa = Dfa::from_nfa(&nfa);
        prop_assert_eq!(dfa.accepts(&w), expected);
        let min = dfa.minimize();
        prop_assert_eq!(min.accepts(&w), expected);
    }

    /// Hopcroft and naive minimization build equivalent automata of equal size.
    #[test]
    fn minimizers_agree(r in arb_regex()) {
        let ab = alphabet();
        let dfa = Dfa::from_nfa(&Nfa::from_regex(&r, ab));
        let h = dfa.minimize();
        let n = dfa.minimize_naive();
        prop_assert_eq!(h.num_states(), n.num_states());
        prop_assert!(h.equivalent(&n).is_ok());
        prop_assert!(h.equivalent(&dfa).is_ok());
    }

    /// Minimizing twice is a fixpoint (state count stabilizes).
    #[test]
    fn minimize_is_idempotent(r in arb_regex()) {
        let ab = alphabet();
        let m1 = Dfa::from_nfa(&Nfa::from_regex(&r, ab)).minimize();
        let m2 = m1.minimize();
        prop_assert_eq!(m1.num_states(), m2.num_states());
    }

    /// De Morgan over the DFA boolean algebra.
    #[test]
    fn de_morgan(r1 in arb_regex(), r2 in arb_regex(), w in arb_word()) {
        let ab = alphabet();
        let d1 = Dfa::from_nfa(&Nfa::from_regex(&r1, ab.clone()));
        let d2 = Dfa::from_nfa(&Nfa::from_regex(&r2, ab));
        let lhs = d1.intersect(&d2).complement();
        let rhs = d1.complement().union(&d2.complement());
        prop_assert_eq!(lhs.accepts(&w), rhs.accepts(&w));
    }

    /// Concatenation of languages corresponds to splitting the word.
    #[test]
    fn concat_splits(r1 in arb_regex(), r2 in arb_regex(), w in arb_word()) {
        let cat = Regex::concat(r1.clone(), r2.clone());
        let direct = cat.matches(&w);
        let split = (0..=w.len())
            .any(|i| r1.matches(&w[..i]) && r2.matches(&w[i..]));
        prop_assert_eq!(direct, split);
    }

    /// Union behaves pointwise.
    #[test]
    fn union_pointwise(r1 in arb_regex(), r2 in arb_regex(), w in arb_word()) {
        let u = Regex::union(r1.clone(), r2.clone());
        prop_assert_eq!(u.matches(&w), r1.matches(&w) || r2.matches(&w));
    }

    /// Star absorbs repetition: if w ∈ L(r*) and v ∈ L(r*) then wv ∈ L(r*).
    #[test]
    fn star_is_closed_under_concat(
        r in arb_regex(),
        w in arb_word(),
        v in arb_word()
    ) {
        let star = Regex::star(r);
        if star.matches(&w) && star.matches(&v) {
            let mut wv = w.clone();
            wv.extend_from_slice(&v);
            prop_assert!(star.matches(&wv));
        }
    }

    /// Enumerated words are all members; membership of enumerated words is
    /// complete up to the bound.
    #[test]
    fn enumeration_sound_and_complete(r in arb_regex()) {
        let ab = alphabet();
        let dfa = Dfa::from_nfa(&Nfa::from_regex(&r, ab));
        let words = dfa.enumerate_words(4, 2000);
        for w in &words {
            prop_assert!(r.matches(w), "enumerated non-member {:?}", w);
        }
        // Cross-check counts (only when the enumeration wasn't truncated).
        if words.len() < 2000 {
            let counts = dfa.count_words_by_length(4);
            let total: u64 = counts.iter().sum();
            prop_assert_eq!(total, words.len() as u64);
        }
    }

    /// `subset_of` counterexamples are genuine.
    #[test]
    fn subset_counterexamples_are_real(r1 in arb_regex(), r2 in arb_regex()) {
        let ab = alphabet();
        let d1 = Dfa::from_nfa(&Nfa::from_regex(&r1, ab.clone()));
        let d2 = Dfa::from_nfa(&Nfa::from_regex(&r2, ab));
        match d1.subset_of(&d2) {
            Ok(()) => {
                // Spot-check on enumerated words of d1.
                for w in d1.enumerate_words(3, 50) {
                    prop_assert!(d2.accepts(&w));
                }
            }
            Err(w) => {
                prop_assert!(d1.accepts(&w));
                prop_assert!(!d2.accepts(&w));
            }
        }
    }

    /// Shortest accepted word from the NFA matches the DFA's.
    #[test]
    fn shortest_words_agree(r in arb_regex()) {
        let ab = alphabet();
        let nfa = Nfa::from_regex(&r, ab);
        let dfa = Dfa::from_nfa(&nfa);
        match (nfa.shortest_accepted(), dfa.shortest_accepted()) {
            (None, None) => {}
            (Some(a), Some(b)) => {
                prop_assert_eq!(a.len(), b.len());
                prop_assert!(r.matches(&a));
                prop_assert!(r.matches(&b));
            }
            (a, b) => prop_assert!(false, "disagree: {:?} vs {:?}", a, b),
        }
    }

    /// Erasing all symbols of a word-regex leaves only ε.
    #[test]
    fn erase_everything_gives_epsilon(w in arb_word()) {
        let ab = alphabet();
        let r = Regex::word(&w);
        let nfa = Nfa::from_regex(&r, ab.clone());
        let all: std::collections::BTreeSet<Symbol> = ab.symbols().collect();
        let erased = nfa.erase_symbols(&all);
        prop_assert!(erased.accepts(&[]));
    }
}

/// One mutation of a [`shelley_regular::StateSet`] under test against its
/// `BTreeSet<usize>` model.
#[derive(Debug, Clone)]
enum SetOp {
    Insert(usize),
    UnionPrepared(Vec<usize>),
    IntersectPrepared(Vec<usize>),
    DifferencePrepared(Vec<usize>),
    Clear,
}

fn arb_set_op(capacity: usize) -> impl Strategy<Value = SetOp> {
    prop_oneof![
        4 => (0..capacity).prop_map(SetOp::Insert),
        2 => proptest::collection::vec(0..capacity, 0..8).prop_map(SetOp::UnionPrepared),
        2 => proptest::collection::vec(0..capacity, 0..8).prop_map(SetOp::IntersectPrepared),
        2 => proptest::collection::vec(0..capacity, 0..8).prop_map(SetOp::DifferencePrepared),
        1 => Just(SetOp::Clear),
    ]
}

fn hash_of(value: &impl std::hash::Hash) -> u64 {
    use std::hash::Hasher;
    let mut h = std::collections::hash_map::DefaultHasher::new();
    value.hash(&mut h);
    h.finish()
}

proptest! {
    /// `StateSet` agrees with a `BTreeSet<usize>` model under every
    /// interleaving of insert/union/clear: same membership, same ascending
    /// iteration order, same emptiness and length, and Eq/Hash consistent
    /// with set equality.
    #[test]
    fn stateset_matches_btreeset_model(
        capacity in 1usize..200,
        ops in proptest::collection::vec(arb_set_op(199), 0..40)
    ) {
        use shelley_regular::StateSet;
        use std::collections::BTreeSet;
        let mut set = StateSet::new(capacity);
        let mut model: BTreeSet<usize> = BTreeSet::new();
        for op in ops {
            match op {
                SetOp::Insert(q) => {
                    let q = q % capacity;
                    prop_assert_eq!(set.insert(q), model.insert(q));
                }
                SetOp::UnionPrepared(items) => {
                    let mut other = StateSet::new(capacity);
                    for q in items {
                        let q = q % capacity;
                        other.insert(q);
                        model.insert(q);
                    }
                    prop_assert_eq!(
                        set.intersects(&other),
                        other.iter().any(|q| set.contains(q))
                    );
                    set.union_with(&other);
                }
                SetOp::IntersectPrepared(items) => {
                    let mut other = StateSet::new(capacity);
                    let mut other_model: BTreeSet<usize> = BTreeSet::new();
                    for q in items {
                        let q = q % capacity;
                        other.insert(q);
                        other_model.insert(q);
                    }
                    set.intersect_with(&other);
                    model = model.intersection(&other_model).copied().collect();
                }
                SetOp::DifferencePrepared(items) => {
                    let mut other = StateSet::new(capacity);
                    let mut other_model: BTreeSet<usize> = BTreeSet::new();
                    for q in items {
                        let q = q % capacity;
                        other.insert(q);
                        other_model.insert(q);
                    }
                    set.difference_with(&other);
                    model = model.difference(&other_model).copied().collect();
                }
                SetOp::Clear => {
                    set.clear();
                    model.clear();
                }
            }
            // Iteration order, length, membership, emptiness.
            let elements: Vec<usize> = set.iter().collect();
            let expected: Vec<usize> = model.iter().copied().collect();
            prop_assert_eq!(&elements, &expected);
            prop_assert_eq!(set.len(), model.len());
            prop_assert_eq!(set.is_empty(), model.is_empty());
            for q in 0..capacity {
                prop_assert_eq!(set.contains(q), model.contains(&q));
            }
            // Eq/Hash consistency: rebuilding the same contents in a
            // different order yields an equal set with an equal hash.
            let mut rebuilt = StateSet::new(capacity);
            for &q in model.iter().rev() {
                rebuilt.insert(q);
            }
            prop_assert_eq!(&rebuilt, &set);
            prop_assert_eq!(hash_of(&rebuilt), hash_of(&set));
        }
    }

    /// The bitset engine ([`NfaView`] over `CompiledNfa`) and the retained
    /// `BTreeSet` reference engine ([`NfaViewRef`]) are byte-identical:
    /// same subset verdicts and witnesses, same shortest words, and the
    /// same materialized automaton — state numbering included — which also
    /// pins `Dfa::from_nfa`'s bitset subset construction to the historical
    /// numbering.
    #[test]
    fn bitset_engine_matches_reference_engine(r1 in arb_regex(), r2 in arb_regex()) {
        use shelley_regular::lang::{self, NfaView, NfaViewRef, Product};
        let ab = alphabet();
        let n1 = Nfa::from_regex(&r1, ab.clone());
        let n2 = Nfa::from_regex(&r2, ab.clone());

        // Verdicts and witnesses.
        prop_assert_eq!(
            lang::subset_of(&NfaView::new(&n1), &NfaView::new(&n2)),
            lang::subset_of(&NfaViewRef::new(&n1), &NfaViewRef::new(&n2))
        );
        prop_assert_eq!(
            lang::shortest_accepted(&NfaView::new(&n1)),
            lang::shortest_accepted(&NfaViewRef::new(&n1))
        );
        prop_assert_eq!(
            lang::shortest_accepted(&Product::difference(NfaView::new(&n1), NfaView::new(&n2))),
            lang::shortest_accepted(&Product::difference(
                NfaViewRef::new(&n1),
                NfaViewRef::new(&n2)
            ))
        );

        // Materialization: identical tables, numbering, acceptance; and
        // `from_nfa` (bitset construction) matches both.
        let bitset = lang::materialize(&NfaView::new(&n1));
        let reference = lang::materialize(&NfaViewRef::new(&n1));
        let direct = Dfa::from_nfa(&n1);
        prop_assert_eq!(bitset.num_states(), reference.num_states());
        prop_assert_eq!(bitset.start(), reference.start());
        prop_assert_eq!(direct.num_states(), reference.num_states());
        prop_assert_eq!(direct.start(), reference.start());
        for q in 0..reference.num_states() {
            prop_assert_eq!(bitset.is_accepting(q), reference.is_accepting(q));
            prop_assert_eq!(direct.is_accepting(q), reference.is_accepting(q));
            for s in ab.symbols() {
                prop_assert_eq!(bitset.step(q, s), reference.step(q, s));
                prop_assert_eq!(direct.step(q, s), reference.step(q, s));
            }
        }
    }

    /// Marker-aware joint search (the generic 0-1 BFS of `ops`) returns
    /// identical witnesses whether the monitor runs on the bitset engine or
    /// the `BTreeSet` reference engine.
    #[test]
    fn joint_search_agrees_across_engines(
        r1 in arb_regex(),
        r2 in arb_regex(),
        marker in 0..NSYMS
    ) {
        use shelley_regular::lang::{NfaView, NfaViewRef};
        use shelley_regular::ops;
        use std::collections::BTreeSet;
        let ab = alphabet();
        let model = Nfa::from_regex(&r1, ab.clone());
        let spec = Nfa::from_regex(&r2, ab);
        let markers = BTreeSet::from([Symbol::from_index(marker)]);
        prop_assert_eq!(
            ops::shortest_joint_word(&model, &NfaView::new(&spec), &markers),
            ops::shortest_joint_word(&model, &NfaViewRef::new(&spec), &markers)
        );
        prop_assert_eq!(
            ops::projected_subset(&model, &NfaView::new(&spec), &markers),
            ops::projected_subset(&model, &NfaViewRef::new(&spec), &markers)
        );
    }
}

proptest! {
    /// The lazy language-view engine and the eager DFA algebra produce
    /// byte-identical answers: same subset verdicts, same witnesses, same
    /// shortest words, on every generated pair of regexes.
    #[test]
    fn lazy_engine_matches_eager_engine(r1 in arb_regex(), r2 in arb_regex()) {
        use shelley_regular::lang::{self, Complement, NfaView, Product};
        let ab = alphabet();
        let n1 = Nfa::from_regex(&r1, ab.clone());
        let n2 = Nfa::from_regex(&r2, ab.clone());
        let d1 = Dfa::from_nfa(&n1);
        let d2 = Dfa::from_nfa(&n2);

        // Subset checks: verdict AND witness must be byte-identical.
        prop_assert_eq!(
            lang::subset_of(&NfaView::new(&n1), &NfaView::new(&n2)),
            d1.subset_of(&d2)
        );

        // Boolean combinators: shortest accepted word must be identical to
        // the eager product construction's (both are shortlex-minimal).
        prop_assert_eq!(
            lang::shortest_accepted(&Product::intersection(NfaView::new(&n1), NfaView::new(&n2))),
            d1.intersect(&d2).shortest_accepted()
        );
        prop_assert_eq!(
            lang::shortest_accepted(&Product::union(NfaView::new(&n1), NfaView::new(&n2))),
            d1.union(&d2).shortest_accepted()
        );
        prop_assert_eq!(
            lang::shortest_accepted(&Product::difference(NfaView::new(&n1), NfaView::new(&n2))),
            d1.difference(&d2).shortest_accepted()
        );
        prop_assert_eq!(
            lang::shortest_accepted(&Complement::new(NfaView::new(&n1))),
            d1.complement().shortest_accepted()
        );
    }

    /// Materializing the lazy subset view reproduces eager subset
    /// construction exactly: same state numbering, same table, same
    /// acceptance — not merely an equivalent automaton.
    #[test]
    fn materialize_is_identical_to_subset_construction(r in arb_regex(), w in arb_word()) {
        use shelley_regular::lang::{self, NfaView};
        let ab = alphabet();
        let nfa = Nfa::from_regex(&r, ab.clone());
        let lazy = lang::materialize(&NfaView::new(&nfa));
        let eager = Dfa::from_nfa(&nfa);
        prop_assert_eq!(lazy.num_states(), eager.num_states());
        prop_assert_eq!(lazy.start(), eager.start());
        for q in 0..lazy.num_states() {
            prop_assert_eq!(lazy.is_accepting(q), eager.is_accepting(q));
            for s in ab.symbols() {
                prop_assert_eq!(lazy.step(q, s), eager.step(q, s));
            }
        }
        prop_assert_eq!(lazy.accepts(&w), r.matches(&w));
    }

    /// The lazy shortest-word search on a DFA view returns exactly what
    /// the DFA's own search returns (both shortlex-minimal, same
    /// tie-breaking).
    #[test]
    fn lazy_shortest_accepted_matches_dfa_search(r in arb_regex()) {
        use shelley_regular::lang;
        let ab = alphabet();
        let nfa = Nfa::from_regex(&r, ab.clone());
        let dfa = Dfa::from_nfa(&nfa);
        prop_assert_eq!(lang::shortest_accepted(&dfa), dfa.shortest_accepted());
        prop_assert_eq!(
            lang::shortest_accepted(&lang::NfaView::new(&nfa)),
            dfa.shortest_accepted()
        );
        prop_assert_eq!(lang::is_empty(&dfa), dfa.shortest_accepted().is_none());
    }

    /// State elimination recovers the same language.
    #[test]
    fn to_regex_roundtrip(r in arb_regex()) {
        let ab = alphabet();
        let nfa = Nfa::from_regex(&r, ab.clone());
        let recovered = nfa.to_regex();
        let d1 = Dfa::from_nfa(&nfa);
        let d2 = Dfa::from_nfa(&Nfa::from_regex(&recovered, ab));
        prop_assert!(d1.equivalent(&d2).is_ok());
    }

    /// DFA-to-regex after minimization also recovers the language.
    #[test]
    fn dfa_to_regex_roundtrip(r in arb_regex()) {
        let ab = alphabet();
        let dfa = Dfa::from_nfa(&Nfa::from_regex(&r, ab.clone())).minimize();
        let back = dfa.to_regex();
        let d2 = Dfa::from_nfa(&Nfa::from_regex(&back, ab));
        prop_assert!(dfa.equivalent(&d2).is_ok());
    }
}

proptest! {
    /// The antichain inclusion engine and the classic product search give
    /// the same verdict on every generated pair of languages, and when
    /// both find a violation the antichain's witness is exactly as short
    /// as the classic shortlex-minimal one and replays as a genuine
    /// counterexample (accepted by the model, rejected by the spec).
    #[test]
    fn antichain_subset_matches_classic(r1 in arb_regex(), r2 in arb_regex()) {
        use shelley_regular::lang::{self, NfaView};
        use shelley_regular::antichain;
        let ab = alphabet();
        let n1 = Nfa::from_regex(&r1, ab.clone());
        let n2 = Nfa::from_regex(&r2, ab);
        let classic = lang::subset_of(&NfaView::new(&n1), &NfaView::new(&n2));
        let pruned = antichain::subset_of(&NfaView::new(&n1), &NfaView::new(&n2));
        match (classic, pruned) {
            (Ok(()), Ok(())) => {}
            (Err(c), Err(p)) => {
                prop_assert_eq!(c.len(), p.len(), "witness lengths diverge");
                prop_assert!(n1.accepts(&p), "witness not in the model");
                prop_assert!(!n2.accepts(&p), "witness not outside the spec");
            }
            (c, p) => prop_assert!(false, "verdicts diverge: {:?} vs {:?}", c, p),
        }
    }

    /// Marker-aware inclusion: the antichain joint search agrees with the
    /// classic 0-1 BFS of `ops` on verdict and witness length, and its
    /// witnesses replay — the model accepts the word, the spec rejects its
    /// marker-erased projection.
    #[test]
    fn antichain_projected_matches_classic(
        r1 in arb_regex(),
        r2 in arb_regex(),
        marker in 0..NSYMS
    ) {
        use shelley_regular::lang::NfaView;
        use shelley_regular::{antichain, ops};
        use std::collections::BTreeSet;
        let ab = alphabet();
        let model = Nfa::from_regex(&r1, ab.clone());
        let spec = Nfa::from_regex(&r2, ab);
        let markers = BTreeSet::from([Symbol::from_index(marker)]);
        let classic = ops::projected_subset(&model, &NfaView::new(&spec), &markers);
        let pruned = antichain::projected_subset(&model, &NfaView::new(&spec), &markers);
        match (classic, pruned) {
            (Ok(()), Ok(())) => {}
            (Err(c), Err(p)) => {
                prop_assert_eq!(c.len(), p.len(), "witness lengths diverge");
                prop_assert!(model.accepts(&p), "witness not in the model");
                let stripped: Vec<Symbol> =
                    p.iter().copied().filter(|s| !markers.contains(s)).collect();
                prop_assert!(!spec.accepts(&stripped), "projection not outside the spec");
            }
            (c, p) => prop_assert!(false, "verdicts diverge: {:?} vs {:?}", c, p),
        }
    }

    /// The dense transition table embedded in every [`Dfa`] is a faithful
    /// mirror of the nested reference table, on the raw subset-construction
    /// automaton and on its minimized form alike: same stepping on every
    /// (state, symbol) pair, same acceptance bits, same start state.
    #[test]
    fn dense_table_matches_reference_table(r in arb_regex(), w in arb_word()) {
        let ab = alphabet();
        let dfa = Dfa::from_nfa(&Nfa::from_regex(&r, ab.clone()));
        for d in [&dfa, &dfa.minimize()] {
            let dense = d.dense();
            prop_assert_eq!(dense.num_states(), d.num_states());
            prop_assert_eq!(dense.start(), d.start());
            for q in 0..d.num_states() {
                prop_assert_eq!(dense.is_accepting(q), d.is_accepting(q));
                for s in ab.symbols() {
                    prop_assert_eq!(d.step(q, s), d.step_reference(q, s));
                    prop_assert_eq!(dense.step(q, s), d.step_reference(q, s));
                }
            }
        }
        prop_assert_eq!(dfa.accepts(&w), r.matches(&w));
    }
}
