//! The two daemon transports: a single stdio session and a Unix-socket
//! listener serving many concurrent clients.
//!
//! Both funnel every request through one [`Engine`] behind a mutex, so
//! concurrent clients serialize at the workspace — each one still sees
//! the warm caches left by all the others, which is the point of a
//! shared daemon. Replies for one request are fully buffered before
//! they are written, so a slow client never holds the engine lock.

use crate::engine::{Engine, Outcome};
use serde::json;
use shelley_core::{Reply, ReplyBody, Request};
use std::io::{self, BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// Reply `id` used when a request line is so malformed that no client id
/// could be recovered from it.
pub const MALFORMED_ID: u64 = 0;

/// Serves one session on stdin/stdout until `shutdown` or end of input,
/// then persists the cache (if one is attached).
pub fn serve_stdio(engine: Engine) -> io::Result<()> {
    let engine = Mutex::new(engine);
    let stop = AtomicBool::new(false);
    let stdin = io::stdin().lock();
    let stdout = io::stdout().lock();
    serve_connection(&engine, stdin, stdout, &stop)?;
    engine.lock().unwrap().persist()?;
    Ok(())
}

/// Binds `socket` and serves every connection on its own thread until a
/// client sends `shutdown`, then joins the workers, persists the cache,
/// and removes the socket file.
///
/// A stale socket file from a crashed daemon is removed before binding.
pub fn serve_socket(engine: Engine, socket: &Path) -> io::Result<()> {
    let _ = std::fs::remove_file(socket);
    let listener = UnixListener::bind(socket)?;
    let engine = Arc::new(Mutex::new(engine));
    let stop = Arc::new(AtomicBool::new(false));
    let mut workers = Vec::new();
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let stream = stream?;
        let engine = Arc::clone(&engine);
        let stop = Arc::clone(&stop);
        let wake = socket.to_path_buf();
        workers.push(std::thread::spawn(move || {
            let reader = match stream.try_clone() {
                Ok(clone) => BufReader::new(clone),
                Err(_) => return,
            };
            let _ = serve_connection(&engine, reader, stream, &stop);
            if stop.load(Ordering::SeqCst) {
                // Unblock the accept loop so it can observe the flag.
                let _ = UnixStream::connect(&wake);
            }
        }));
    }
    for worker in workers {
        let _ = worker.join();
    }
    engine.lock().unwrap().persist()?;
    let _ = std::fs::remove_file(socket);
    Ok(())
}

/// Reads newline-delimited requests from `reader` and writes the replies
/// to `writer` until `shutdown`, end of input, or an I/O error. Sets
/// `stop` when the client asked the whole daemon to shut down.
fn serve_connection(
    engine: &Mutex<Engine>,
    reader: impl BufRead,
    mut writer: impl Write,
    stop: &AtomicBool,
) -> io::Result<()> {
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let mut replies: Vec<Reply> = Vec::new();
        let outcome = match json::from_str::<Request>(&line) {
            Ok(request) => engine
                .lock()
                .unwrap()
                .handle(request, &mut |reply| replies.push(reply)),
            Err(e) => {
                replies.push(Reply {
                    id: MALFORMED_ID,
                    body: ReplyBody::Error {
                        message: format!("malformed request: {e}"),
                    },
                });
                Outcome::Continue
            }
        };
        for reply in &replies {
            writer.write_all(json::to_string(reply).as_bytes())?;
            writer.write_all(b"\n")?;
        }
        writer.flush()?;
        if outcome == Outcome::Shutdown {
            stop.store(true, Ordering::SeqCst);
            break;
        }
        // Another client may have shut the daemon down while this one
        // was blocked reading; stop serving stale sessions.
        if stop.load(Ordering::SeqCst) {
            break;
        }
    }
    Ok(())
}
