//! A thin protocol client: writes one request per line, collects the
//! replies that answer it. `shelleyc watch` and `shelleyc connect` are
//! both built on this.

use serde::json;
use shelley_core::api::CheckSummary;
use shelley_core::{Backend, Method, Reply, ReplyBody, Request, WorkspaceStats, PROTOCOL_VERSION};
use std::io::{self, BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::Path;

/// A connected protocol client over any line-oriented transport.
pub struct Client<R, W> {
    reader: R,
    writer: W,
    next_id: u64,
}

impl Client<BufReader<UnixStream>, UnixStream> {
    /// Connects to a daemon's Unix socket.
    pub fn connect(socket: &Path) -> io::Result<Self> {
        let stream = UnixStream::connect(socket)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client::new(reader, stream))
    }
}

impl<R: BufRead, W: Write> Client<R, W> {
    /// Wraps an already-connected reader/writer pair.
    pub fn new(reader: R, writer: W) -> Self {
        Client {
            reader,
            writer,
            next_id: 1,
        }
    }

    /// Sends one request and collects every reply up to and including
    /// the final one (anything that is not a streamed `batch`).
    pub fn call(&mut self, method: Method) -> io::Result<Vec<ReplyBody>> {
        let id = self.next_id;
        self.next_id += 1;
        let line = json::to_string(&Request { id, method });
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;

        let mut bodies = Vec::new();
        loop {
            let mut line = String::new();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(protocol_error("server closed the connection"));
            }
            if line.trim().is_empty() {
                continue;
            }
            let reply: Reply = json::from_str(line.trim_end())
                .map_err(|e| protocol_error(&format!("unparseable reply: {e}")))?;
            if reply.id != id {
                return Err(protocol_error(&format!(
                    "reply for request {} while waiting for {id}",
                    reply.id
                )));
            }
            let done = !matches!(reply.body, ReplyBody::Batch { .. });
            bodies.push(reply.body);
            if done {
                return Ok(bodies);
            }
        }
    }

    /// Performs the version handshake, failing on a mismatched server.
    pub fn hello(&mut self) -> io::Result<()> {
        match self.call(Method::Hello {
            version: PROTOCOL_VERSION,
        })? {
            bodies if matches!(bodies.last(), Some(ReplyBody::Hello { .. })) => Ok(()),
            bodies => Err(reply_error(&bodies)),
        }
    }

    /// Opens (or replaces) one file in the daemon's workspace.
    pub fn open(&mut self, path: impl Into<String>, text: impl Into<String>) -> io::Result<()> {
        match self.call(Method::Open {
            path: path.into(),
            text: text.into(),
        })? {
            bodies if matches!(bodies.last(), Some(ReplyBody::Ok)) => Ok(()),
            bodies => Err(reply_error(&bodies)),
        }
    }

    /// Switches the daemon's recovery mode and claim-checking backend
    /// (see [`Workspace::set_recover`](shelley_core::Workspace::set_recover)
    /// and [`Workspace::set_backend`](shelley_core::Workspace::set_backend)).
    pub fn configure(&mut self, recover: bool, backend: Backend) -> io::Result<()> {
        match self.call(Method::Configure { recover, backend })? {
            bodies if matches!(bodies.last(), Some(ReplyBody::Ok)) => Ok(()),
            bodies => Err(reply_error(&bodies)),
        }
    }

    /// Runs one verification round, returning the final summary (any
    /// streamed batches are folded away — use [`call`](Self::call) to
    /// observe them).
    pub fn check(&mut self) -> io::Result<CheckSummary> {
        match self.call(Method::Check)?.pop() {
            Some(ReplyBody::Check { summary }) => Ok(summary),
            Some(body) => Err(reply_error(&[body])),
            None => Err(protocol_error("empty reply to check")),
        }
    }

    /// Fetches the daemon's workspace statistics: lifetime totals and the
    /// most recent round, antichain inclusion-engine counters included.
    pub fn stats(&mut self) -> io::Result<(WorkspaceStats, WorkspaceStats)> {
        match self.call(Method::Stats)?.pop() {
            Some(ReplyBody::Stats { totals, last_round }) => Ok((totals, last_round)),
            Some(body) => Err(reply_error(&[body])),
            None => Err(protocol_error("empty reply to stats")),
        }
    }

    /// Asks the daemon to persist its cache and stop.
    pub fn shutdown(&mut self) -> io::Result<()> {
        match self.call(Method::Shutdown)? {
            bodies if matches!(bodies.last(), Some(ReplyBody::Ok)) => Ok(()),
            bodies => Err(reply_error(&bodies)),
        }
    }
}

fn protocol_error(message: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message.to_string())
}

fn reply_error(bodies: &[ReplyBody]) -> io::Error {
    let message = match bodies.last() {
        Some(ReplyBody::Error { message }) => message.clone(),
        other => format!("unexpected reply: {other:?}"),
    };
    io::Error::other(message)
}
