//! # shelley-daemon
//!
//! The long-lived verification server behind `shelleyc serve`, plus the
//! thin client used by `shelleyc watch` and `shelleyc connect`.
//!
//! A daemon hosts one shared [`shelley_core::Workspace`] — with all of
//! its fingerprint caches — behind the newline-delimited JSON protocol
//! defined in [`shelley_core::api`]: one [`Request`](shelley_core::Request)
//! per line in, one or more [`Reply`](shelley_core::Reply) lines out,
//! every reply echoing the request's `id`. A `check` request streams one
//! `batch` reply per file that has diagnostics before the final `check`
//! summary, so editors can surface results as they arrive.
//!
//! Two transports share the same [`Engine`]:
//!
//! - **stdio** ([`serve_stdio`]) — a single session on stdin/stdout, the
//!   editor-subprocess shape;
//! - **Unix socket** ([`serve_socket`]) — many concurrent clients, one
//!   thread per connection, all funnelled through the one workspace so
//!   every client benefits from every other client's warm caches.
//!
//! Between restarts the engine persists its verify-stage products through
//! [`shelley_core::persist`]: the cache is loaded on startup and saved on
//! `shutdown` (and on end-of-input), so a restarted daemon re-verifies
//! only what actually changed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod engine;
pub mod server;

pub use client::Client;
pub use engine::{Engine, Outcome};
pub use server::{serve_socket, serve_stdio};
