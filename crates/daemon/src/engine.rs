//! The transport-independent request handler.
//!
//! [`Engine`] owns the shared [`Workspace`] and turns one [`Request`]
//! into a stream of [`Reply`] values through a caller-provided sink —
//! the same code path whether requests arrive over stdio, a Unix
//! socket, or (as in `shelleyc watch`) an in-process call.

use micropython_parser::SourceFile;
use shelley_core::api::{CheckSummary, ParseFailure, SERVER_NAME};
use shelley_core::persist::LoadOutcome;
use shelley_core::{
    Checker, Method, Reply, ReplyBody, Request, WireDiagnostic, Workspace, PROTOCOL_VERSION,
};
use std::collections::BTreeMap;
use std::path::PathBuf;

/// What the transport should do after a request has been answered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Keep reading requests.
    Continue,
    /// The client asked for `shutdown`: stop serving.
    Shutdown,
}

/// One verification engine: the shared workspace, the text of every open
/// file (kept for resolving diagnostic positions), and the optional
/// on-disk cache location.
pub struct Engine {
    workspace: Workspace,
    files: BTreeMap<String, String>,
    cache_path: Option<PathBuf>,
}

impl Engine {
    /// Creates an engine with no persistent cache.
    pub fn new(checker: Checker) -> Self {
        Engine {
            workspace: checker.into_workspace(),
            files: BTreeMap::new(),
            cache_path: None,
        }
    }

    /// Attaches a persistent cache: loads whatever `path` holds now (a
    /// missing or corrupt file degrades to an empty cache) and remembers
    /// the path for [`persist`](Self::persist). Returns what the load
    /// recovered so callers can report it.
    pub fn with_cache(mut self, path: impl Into<PathBuf>) -> (Self, LoadOutcome) {
        let path = path.into();
        let outcome = self.workspace.load_disk_cache(&path);
        self.cache_path = Some(path);
        (self, outcome)
    }

    /// Saves the verify cache to the attached path, if any. Returns the
    /// number of records written.
    pub fn persist(&self) -> std::io::Result<Option<usize>> {
        match &self.cache_path {
            Some(path) => self.workspace.save_disk_cache(path).map(Some),
            None => Ok(None),
        }
    }

    /// Answers one request, pushing every reply (in wire order) through
    /// `emit`.
    pub fn handle(&mut self, request: Request, emit: &mut dyn FnMut(Reply)) -> Outcome {
        let id = request.id;
        let mut reply = |body| emit(Reply { id, body });
        match request.method {
            Method::Hello { version } => {
                if version == PROTOCOL_VERSION {
                    reply(ReplyBody::Hello {
                        version: PROTOCOL_VERSION,
                        server: SERVER_NAME.to_string(),
                    });
                } else {
                    reply(ReplyBody::Error {
                        message: format!(
                            "protocol version mismatch: client speaks {version}, \
                             server speaks {PROTOCOL_VERSION}"
                        ),
                    });
                }
            }
            Method::Open { path, text } | Method::Change { path, text } => {
                self.workspace.set_file(path.clone(), text.clone());
                self.files.insert(path, text);
                reply(ReplyBody::Ok);
            }
            Method::Close { path } => {
                self.workspace.remove_file(&path);
                self.files.remove(&path);
                reply(ReplyBody::Ok);
            }
            Method::Configure { recover, backend } => {
                self.workspace.set_recover(recover);
                self.workspace.set_backend(backend);
                reply(ReplyBody::Ok);
            }
            Method::Check => self.run_check(id, emit),
            Method::Stats => {
                reply(ReplyBody::Stats {
                    totals: self.workspace.stats().clone(),
                    last_round: self.workspace.last_round().clone(),
                });
            }
            Method::Shutdown => {
                match self.persist() {
                    Ok(_) => reply(ReplyBody::Ok),
                    Err(e) => reply(ReplyBody::Error {
                        message: format!("cache save failed: {e}"),
                    }),
                }
                return Outcome::Shutdown;
            }
        }
        Outcome::Continue
    }

    /// Runs one verification round: streams a `batch` per file that has
    /// diagnostics (project-level diagnostics batch under `file: None`),
    /// then the final `check` summary.
    fn run_check(&mut self, id: u64, emit: &mut dyn FnMut(Reply)) {
        match self.workspace.check() {
            Ok(checked) => {
                // Group diagnostics by file in first-appearance order —
                // the report is already normalized, so this order is
                // deterministic across runs and job counts.
                let mut sources: BTreeMap<&str, SourceFile> = BTreeMap::new();
                let mut order: Vec<Option<String>> = Vec::new();
                let mut groups: BTreeMap<Option<String>, Vec<WireDiagnostic>> = BTreeMap::new();
                for d in checked.report.diagnostics.iter() {
                    let source = match d.file.as_deref().map(|n| (n, self.files.get(n))) {
                        Some((name, Some(text))) => Some(
                            &*sources
                                .entry(name)
                                .or_insert_with(|| SourceFile::new(name, text.clone())),
                        ),
                        _ => None,
                    };
                    let wire = WireDiagnostic::new(d, source);
                    let key = wire.file.clone();
                    if !groups.contains_key(&key) {
                        order.push(key.clone());
                    }
                    groups.entry(key).or_default().push(wire);
                }
                for key in order {
                    let diagnostics = groups.remove(&key).unwrap_or_default();
                    emit(Reply {
                        id,
                        body: ReplyBody::Batch {
                            file: key,
                            diagnostics,
                        },
                    });
                }
                let summary = CheckSummary::new(&checked, self.workspace.last_round().clone());
                emit(Reply {
                    id,
                    body: ReplyBody::Check { summary },
                });
            }
            Err(e) => {
                let source = self.files.get(&e.file).map(String::as_str);
                let failure = ParseFailure::new(&e, source);
                let summary =
                    CheckSummary::from_parse_error(failure, self.workspace.last_round().clone());
                emit(Reply {
                    id,
                    body: ReplyBody::Check { summary },
                });
            }
        }
    }
}
