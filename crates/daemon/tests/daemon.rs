//! End-to-end daemon tests: concurrent socket clients, warm restarts
//! through the persistent cache, and protocol error handling.

use shelley_core::{Checker, Method, Reply, ReplyBody, Request, PROTOCOL_VERSION};
use shelley_daemon::{serve_socket, Client, Engine, Outcome};
use std::path::PathBuf;

const VALVE_PY: &str = r#"
@sys
class Valve:
    @op_initial
    def test(self):
        if ok:
            return ["open"]
        else:
            return ["clean"]

    @op
    def open(self):
        return ["close"]

    @op_final
    def close(self):
        return ["test"]

    @op_final
    def clean(self):
        return ["test"]
"#;

const SECTOR_PY: &str = r#"
@sys(["a"])
class Sector:
    def __init__(self):
        self.a = Valve()

    @op_initial_final
    def water(self):
        match self.a.test():
            case ["open"]:
                self.a.open()
                self.a.close()
                return []
            case ["clean"]:
                self.a.clean()
                return []
"#;

const BAD_PY: &str = r#"
@sys(["v"])
class Misuser:
    def __init__(self):
        self.v = Valve()

    @op_initial_final
    def slam(self):
        match self.v.test():
            case ["open"]:
                self.v.open()
                return []
            case ["clean"]:
                self.v.clean()
                return []
"#;

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("shelley-daemon-{}-{name}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// What a one-shot `shelleyc check` of the same files prints.
fn one_shot_render(files: &[(&str, &str)]) -> String {
    let project: Vec<shelley_core::ProjectFile> = files
        .iter()
        .map(|(name, text)| shelley_core::ProjectFile::new(*name, *text))
        .collect();
    let checked = Checker::new().check_files(&project).unwrap();
    let mut out = checked.report.render(None);
    if checked.report.passed() {
        out.push_str(&format!(
            "OK: {} system(s) verified\n",
            checked.systems.len()
        ));
    }
    out
}

#[test]
fn concurrent_socket_clients_match_the_one_shot_check() {
    let dir = temp_dir("concurrent");
    let socket = dir.join("daemon.sock");
    let cache = dir.join("cache.ndjson");
    let engine = Engine::new(Checker::new().jobs(2));
    let (engine, _) = engine.with_cache(&cache);
    let server = {
        let socket = socket.clone();
        std::thread::spawn(move || serve_socket(engine, &socket))
    };
    while !socket.exists() {
        std::thread::yield_now();
    }

    let reference = one_shot_render(&[("valve.py", VALVE_PY), ("sector.py", SECTOR_PY)]);
    let clients: Vec<_> = (0..4)
        .map(|_| {
            let socket = socket.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&socket).unwrap();
                client.hello().unwrap();
                client.open("valve.py", VALVE_PY).unwrap();
                client.open("sector.py", SECTOR_PY).unwrap();
                client.check().unwrap().render_text()
            })
        })
        .collect();
    for client in clients {
        assert_eq!(client.join().unwrap(), reference);
    }

    let mut closer = Client::connect(&socket).unwrap();
    closer.shutdown().unwrap();
    server.join().unwrap().unwrap();
    assert!(!socket.exists(), "socket file is cleaned up");
    assert!(cache.exists(), "shutdown persisted the cache");

    // A restarted daemon answers from the persisted cache: every class
    // verifies via a disk hit, and the report is still byte-identical.
    let (engine, outcome) = Engine::new(Checker::new().jobs(2)).with_cache(&cache);
    assert!(outcome.rejected.is_none(), "{:?}", outcome.rejected);
    assert_eq!(outcome.entries.len(), 2);
    let server = {
        let socket = socket.clone();
        std::thread::spawn(move || serve_socket(engine, &socket))
    };
    while !socket.exists() {
        std::thread::yield_now();
    }
    let mut client = Client::connect(&socket).unwrap();
    client.hello().unwrap();
    client.open("valve.py", VALVE_PY).unwrap();
    client.open("sector.py", SECTOR_PY).unwrap();
    let summary = client.check().unwrap();
    assert_eq!(summary.render_text(), reference);
    assert_eq!(summary.stats.verify_disk_hits, 2, "warm restart");
    client.shutdown().unwrap();
    server.join().unwrap().unwrap();
}

#[test]
fn a_corrupted_cache_degrades_to_a_cold_start() {
    let dir = temp_dir("corrupt");
    let cache = dir.join("cache.ndjson");
    std::fs::write(&cache, "this is not a cache file\nat all\n").unwrap();

    let (mut engine, outcome) = Engine::new(Checker::new().jobs(1)).with_cache(&cache);
    assert!(outcome.rejected.is_some(), "garbage is rejected wholesale");

    // The engine still verifies normally...
    let mut replies = Vec::new();
    engine.handle(
        Request {
            id: 1,
            method: Method::Open {
                path: "valve.py".into(),
                text: VALVE_PY.into(),
            },
        },
        &mut |r| replies.push(r),
    );
    let outcome = engine.handle(
        Request {
            id: 2,
            method: Method::Check,
        },
        &mut |r| replies.push(r),
    );
    assert_eq!(outcome, Outcome::Continue);
    match replies.last() {
        Some(Reply {
            id: 2,
            body: ReplyBody::Check { summary },
        }) => assert!(summary.passed),
        other => panic!("expected a check reply, got {other:?}"),
    }

    // ...and shutdown overwrites the garbage with a loadable cache.
    let outcome = engine.handle(
        Request {
            id: 3,
            method: Method::Shutdown,
        },
        &mut |r| replies.push(r),
    );
    assert_eq!(outcome, Outcome::Shutdown);
    let reloaded = shelley_core::persist::load(&cache);
    assert!(reloaded.rejected.is_none(), "{:?}", reloaded.rejected);
    assert_eq!(reloaded.entries.len(), 1);
}

#[test]
fn check_streams_per_file_batches_before_the_summary() {
    let mut engine = Engine::new(Checker::new().jobs(1));
    let mut replies = Vec::new();
    let mut emit = |r: Reply| replies.push(r);
    engine.handle(
        Request {
            id: 1,
            method: Method::Open {
                path: "valve.py".into(),
                text: VALVE_PY.into(),
            },
        },
        &mut emit,
    );
    engine.handle(
        Request {
            id: 2,
            method: Method::Open {
                path: "bad.py".into(),
                text: BAD_PY.into(),
            },
        },
        &mut emit,
    );
    engine.handle(
        Request {
            id: 3,
            method: Method::Check,
        },
        &mut emit,
    );

    let check_replies: Vec<_> = replies.iter().filter(|r| r.id == 3).collect();
    assert!(
        check_replies.len() >= 2,
        "at least one batch plus the summary: {check_replies:?}"
    );
    match &check_replies[0].body {
        ReplyBody::Batch { diagnostics, .. } => {
            assert!(!diagnostics.is_empty());
            assert!(diagnostics.iter().any(|d| d.code == "E100"));
        }
        other => panic!("expected a batch first, got {other:?}"),
    }
    match &check_replies[check_replies.len() - 1].body {
        ReplyBody::Check { summary } => {
            assert!(!summary.passed);
            assert_eq!(summary.usage_violations.len(), 1);
        }
        other => panic!("expected the summary last, got {other:?}"),
    }
}

#[test]
fn hello_rejects_a_future_protocol_version() {
    let mut engine = Engine::new(Checker::new());
    let mut replies = Vec::new();
    engine.handle(
        Request {
            id: 7,
            method: Method::Hello {
                version: PROTOCOL_VERSION + 1,
            },
        },
        &mut |r| replies.push(r),
    );
    match replies.as_slice() {
        [Reply {
            id: 7,
            body: ReplyBody::Error { message },
        }] => assert!(message.contains("version mismatch"), "{message}"),
        other => panic!("expected an error reply, got {other:?}"),
    }
}

#[test]
fn configure_switches_recovery_mode_mid_session() {
    let mut engine = Engine::new(Checker::new().jobs(1));
    let mut replies = Vec::new();
    // One statement of `broken.py` is outside the grammar: a strict
    // check fails to parse, then `configure {recover: true}` turns the
    // same open file into a degraded-but-verifiable module.
    let text = VALVE_PY.replace(
        "    @op\n    def open(self):\n",
        "    @op\n    def open(self):\n        x = = 1\n",
    );
    engine.handle(
        Request {
            id: 1,
            method: Method::Open {
                path: "broken.py".into(),
                text,
            },
        },
        &mut |r| replies.push(r),
    );
    engine.handle(
        Request {
            id: 2,
            method: Method::Check,
        },
        &mut |r| replies.push(r),
    );
    match replies.last() {
        Some(Reply {
            body: ReplyBody::Check { summary },
            ..
        }) => {
            assert!(!summary.passed);
            assert!(summary.parse_error.is_some());
        }
        other => panic!("expected a failed summary, got {other:?}"),
    }

    engine.handle(
        Request {
            id: 3,
            method: Method::Configure {
                recover: true,
                backend: shelley_core::Backend::Auto,
            },
        },
        &mut |r| replies.push(r),
    );
    assert!(matches!(
        replies.last(),
        Some(Reply {
            id: 3,
            body: ReplyBody::Ok
        })
    ));
    engine.handle(
        Request {
            id: 4,
            method: Method::Check,
        },
        &mut |r| replies.push(r),
    );
    let check_replies: Vec<_> = replies.iter().filter(|r| r.id == 4).collect();
    match &check_replies[check_replies.len() - 1].body {
        ReplyBody::Check { summary } => {
            assert!(summary.passed, "degraded statement no longer fatal");
            assert!(summary.parse_error.is_none());
        }
        other => panic!("expected the summary last, got {other:?}"),
    }
    // The degraded span surfaces as a W014 warning batch.
    assert!(
        check_replies.iter().any(|r| matches!(
            &r.body,
            ReplyBody::Batch { diagnostics, .. }
                if diagnostics.iter().any(|d| d.code == "W014")
        )),
        "{check_replies:?}"
    );
}

#[test]
fn parse_errors_surface_as_a_failed_summary_with_position() {
    let mut engine = Engine::new(Checker::new());
    let mut replies = Vec::new();
    let mut emit = |r: Reply| replies.push(r);
    engine.handle(
        Request {
            id: 1,
            method: Method::Open {
                path: "broken.py".into(),
                text: "def broken(:\n".into(),
            },
        },
        &mut emit,
    );
    engine.handle(
        Request {
            id: 2,
            method: Method::Check,
        },
        &mut emit,
    );
    match replies.last() {
        Some(Reply {
            body: ReplyBody::Check { summary },
            ..
        }) => {
            assert!(!summary.passed);
            let failure = summary.parse_error.as_ref().expect("parse error");
            assert_eq!(failure.file, "broken.py");
            assert_eq!(failure.line, Some(1));
            assert!(failure.render_text().starts_with("broken.py: syntax error"));
        }
        other => panic!("expected a check reply, got {other:?}"),
    }
}
