//! Shared workload generators for the benchmark harness.
//!
//! Every bench regenerates one artifact of the paper (see `DESIGN.md`'s
//! per-experiment index); the generators here produce the synthetic
//! MicroPython sources and calculus programs the sweeps run over.

use std::fmt::Write as _;

/// The paper's Listing 2.1 + 2.2 (Valve + BadSector), verbatim modulo the
/// `clean` field rename.
pub const PAPER_SOURCE: &str = r#"
@sys
class Valve:
    def __init__(self):
        self.control = Pin(27, OUT)
        self.clean_pin = Pin(28, OUT)
        self.status = Pin(29, IN)

    @op_initial
    def test(self):
        if self.status.value():
            return ["open"]
        else:
            return ["clean"]

    @op
    def open(self):
        self.control.on()
        return ["close"]

    @op_final
    def close(self):
        self.control.off()
        return ["test"]

    @op_final
    def clean(self):
        self.clean_pin.on()
        return ["test"]

@claim("(!a.open) W b.open")
@sys(["a", "b"])
class BadSector:
    def __init__(self):
        self.a = Valve()
        self.b = Valve()

    @op_initial_final
    def open_a(self):
        match self.a.test():
            case ["open"]:
                self.a.open()
                return ["open_b"]
            case ["clean"]:
                self.a.clean()
                print("a failed")
                return []

    @op_final
    def open_b(self):
        match self.b.test():
            case ["open"]:
                self.b.open()
                self.a.close()
                self.b.close()
                return []
            case ["clean"]:
                self.b.clean()
                print("b failed")
                self.a.close()
                return []
"#;

/// The Sector class of Listing 3.1 as annotated source.
pub const SECTOR_SOURCE: &str = r#"
@sys
class Sector:
    @op_initial
    def open_a(self):
        if which:
            return ["close_a", "open_b"]
        else:
            return ["clean_a"]

    @op
    def clean_a(self):
        return ["open_a"]

    @op
    def close_a(self):
        return ["open_a"]

    @op_final
    def open_b(self):
        if which:
            return []
        else:
            return []
"#;

/// A base class whose protocol is a chain `s0 → … → s{n-1}` (last final,
/// looping back to `s0`).
pub fn chain_class(name: &str, n: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "@sys\nclass {name}:");
    for i in 0..n {
        let decorator = if n == 1 {
            "@op_initial_final"
        } else if i == 0 {
            "@op_initial"
        } else if i == n - 1 {
            "@op_final"
        } else {
            "@op"
        };
        let next = if i == n - 1 {
            "[\"s0\"]".to_string()
        } else {
            format!("[\"s{}\"]", i + 1)
        };
        let _ = writeln!(out, "    {decorator}");
        let _ = writeln!(out, "    def s{i}(self):");
        let _ = writeln!(out, "        return {next}");
        let _ = writeln!(out);
    }
    out
}

/// A composite driving `k` chain instances through one full round each.
pub fn driver_class(k: usize, n: usize) -> String {
    let fields: Vec<String> = (0..k).map(|i| format!("c{i}")).collect();
    let quoted: Vec<String> = fields.iter().map(|f| format!("\"{f}\"")).collect();
    let mut out = String::new();
    let _ = writeln!(out, "@sys([{}])", quoted.join(", "));
    let _ = writeln!(out, "class Driver:");
    let _ = writeln!(out, "    def __init__(self):");
    for f in &fields {
        let _ = writeln!(out, "        self.{f} = Chain()");
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "    @op_initial_final");
    let _ = writeln!(out, "    def run(self):");
    for f in &fields {
        for i in 0..n {
            let _ = writeln!(out, "        self.{f}.s{i}()");
        }
    }
    let _ = writeln!(out, "        return []");
    out
}

/// A complete module: one chain class plus a `k`-subsystem driver.
pub fn chain_system(k: usize, n: usize) -> String {
    format!("{}\n{}", chain_class("Chain", n), driver_class(k, n))
}

/// A module with `n` operations exercising every Table 1 annotation.
pub fn annotation_module(n: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "@claim(\"G !x.boom\")");
    let _ = writeln!(out, "@sys");
    let _ = writeln!(out, "class Annotated:");
    for i in 0..n.max(2) {
        let decorator = match i % 4 {
            0 => "@op_initial",
            1 => "@op",
            2 => "@op_final",
            _ => "@op_initial_final",
        };
        let next = format!("[\"m{}\"]", (i + 1) % n.max(2));
        let _ = writeln!(out, "    {decorator}");
        let _ = writeln!(out, "    def m{i}(self):");
        let _ = writeln!(out, "        return {next}");
        let _ = writeln!(out);
    }
    out
}

/// A module whose single class uses every return form of Table 2, `reps`
/// times over.
pub fn return_forms_module(reps: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "class Forms:");
    for i in 0..reps {
        let _ = writeln!(out, "    def list_{i}(self):");
        let _ = writeln!(out, "        return [\"a\", \"b\"]");
        let _ = writeln!(out, "    def tuple_int_{i}(self):");
        let _ = writeln!(out, "        return [\"a\"], 2");
        let _ = writeln!(out, "    def tuple_bool_{i}(self):");
        let _ = writeln!(out, "        return [\"a\"], True");
        let _ = writeln!(out, "    def tuple_multi_{i}(self):");
        let _ = writeln!(out, "        return [\"a\", \"b\"], 2");
        let _ = writeln!(out, "    def empty_{i}(self):");
        let _ = writeln!(out, "        return []");
    }
    out
}

/// A file-per-class project of `classes` classes: even indices are base
/// chain classes (`Base{i}`), odd indices are composites (`Comp{i}`)
/// driving the preceding base class through one full protocol round. The
/// shape exercises the workspace's dependency fingerprints: editing
/// `base{i}.py` invalidates exactly `Base{i}` and `Comp{i+1}`.
pub fn generated_project(classes: usize) -> Vec<(String, String)> {
    (0..classes)
        .map(|i| {
            if i % 2 == 0 {
                (format!("base{i}.py"), chain_class(&format!("Base{i}"), 3))
            } else {
                let dep = format!("Base{}", i - 1);
                let mut out = String::new();
                let _ = writeln!(out, "@sys([\"c\"])");
                let _ = writeln!(out, "class Comp{i}:");
                let _ = writeln!(out, "    def __init__(self):");
                let _ = writeln!(out, "        self.c = {dep}()");
                let _ = writeln!(out);
                let _ = writeln!(out, "    @op_initial_final");
                let _ = writeln!(out, "    def run(self):");
                for op in 0..3 {
                    let _ = writeln!(out, "        self.c.s{op}()");
                }
                let _ = writeln!(out, "        return []");
                (format!("comp{i}.py"), out)
            }
        })
        .collect()
}

/// The serve-bench workspace: a file-per-class project of `classes`
/// classes dominated by verification cost, the workload the persistent
/// cache is designed for.
///
/// One device protocol (`boot → work → stop`) per twenty classes; the
/// rest are single-operation apps, each driving one device through a
/// full round and carrying an LTLf claim. Every second app detours
/// through a `while`/`break` loop whose jump makes the typestate
/// analysis bail to ⊤, forcing the full language-inclusion check — so a
/// fresh verify pays lints + typestate + inclusion + claim checking, all
/// of which a warm restart restores from disk.
pub fn serve_project(classes: usize) -> Vec<(String, String)> {
    let bases = (classes / 20).max(1);
    let apps = classes.saturating_sub(bases);
    let mut files = Vec::with_capacity(classes);
    for k in 0..bases {
        files.push((
            format!("dev{k}.py"),
            format!(
                "@sys\nclass Dev{k}:\n    @op_initial\n    def boot(self):\n        \
                 return [\"work\"]\n\n    @op\n    def work(self):\n        \
                 return [\"stop\"]\n\n    @op_final\n    def stop(self):\n        \
                 return []\n"
            ),
        ));
    }
    for i in 0..apps {
        let k = i % bases;
        let body = if i % 2 == 1 {
            "        self.d.boot()\n        self.d.work()\n        \
             while retry:\n            break\n        self.d.stop()\n        return []\n"
        } else {
            "        self.d.boot()\n        self.d.work()\n        \
             self.d.stop()\n        return []\n"
        };
        files.push((
            format!("app{i}.py"),
            format!(
                "@claim(\"(!d.stop) W d.boot\")\n@sys([\"d\"])\nclass App{i}:\n    \
                 def __init__(self):\n        self.d = Dev{k}()\n\n    \
                 @op_initial_final\n    def run(self):\n{body}"
            ),
        ));
    }
    files
}

/// A deterministic "real-world" corpus of `n` MicroPython files for the
/// `shelleyc corpus` rate harness.
///
/// The bulk of the corpus is valid annotated code written in the wider
/// grammar the recovering front end accepts — `try`/`except`/`finally`,
/// `with`, `async def`/`await`, f-strings, comprehensions, lambdas,
/// augmented assignment, star arguments — arranged so every `@sys` class
/// extracts and verifies. Two deterministic defect streams are mixed in
/// (one file in fifty each):
///
/// * **broken syntax** (`i % 50 == 7`): one statement is outside even the
///   recovering grammar, so recovery degrades it (`W014`) and the file
///   counts against the *parse* rate;
/// * **spec errors** (`i % 50 == 23`): syntactically fine, but the `@sys`
///   class has no `@op_initial`, so extraction fails (`E006`) and the
///   file counts against the *extract* rate.
///
/// With `n = 200` that yields 98% parse / 98% extract — comfortably above
/// the CI gates (95/90) while keeping both failure paths exercised.
pub fn realworld_corpus(n: usize) -> Vec<(String, String)> {
    (0..n)
        .map(|i| {
            let source = match i % 50 {
                7 => broken_syntax_case(i),
                23 => spec_error_case(i),
                _ => realworld_case(i),
            };
            (format!("case{i:04}.py"), source)
        })
        .collect()
}

/// A valid file in the wider grammar; rotates through four templates.
fn realworld_case(i: usize) -> String {
    match i % 4 {
        0 => format!(
            "@sys\nclass Logger{i}:\n    def __init__(self):\n        \
             self.path = \"dev.log\"\n        self.count = 0\n\n    \
             @op_initial\n    def start(self):\n        self.count += 1\n        \
             with open(self.path) as fh:\n            \
             fh.write(f\"start {{n}}\")\n        return [\"stop\"]\n\n    \
             @op_final\n    def stop(self):\n        \
             names = [p for p in pins if p]\n        return [\"start\"]\n"
        ),
        1 => format!(
            "@sys\nclass Link{i}:\n    @op_initial\n    async def connect(self):\n        \
             await socket.open()\n        return [\"send\", \"close\"]\n\n    \
             @op\n    async def send(self):\n        \
             try:\n            payload = bytes(data)\n        \
             except ValueError as e:\n            \
             raise RuntimeError(\"encode\") from e\n        finally:\n            \
             led.off()\n        return [\"send\", \"close\"]\n\n    \
             @op_final\n    def close(self):\n        return [\"connect\"]\n"
        ),
        2 => format!(
            "{}\n@sys([\"v\"])\nclass Ctrl{i}:\n    def __init__(self):\n        \
             self.v = Valve{i}()\n        self.key = lambda p: p.value()\n\n    \
             @op_initial_final\n    def cycle(self):\n        \
             self.v.s0()\n        self.v.s1()\n        self.v.s2()\n        \
             log(*events, sep=\"\\n\")\n        return []\n",
            chain_class(&format!("Valve{i}"), 3)
        ),
        _ => format!(
            "class Helper{i}(Base, mixin.Timed):\n    def fmt(self, *args, **kwargs):\n        \
             total = {{k: v for k, v in kwargs.items()}}\n        \
             return f\"args {{n}}\"\n\n@sys\nclass Pump{i}:\n    \
             @op_initial\n    def prime(self):\n        \
             rate = sum(r * 2 for r in rates)\n        rate //= 3\n        \
             return [\"run\"]\n\n    @op_final\n    def run(self):\n        \
             return [\"prime\"]\n"
        ),
    }
}

/// Valid class shape, one statement outside even the recovering grammar.
fn broken_syntax_case(i: usize) -> String {
    format!(
        "@sys\nclass Flaky{i}:\n    @op_initial_final\n    def ping(self):\n        \
         x = = {i}\n        return []\n"
    )
}

/// Parses cleanly, but the `@sys` class has no `@op_initial` (`E006`).
fn spec_error_case(i: usize) -> String {
    format!(
        "@sys\nclass Orphan{i}:\n    @op_final\n    def halt(self):\n        \
         return []\n"
    )
}

/// The adversarial workload for the `lang_views` bench: the claim
/// `F a0 & F a1 & ... & F a{n-1}` paired with a tiny model that only ever
/// emits `a0`.
///
/// The negated claim `G !a0 | ... | G !a{n-1}` has one reachable monitor
/// state per subset of still-alive disjuncts — ~`2^n` states under eager
/// compilation — while the model's traces progress only a handful of them.
/// This is exactly the separation the lazy language views exploit: the
/// joint search visits O(trace length) product states instead of paying
/// for the full monitor up front.
pub fn adversarial_claim(
    n: usize,
) -> (
    std::sync::Arc<shelley_regular::Alphabet>,
    shelley_ltlf::Formula,
    shelley_regular::Nfa,
) {
    use shelley_ltlf::Formula;
    use shelley_regular::{Alphabet, Nfa, Regex};
    let mut ab = Alphabet::new();
    let syms: Vec<_> = (0..n).map(|i| ab.intern(&format!("a{i}"))).collect();
    let ab = std::sync::Arc::new(ab);
    let claim = syms
        .iter()
        .map(|&s| Formula::eventually(Formula::atom(s)))
        .reduce(Formula::and)
        .expect("n >= 1");
    // `a0*`: every model trace violates the claim (no trace contains a1),
    // and progresses at most a couple of monitor states.
    let model = Nfa::from_regex(&Regex::star(Regex::sym(syms[0])), ab.clone());
    (ab, claim, model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use shelley_core::Checker;

    #[test]
    fn generated_sources_verify() {
        for (k, n) in [(1, 1), (2, 3), (4, 5)] {
            let checked = Checker::new().check_source(&chain_system(k, n)).unwrap();
            assert!(checked.report.passed(), "k={k} n={n}");
        }
        let checked = Checker::new().check_source(PAPER_SOURCE).unwrap();
        assert!(!checked.report.passed());
        let checked = Checker::new().check_source(SECTOR_SOURCE).unwrap();
        assert!(checked.report.passed());
    }

    #[test]
    fn generated_project_verifies() {
        let files: Vec<_> = generated_project(10)
            .into_iter()
            .map(|(name, source)| shelley_core::ProjectFile::new(name, source))
            .collect();
        let checked = Checker::new().check_files(&files).unwrap();
        assert!(checked.report.passed(), "{}", checked.report.render(None));
        assert_eq!(checked.systems.len(), 10);
    }

    #[test]
    fn serve_project_verifies_with_a_mixed_fast_path() {
        let files: Vec<_> = serve_project(40)
            .into_iter()
            .map(|(name, source)| shelley_core::ProjectFile::new(name, source))
            .collect();
        let mut ws = Checker::new().jobs(1).into_workspace();
        for f in &files {
            ws.set_file(f.name.clone(), f.source.clone());
        }
        let checked = ws.check().unwrap();
        assert!(checked.report.passed(), "{}", checked.report.render(None));
        assert_eq!(checked.systems.len(), 40);
        let proven = ws.last_round().fast_path_proven;
        assert!(
            proven > 0 && proven < 38,
            "both verify paths must stay exercised (proven {proven}/38 composites)"
        );
    }

    #[test]
    fn realworld_corpus_hits_the_designed_rates() {
        use micropython_parser::visit::collect_degraded;
        let corpus = realworld_corpus(200);
        assert_eq!(corpus.len(), 200);
        let checker = Checker::new().recover(true);
        let mut parse_ok = 0;
        let mut extract_ok = 0;
        for (name, source) in &corpus {
            let module = micropython_parser::parse_module_recover(source);
            let degraded = collect_degraded(&module);
            if degraded.is_empty() {
                assert!(
                    micropython_parser::parse_module(source).is_ok(),
                    "{name} should be strictly valid"
                );
                parse_ok += 1;
            }
            let checked = checker.check_source(source).unwrap();
            let extract_errors = checked.report.diagnostics.errors().any(|d| {
                matches!(
                    d.code,
                    shelley_core::codes::BAD_ANNOTATION
                        | shelley_core::codes::UNKNOWN_SUBSYSTEM
                        | shelley_core::codes::NO_INITIAL_OPERATION
                        | shelley_core::codes::BAD_CLAIM
                )
            });
            if !extract_errors {
                extract_ok += 1;
            }
            // Valid files must verify end to end.
            if degraded.is_empty() && !extract_errors {
                assert!(
                    checked.report.passed(),
                    "{name} failed:\n{}",
                    checked.report.render(None)
                );
            }
        }
        assert_eq!(parse_ok, 196, "parse rate 98%");
        assert_eq!(extract_ok, 196, "extract rate 98%");
    }

    #[test]
    fn annotation_module_parses() {
        let checked = Checker::new().check_source(&annotation_module(8)).unwrap();
        assert!(!checked.report.diagnostics.has_errors());
    }

    #[test]
    fn return_forms_module_parses() {
        let m = micropython_parser::parse_module(&return_forms_module(3)).unwrap();
        assert_eq!(m.classes().count(), 1);
    }

    #[test]
    fn adversarial_claim_separates_lazy_from_eager() {
        let (ab, claim, model) = adversarial_claim(8);
        let markers = std::collections::BTreeSet::new();
        assert!(!shelley_ltlf::check_claim(&model, &claim, &markers).holds());
        // The eager monitor of the negated claim is exponential (one state
        // per subset of alive disjuncts), the lazy search region is not.
        let eager = shelley_ltlf::to_dfa(&claim.negate(), ab.clone()).num_states();
        assert!(eager >= 1 << 8, "eager monitor unexpectedly small: {eager}");
        let lazy = shelley_regular::ops::shortest_joint_word_counted(
            &model,
            &shelley_ltlf::MonitorView::new(&claim.negate(), ab),
            &markers,
        )
        .visited;
        assert!(lazy * 10 <= eager, "lazy {lazy} vs eager {eager}");
    }
}
