//! Figure 2 and the two §2.2 error messages — BadSector verification.
//!
//! Regenerates the paper's verification failures: the integration
//! automaton, the `INVALID SUBSYSTEM USAGE` check with its counterexample
//! (`open_a, a.test, a.open`), and the `FAIL TO MEET REQUIREMENT` claim
//! check (`(!a.open) W b.open`). Criterion measures each stage; the
//! asserted texts pin the reproduced outputs to the paper's.

use criterion::{criterion_group, criterion_main, Criterion};
use micropython_parser::parse_module;
use shelley_bench::PAPER_SOURCE;
use shelley_core::verify::claims::check_claims;
use shelley_core::verify::usage::check_usage;
use shelley_core::{build_integration, build_systems, Checker};

fn bench_fig2(c: &mut Criterion) {
    let module = parse_module(PAPER_SOURCE).unwrap();
    let (systems, _) = build_systems(&module);
    let badsector = systems.get("BadSector").unwrap();

    c.bench_function("fig2/build_integration", |b| {
        b.iter(|| build_integration(badsector).nfa.num_states())
    });

    let integration = build_integration(badsector);
    c.bench_function("fig2/usage_check_with_counterexample", |b| {
        b.iter(|| {
            let violation = check_usage(badsector, &systems, &integration, &Default::default())
                .expect_err("BadSector misuses valve a");
            assert_eq!(violation.counterexample_text, "open_a, a.test, a.open");
            violation.subsystem_errors.len()
        })
    });

    c.bench_function("fig2/claim_check_with_counterexample", |b| {
        b.iter(|| {
            let mut diags = shelley_core::Diagnostics::new();
            let violations = check_claims(
                badsector,
                Some(&integration),
                shelley_core::Backend::Explicit,
                &mut diags,
            );
            assert_eq!(violations.len(), 1);
            violations[0].counterexample.len()
        })
    });

    c.bench_function("fig2/full_pipeline", |b| {
        b.iter(|| {
            let checked = Checker::new().check_source(PAPER_SOURCE).expect("parses");
            assert!(!checked.report.passed());
            checked.report.usage_violations.len() + checked.report.claim_violations.len()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_fig2
}
criterion_main!(benches);
