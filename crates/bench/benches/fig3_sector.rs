//! Figure 3 — the Sector method-dependency graph (§3.1).
//!
//! Regenerates the figure from Listing 3.1 (entry node per method, exit
//! node per return, ordering arcs) and sweeps graph extraction over
//! growing synthetic specs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use micropython_parser::parse_module;
use shelley_bench::{chain_class, SECTOR_SOURCE};
use shelley_core::build_systems;
use shelley_core::extract::dependency::DependencyGraph;

fn bench_fig3(c: &mut Criterion) {
    let module = parse_module(SECTOR_SOURCE).unwrap();
    let (systems, _) = build_systems(&module);
    let sector = systems.get("Sector").unwrap();

    c.bench_function("fig3/dependency_graph_of_sector", |b| {
        b.iter(|| {
            let g = DependencyGraph::from_spec(&sector.spec);
            assert_eq!(g.entry_count(), 4);
            assert_eq!(g.exit_count(), 6);
            g.edges.len()
        })
    });

    c.bench_function("fig3/render_dot", |b| {
        let g = DependencyGraph::from_spec(&sector.spec);
        b.iter(|| g.to_dot().len())
    });

    let mut group = c.benchmark_group("fig3/dependency_graph_scaling");
    for n in [10usize, 50, 200] {
        let src = chain_class("Chain", n);
        let module = parse_module(&src).unwrap();
        let (systems, _) = build_systems(&module);
        let chain = systems.get("Chain").unwrap().spec.clone();
        group.bench_with_input(BenchmarkId::from_parameter(n), &chain, |b, spec| {
            b.iter(|| DependencyGraph::from_spec(spec).edges.len())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_fig3
}
criterion_main!(benches);
