//! Table 2 — return statements and their meanings.
//!
//! Regenerates the table by parsing and extracting next-operation sets
//! from every return form (`return ["m"]`, `return ["m1","m2"]`,
//! `return ["m"], 2`, `return ["m"], True`, `return ["m1","m2"], 2`),
//! sweeping the number of return statements per module.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use micropython_parser::parse_module;
use shelley_bench::return_forms_module;
use shelley_ir::denote_exits;
use shelley_regular::Alphabet;
use std::collections::BTreeSet;

fn bench_return_forms(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2/parse_and_extract");
    for reps in [1usize, 10, 50, 200] {
        let src = return_forms_module(reps);
        group.bench_with_input(BenchmarkId::from_parameter(reps * 5), &src, |b, src| {
            b.iter(|| {
                let module = parse_module(src).expect("parses");
                let class = module.classes().next().expect("one class");
                let fields: BTreeSet<String> = BTreeSet::new();
                let mut total_exits = 0usize;
                for func in class.methods() {
                    let mut ab = Alphabet::new();
                    let lowered =
                        shelley_core::extract::lower::lower_method(func, &fields, &mut ab);
                    let (_, exits) = denote_exits(&lowered.program);
                    total_exits += exits.len();
                }
                total_exits
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_return_forms
}
criterion_main!(benches);
