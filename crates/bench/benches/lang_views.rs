//! The language-view separation: lazy vs eager claim checking on an
//! adversarial claim.
//!
//! The claim `F a0 & ... & F a{n-1}` has a negated monitor with ~2^n
//! states under eager compilation, while the model (`a0*`) only ever
//! progresses a handful of them. The lazy engine ([`check_claim`] driving
//! a [`MonitorView`](shelley_ltlf::MonitorView) on the fly) must visit
//! ≤ 10% of the eager monitor's states and win by ≥ 5× wall time; the
//! asserts below pin the state-count separation, Criterion measures the
//! time, and `devtools/langbench` records both in `BENCH_lang.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use shelley_bench::adversarial_claim;
use shelley_ltlf::{check_claim, to_dfa, MonitorView};
use shelley_regular::lang::{self, NfaView, NfaViewRef};
use shelley_regular::{ops, Alphabet, Dfa, Nfa, Regex, Symbol};
use std::collections::BTreeSet;
use std::sync::Arc;

const N: usize = 12;

/// `(a+b)* ; a ; (a+b)^(n-1)`: minimal DFA has 2^n states, so subset
/// construction and exhaustive inclusion searches pay the full exponential
/// subset space — the stress test for the per-subset constant factor that
/// the `StateSet`/`CompiledNfa` bitset engine attacks.
fn exponential_nfa(n: usize) -> (Arc<Alphabet>, Nfa) {
    let mut ab = Alphabet::new();
    let a = ab.intern("a");
    let b = ab.intern("b");
    let ab = Arc::new(ab);
    let sigma = Regex::union(Regex::sym(a), Regex::sym(b));
    let mut re = Regex::concat(Regex::star(sigma.clone()), Regex::sym(a));
    for _ in 1..n {
        re = Regex::concat(re, sigma.clone());
    }
    (ab.clone(), Nfa::from_regex(&re, ab))
}

fn bench_lang_views(c: &mut Criterion) {
    let (ab, claim, model) = adversarial_claim(N);
    let markers = BTreeSet::new();
    let bad = claim.negate();

    // Pin the separation before timing anything: the lazy joint search
    // explores a constant-ish product region, the eager monitor is
    // exponential in N.
    let lazy_visited =
        ops::shortest_joint_word_counted(&model, &MonitorView::new(&bad, ab.clone()), &markers)
            .visited;
    let eager_states = to_dfa(&bad, ab.clone()).num_states();
    assert!(
        lazy_visited * 10 <= eager_states,
        "lazy search visited {lazy_visited} product states vs {eager_states} eager monitor states"
    );

    c.bench_function("lang_views/lazy_check", |b| {
        b.iter(|| {
            assert!(!check_claim(&model, &claim, &markers).holds());
        })
    });

    let mut group = c.benchmark_group("lang_views");
    group.sample_size(10);
    group.bench_function("eager_check", |b| {
        b.iter(|| {
            let monitor = to_dfa(&bad, ab.clone());
            ops::shortest_joint_word(&model, &monitor, &markers).expect("claim is violated")
        })
    });
    group.finish();
}

/// The bitset state engine vs the retained `BTreeSet` reference engine on
/// the two hot paths it exists for: subset construction and the exhaustive
/// joint 0-1 BFS. `devtools/langbench` runs the same workloads across a
/// sweep of `n` and gates ≥ 2× at n ≥ 10 into `BENCH_perf.json`; here we
/// pin equivalence once and let Criterion time the n = 10 point.
fn bench_state_engine(c: &mut Criterion) {
    const EXP_N: usize = 10;
    let (ab, spec) = exponential_nfa(EXP_N);

    // The engines must be indistinguishable before they are comparable:
    // identical DFA tables under identical state numbering.
    let bitset_dfa = Dfa::from_nfa(&spec);
    let reference_dfa = lang::materialize(&NfaViewRef::new(&spec));
    assert_eq!(bitset_dfa.num_states(), reference_dfa.num_states());

    // Model `a ; (a+b)^(n-1)` is included in the spec, so the inclusion
    // search exhausts the reachable product on both engines.
    let a = Symbol::from_index(0);
    let b = Symbol::from_index(1);
    let sigma = Regex::union(Regex::sym(a), Regex::sym(b));
    let mut model_re = Regex::sym(a);
    for _ in 1..EXP_N {
        model_re = Regex::concat(model_re, sigma.clone());
    }
    let model = Nfa::from_regex(&model_re, ab);
    let markers = BTreeSet::new();
    assert!(ops::projected_subset(&model, &NfaView::new(&spec), &markers).is_ok());

    let mut group = c.benchmark_group("state_engine");
    group.sample_size(10);
    group.bench_function("subset_construction/bitset", |bench| {
        bench.iter(|| Dfa::from_nfa(&spec).num_states())
    });
    group.bench_function("subset_construction/reference", |bench| {
        bench.iter(|| lang::materialize(&NfaViewRef::new(&spec)).num_states())
    });
    group.bench_function("joint_bfs/bitset", |bench| {
        bench.iter(|| ops::projected_subset(&model, &NfaView::new(&spec), &markers).is_ok())
    });
    group.bench_function("joint_bfs/reference", |bench| {
        bench.iter(|| ops::projected_subset(&model, &NfaViewRef::new(&spec), &markers).is_ok())
    });
    group.finish();
}

/// Antichain-pruned inclusion vs the classic exhaustive joint search on
/// the `Σ*·a·Σ^(n-1)` spec family with an *included* model: the classic
/// engine must enumerate the exponential reachable product while the
/// antichain keeps an O(n) frontier. `devtools/langbench` sweeps `n` and
/// gates ≥ 2× at n ≥ 10 into `BENCH_perf.json`; here we pin the frontier
/// separation once and let Criterion time the n = 10 point.
fn bench_inclusion_engine(c: &mut Criterion) {
    use shelley_regular::antichain;

    const EXP_N: usize = 10;
    let (ab, spec) = exponential_nfa(EXP_N);

    let a = Symbol::from_index(0);
    let b = Symbol::from_index(1);
    let sigma = Regex::union(Regex::sym(a), Regex::sym(b));
    let mut model_re = Regex::sym(a);
    for _ in 1..EXP_N {
        model_re = Regex::concat(model_re, sigma.clone());
    }
    let model = Nfa::from_regex(&model_re, ab);
    let markers = BTreeSet::new();

    // Both engines agree the model conforms, and the antichain's frontier
    // stays far below the classic engine's visited product region.
    let (verdict, stats) =
        antichain::projected_subset_counted(&model, &NfaView::new(&spec), &markers);
    assert!(verdict.is_ok());
    let classic_visited = ops::shortest_joint_word_counted(
        &model,
        &lang::Complement::new(NfaView::new(&spec)),
        &markers,
    )
    .visited;
    assert!(
        stats.frontier * 4 < classic_visited,
        "antichain frontier {} vs classic visited {classic_visited}",
        stats.frontier
    );

    let mut group = c.benchmark_group("inclusion_engine");
    group.sample_size(10);
    group.bench_function("antichain", |bench| {
        bench.iter(|| antichain::projected_subset(&model, &NfaView::new(&spec), &markers).is_ok())
    });
    group.bench_function("classic", |bench| {
        bench.iter(|| ops::projected_subset(&model, &NfaView::new(&spec), &markers).is_ok())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_lang_views,
    bench_state_engine,
    bench_inclusion_engine
);
criterion_main!(benches);
