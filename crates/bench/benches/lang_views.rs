//! The language-view separation: lazy vs eager claim checking on an
//! adversarial claim.
//!
//! The claim `F a0 & ... & F a{n-1}` has a negated monitor with ~2^n
//! states under eager compilation, while the model (`a0*`) only ever
//! progresses a handful of them. The lazy engine ([`check_claim`] driving
//! a [`MonitorView`](shelley_ltlf::MonitorView) on the fly) must visit
//! ≤ 10% of the eager monitor's states and win by ≥ 5× wall time; the
//! asserts below pin the state-count separation, Criterion measures the
//! time, and `devtools/langbench` records both in `BENCH_lang.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use shelley_bench::adversarial_claim;
use shelley_ltlf::{check_claim, to_dfa, MonitorView};
use shelley_regular::ops;
use std::collections::BTreeSet;

const N: usize = 12;

fn bench_lang_views(c: &mut Criterion) {
    let (ab, claim, model) = adversarial_claim(N);
    let markers = BTreeSet::new();
    let bad = claim.negate();

    // Pin the separation before timing anything: the lazy joint search
    // explores a constant-ish product region, the eager monitor is
    // exponential in N.
    let lazy_visited =
        ops::shortest_joint_word_counted(&model, &MonitorView::new(&bad, ab.clone()), &markers)
            .visited;
    let eager_states = to_dfa(&bad, ab.clone()).num_states();
    assert!(
        lazy_visited * 10 <= eager_states,
        "lazy search visited {lazy_visited} product states vs {eager_states} eager monitor states"
    );

    c.bench_function("lang_views/lazy_check", |b| {
        b.iter(|| {
            assert!(!check_claim(&model, &claim, &markers).holds());
        })
    });

    let mut group = c.benchmark_group("lang_views");
    group.sample_size(10);
    group.bench_function("eager_check", |b| {
        b.iter(|| {
            let monitor = to_dfa(&bad, ab.clone());
            ops::shortest_joint_word(&model, &monitor, &markers).expect("claim is violated")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_lang_views);
criterion_main!(benches);
