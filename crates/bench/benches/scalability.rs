//! Scalability characterization of the full pipeline.
//!
//! The paper evaluates no performance numbers; this sweep records how the
//! reproduction scales: end-to-end verification time against (a) protocol
//! length `n` and (b) subsystem count `k`, plus the automaton sizes the
//! checks operate on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use shelley_bench::chain_system;
use shelley_core::{build_integration, Checker};

fn bench_protocol_length(c: &mut Criterion) {
    let mut group = c.benchmark_group("scalability/protocol_length");
    for n in [2usize, 8, 32, 64] {
        let src = chain_system(1, n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &src, |b, src| {
            b.iter(|| {
                let checked = Checker::new().check_source(src).expect("parses");
                assert!(checked.report.passed());
                checked.systems.len()
            })
        });
    }
    group.finish();
}

fn bench_subsystem_count(c: &mut Criterion) {
    let mut group = c.benchmark_group("scalability/subsystem_count");
    for k in [1usize, 2, 4, 8, 12] {
        let src = chain_system(k, 4);
        group.bench_with_input(BenchmarkId::from_parameter(k), &src, |b, src| {
            b.iter(|| {
                let checked = Checker::new().check_source(src).expect("parses");
                assert!(checked.report.passed());
                checked.systems.len()
            })
        });
    }
    group.finish();

    // Report the automaton sizes once per configuration (stderr, for
    // EXPERIMENTS.md).
    for k in [1usize, 4, 8, 12] {
        let src = chain_system(k, 4);
        let checked = Checker::new().check_source(&src).unwrap();
        let driver = checked.systems.get("Driver").unwrap();
        let integration = build_integration(driver);
        eprintln!(
            "scalability/sizes k={k}: integration NFA states={} edges={} alphabet={}",
            integration.nfa.num_states(),
            integration.nfa.num_edges(),
            integration.nfa.alphabet().len(),
        );
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_protocol_length, bench_subsystem_count
}
criterion_main!(benches);
