//! Figure 1 — the Valve behavior diagram.
//!
//! Regenerates the figure end-to-end from Listing 2.1: parse → spec →
//! validation → DOT, with each stage also measured separately.

use criterion::{criterion_group, criterion_main, Criterion};
use micropython_parser::parse_module;
use shelley_bench::PAPER_SOURCE;
use shelley_core::{build_systems, spec_diagram};

fn bench_fig1(c: &mut Criterion) {
    c.bench_function("fig1/parse_listing_2_1", |b| {
        b.iter(|| {
            parse_module(PAPER_SOURCE)
                .expect("parses")
                .classes()
                .count()
        })
    });

    let module = parse_module(PAPER_SOURCE).unwrap();
    c.bench_function("fig1/build_valve_spec", |b| {
        b.iter(|| {
            let (systems, _) = build_systems(&module);
            systems.get("Valve").expect("valve").spec.operations.len()
        })
    });

    let (systems, _) = build_systems(&module);
    let valve = systems.get("Valve").unwrap();
    c.bench_function("fig1/render_diagram", |b| {
        b.iter(|| spec_diagram(&valve.spec).len())
    });

    c.bench_function("fig1/end_to_end", |b| {
        b.iter(|| {
            let module = parse_module(PAPER_SOURCE).expect("parses");
            let (systems, diags) = build_systems(&module);
            assert!(!diags.has_errors());
            spec_diagram(&systems.get("Valve").expect("valve").spec).len()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_fig1
}
criterion_main!(benches);
