//! §5 future work — the NFA → NuSMV translation.
//!
//! Measures model emission and the explicit-state validation of the
//! regular → ω-regular encoding across spec sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use micropython_parser::parse_module;
use shelley_bench::{chain_class, PAPER_SOURCE};
use shelley_core::build_systems;
use shelley_core::spec::{intern_spec_events, spec_automaton};
use shelley_regular::{Alphabet, Dfa};
use shelley_smv::{nfa_to_smv, validate_model};
use std::sync::Arc;

fn spec_nfa(src: &str, class: &str) -> shelley_regular::Nfa {
    let module = parse_module(src).unwrap();
    let (systems, _) = build_systems(&module);
    let spec = &systems.get(class).unwrap().spec;
    let mut ab = Alphabet::new();
    intern_spec_events(spec, None, &mut ab);
    spec_automaton(spec, None, Arc::new(ab)).nfa().clone()
}

fn bench_smv(c: &mut Criterion) {
    let valve = spec_nfa(PAPER_SOURCE, "Valve");
    c.bench_function("smv/emit_valve_model", |b| {
        b.iter(|| nfa_to_smv(&valve, "Valve", &[]).to_smv().len())
    });

    let model = nfa_to_smv(&valve, "Valve", &[]);
    let dfa = Dfa::from_nfa(&valve).minimize();
    c.bench_function("smv/validate_valve_model", |b| {
        b.iter(|| {
            let report = validate_model(&model, &dfa, 5);
            assert!(report.passed());
            report.words_checked
        })
    });

    let mut group = c.benchmark_group("smv/emission_scaling");
    for n in [4usize, 16, 64] {
        let nfa = spec_nfa(&chain_class("Chain", n), "Chain");
        group.bench_with_input(BenchmarkId::from_parameter(n), &nfa, |b, nfa| {
            b.iter(|| nfa_to_smv(nfa, "Chain", &[]).to_smv().len())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_smv
}
criterion_main!(benches);
