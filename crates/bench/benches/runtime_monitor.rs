//! Runtime-enforcement overhead: what does guarding every call with the
//! spec monitor cost? (No paper counterpart — characterizes the
//! `shelley-runtime` companion.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use micropython_parser::parse_module;
use shelley_bench::chain_class;
use shelley_core::build_systems;
use shelley_runtime::SpecMonitor;

fn bench_monitor(c: &mut Criterion) {
    // Per-invocation cost across protocol sizes.
    let mut group = c.benchmark_group("runtime/invoke_per_call");
    for n in [2usize, 8, 32] {
        let src = chain_class("Chain", n);
        let module = parse_module(&src).unwrap();
        let (systems, _) = build_systems(&module);
        let spec = systems.get("Chain").unwrap().spec.clone();
        let ops: Vec<String> = (0..n).map(|i| format!("s{i}")).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &spec, |b, spec| {
            b.iter(|| {
                let mut m = SpecMonitor::new(spec);
                for _ in 0..4 {
                    for op in &ops {
                        m.invoke(op).expect("protocol-conforming");
                    }
                }
                m.finish().expect("complete");
                m.history().len()
            })
        });
    }
    group.finish();

    // Construction cost (automaton + liveness precomputation).
    let mut group = c.benchmark_group("runtime/monitor_construction");
    for n in [2usize, 8, 32, 128] {
        let src = chain_class("Chain", n);
        let module = parse_module(&src).unwrap();
        let (systems, _) = build_systems(&module);
        let spec = systems.get("Chain").unwrap().spec.clone();
        group.bench_with_input(BenchmarkId::from_parameter(n), &spec, |b, spec| {
            b.iter(|| SpecMonitor::new(spec).allowed().len())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_monitor
}
criterion_main!(benches);
