//! Table 1 — Shelley's annotations.
//!
//! Regenerates the table by parsing and validating classes that exercise
//! every annotation (`@claim`, `@sys`, `@sys([...])`, `@op_initial`,
//! `@op`, `@op_final`, `@op_initial_final`), sweeping the number of
//! annotated operations. Reported rows: time to parse + build + validate
//! per module size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use micropython_parser::parse_module;
use shelley_bench::{annotation_module, chain_system};
use shelley_core::build_systems;

fn bench_annotations(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1/annotated_class");
    for n_ops in [4usize, 16, 64, 256] {
        let src = annotation_module(n_ops);
        group.bench_with_input(BenchmarkId::from_parameter(n_ops), &src, |b, src| {
            b.iter(|| {
                let module = parse_module(src).expect("parses");
                let (systems, diags) = build_systems(&module);
                assert!(!diags.has_errors());
                systems.len()
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("table1/composite_annotations");
    for k in [1usize, 4, 8] {
        let src = chain_system(k, 4);
        group.bench_with_input(BenchmarkId::from_parameter(k), &src, |b, src| {
            b.iter(|| {
                let module = parse_module(src).expect("parses");
                let (systems, _) = build_systems(&module);
                systems.len()
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_annotations
}
criterion_main!(benches);
