//! Ablations over the design choices `DESIGN.md` calls out.
//!
//! * Hopcroft vs naive (Moore) DFA minimization;
//! * derivative-based regex membership vs compile-to-DFA-then-run;
//! * minimized vs unminimized monitors for claim checking.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use shelley_ir::generate::{generate_program, GenConfig};
use shelley_ir::infer;
use shelley_ltlf::{parse_formula, to_dfa};
use shelley_regular::{Alphabet, Dfa, Nfa, Regex};
use std::sync::Arc;

fn workload(size: usize) -> (Arc<Alphabet>, Regex) {
    let (ab, p) = generate_program(
        13,
        GenConfig {
            target_size: size,
            ..GenConfig::default()
        },
    );
    (Arc::new(ab), infer(&p))
}

fn bench_minimization(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/minimization");
    for size in [50usize, 200, 800] {
        let (ab, r) = workload(size);
        let dfa = Dfa::from_nfa(&Nfa::from_regex(&r, ab));
        group.bench_with_input(
            BenchmarkId::new("hopcroft", dfa.num_states()),
            &dfa,
            |b, dfa| b.iter(|| dfa.minimize().num_states()),
        );
        group.bench_with_input(
            BenchmarkId::new("naive_moore", dfa.num_states()),
            &dfa,
            |b, dfa| b.iter(|| dfa.minimize_naive().num_states()),
        );
    }
    group.finish();
}

fn bench_membership_modes(c: &mut Criterion) {
    let (ab, r) = workload(200);
    let dfa = Dfa::from_nfa(&Nfa::from_regex(&r, ab.clone()));
    let words = dfa.enumerate_words(8, 64);
    let mut group = c.benchmark_group("ablation/membership");
    group.bench_function("brzozowski_derivatives", |b| {
        b.iter(|| words.iter().filter(|w| r.matches(w)).count())
    });
    group.bench_function("compiled_dfa", |b| {
        b.iter(|| words.iter().filter(|w| dfa.accepts(w)).count())
    });
    group.bench_function("compile_then_run", |b| {
        b.iter(|| {
            let d = Dfa::from_nfa(&Nfa::from_regex(&r, ab.clone()));
            words.iter().filter(|w| d.accepts(w)).count()
        })
    });
    group.finish();
}

fn bench_monitor_minimization(c: &mut Criterion) {
    let mut ab = Alphabet::new();
    let claim = parse_formula("(!a.open) W b.open", &mut ab).unwrap();
    // A model alphabet with extra events, as real integrations have.
    for extra in ["a.test", "a.close", "b.test", "b.close", "open_a", "open_b"] {
        ab.intern(extra);
    }
    let ab = Arc::new(ab);
    let mut group = c.benchmark_group("ablation/claim_monitor");
    group.bench_function("monitor_construction", |b| {
        b.iter(|| to_dfa(&claim.negate(), ab.clone()).num_states())
    });
    group.bench_function("monitor_construction_plus_minimize", |b| {
        b.iter(|| to_dfa(&claim.negate(), ab.clone()).minimize().num_states())
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_minimization, bench_membership_modes, bench_monitor_minimization
}
criterion_main!(benches);
