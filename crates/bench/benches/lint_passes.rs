//! Cost of the flow-sensitive lint layer.
//!
//! The lint passes (CFG construction, definite-assignment dataflow,
//! sibling-call scan) run on every `check`, so their cost rides on top of
//! the paper's verification pipeline. These benches measure the passes in
//! isolation on the paper example and the full pipeline with lints on
//! vs. all-allowed (which skips the passes entirely).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use micropython_parser::parse_module;
use shelley_bench::PAPER_SOURCE;
use shelley_core::lint::{run_lints, LintConfig, LintLevel};
use shelley_core::{build_systems, codes, Checker, Diagnostics};

fn bench_lints(c: &mut Criterion) {
    let module = parse_module(PAPER_SOURCE).unwrap();
    let (systems, _) = build_systems(&module);
    let defaults = LintConfig::new();

    c.bench_function("lint/passes_on_paper_example", |b| {
        b.iter(|| {
            let mut out = Diagnostics::new();
            run_lints(&module, &systems, &defaults, &mut out);
            out.len()
        })
    });

    let default_checker = Checker::new().lints(defaults.clone()).jobs(1);
    c.bench_function("lint/pipeline_with_default_lints", |b| {
        b.iter(|| {
            let checked = default_checker
                .check_source(black_box(PAPER_SOURCE))
                .unwrap();
            checked.report.diagnostics.len()
        })
    });

    let mut allow_all = LintConfig::new();
    for code in [
        codes::UNREACHABLE_STATEMENT,
        codes::USE_BEFORE_INIT,
        codes::MAYBE_UNINIT_SUBSYSTEM,
        codes::SIBLING_OPERATION_CALL,
    ] {
        allow_all.set(code, LintLevel::Allow).unwrap();
    }
    let allow_checker = Checker::new().lints(allow_all.clone()).jobs(1);
    c.bench_function("lint/pipeline_with_lints_allowed_off", |b| {
        b.iter(|| {
            let checked = allow_checker.check_source(black_box(PAPER_SOURCE)).unwrap();
            checked.report.diagnostics.len()
        })
    });
}

criterion_group!(benches, bench_lints);
criterion_main!(benches);
