//! Figure 4 — the calculus: trace semantics vs behavior inference.
//!
//! Regenerates the formal core's behavior on Examples 1–3 and
//! characterizes the central algorithmic claim implicit in the paper:
//! behavior inference is **syntax-directed** (near-linear in program
//! size), whereas deciding membership through the operational semantics
//! costs polynomial per trace and enumerating traces is exponential — the
//! reason Shelley infers a regular expression once instead of exploring
//! traces.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use shelley_ir::generate::{generate_program, GenConfig};
use shelley_ir::{enumerate_traces, infer, EnumConfig, Program, Status, TraceChecker};
use shelley_regular::Alphabet;

fn example_program() -> (Alphabet, Program) {
    let mut ab = Alphabet::new();
    let (a, b, c) = (ab.intern("a"), ab.intern("b"), ab.intern("c"));
    let p = Program::loop_(Program::seq(
        Program::call(a),
        Program::if_(
            Program::seq(Program::call(b), Program::ret(0)),
            Program::call(c),
        ),
    ));
    (ab, p)
}

fn bench_examples(c: &mut Criterion) {
    let (ab, p) = example_program();
    let a = ab.lookup("a").unwrap();
    let b = ab.lookup("b").unwrap();
    let cc = ab.lookup("c").unwrap();

    c.bench_function("fig4/example1_2_trace_judgment", |bch| {
        bch.iter(|| {
            let checker = TraceChecker::new(&p);
            assert!(checker.derivable(Status::Ongoing, &[a, cc, a, cc]));
            assert!(checker.derivable(Status::Returned, &[a, cc, a, b]));
        })
    });

    c.bench_function("fig4/example3_inference", |bch| {
        bch.iter(|| infer(&p).size())
    });
}

fn bench_inference_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4/inference_scaling");
    for size in [10usize, 100, 1000, 5000] {
        let (_, p) = generate_program(
            42,
            GenConfig {
                target_size: size,
                ..GenConfig::default()
            },
        );
        group.bench_with_input(BenchmarkId::from_parameter(p.size()), &p, |bch, p| {
            bch.iter(|| infer(p).size())
        });
    }
    group.finish();
}

/// The who-wins comparison: deciding "does trace t belong to the method's
/// behavior" by (a) the operational semantics directly, vs (b) inferring
/// once and matching the regular expression. Inference wins as soon as
/// more than a handful of traces are checked.
fn bench_semantics_vs_inference(c: &mut Criterion) {
    let (_, p) = generate_program(
        7,
        GenConfig {
            target_size: 60,
            ..GenConfig::default()
        },
    );
    // A workload of traces to classify.
    let traces: Vec<Vec<shelley_regular::Symbol>> = enumerate_traces(
        &p,
        EnumConfig {
            max_len: 5,
            max_iters: 2,
            max_traces: 64,
        },
    )
    .into_iter()
    .map(|(_, t)| t)
    .collect();
    assert!(!traces.is_empty());

    let mut group = c.benchmark_group("fig4/membership_mode");
    group.bench_function("semantics_per_trace", |bch| {
        bch.iter(|| {
            let checker = TraceChecker::new(&p);
            traces.iter().filter(|t| checker.in_language(t)).count()
        })
    });
    group.bench_function("infer_once_then_match", |bch| {
        bch.iter(|| {
            let behavior = infer(&p);
            traces.iter().filter(|t| behavior.matches(t)).count()
        })
    });
    group.finish();

    // The exponential baseline: enumerating the trace set outright.
    let mut group = c.benchmark_group("fig4/enumeration_baseline");
    for max_len in [4usize, 6, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(max_len),
            &max_len,
            |bch, &max_len| {
                bch.iter(|| {
                    enumerate_traces(
                        &p,
                        EnumConfig {
                            max_len,
                            max_iters: max_len,
                            max_traces: 100_000,
                        },
                    )
                    .len()
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_examples, bench_inference_scaling, bench_semantics_vs_inference
}
criterion_main!(benches);
