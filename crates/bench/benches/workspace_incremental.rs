//! Cold vs. incremental verification on a generated 100-class project.
//!
//! The workspace's reason to exist: after a 1-file edit, only the edited
//! class and its dependent composite re-run the pipeline, so the re-check
//! should cost a small, project-size-independent fraction of the cold
//! check. The two benches regenerate exactly that pair of numbers.

use criterion::{criterion_group, criterion_main, Criterion};
use shelley_bench::generated_project;
use shelley_core::{Checker, Workspace};

const CLASSES: usize = 100;

fn load(workspace: &mut Workspace, files: &[(String, String)]) {
    for (name, source) in files {
        workspace.set_file(name.clone(), source.clone());
    }
}

fn bench_cold(c: &mut Criterion) {
    let files = generated_project(CLASSES);
    c.bench_function("workspace/cold_check_100_classes", |b| {
        b.iter(|| {
            let mut workspace = Checker::new().jobs(1).into_workspace();
            load(&mut workspace, &files);
            let checked = workspace.check().unwrap();
            assert!(checked.report.passed());
            checked.systems.len()
        })
    });
}

fn bench_incremental(c: &mut Criterion) {
    let files = generated_project(CLASSES);
    let mut workspace = Checker::new().jobs(1).into_workspace();
    load(&mut workspace, &files);
    workspace.check().unwrap();

    // Alternate between two variants of one base class so every iteration
    // is a genuine fingerprint miss (editing base0.py invalidates Base0
    // and its composite Comp1 — 2 of the 100 classes).
    let (edit_name, original) = files[0].clone();
    let edited = original.replacen(
        "        return [\"s1\"]",
        "        x = 1\n        return [\"s1\"]",
        1,
    );
    assert_ne!(original, edited);
    let mut flip = false;
    c.bench_function("workspace/recheck_after_1_file_edit_100_classes", |b| {
        b.iter(|| {
            flip = !flip;
            let text = if flip { &edited } else { &original };
            workspace.set_file(edit_name.clone(), text.clone());
            let checked = workspace.check().unwrap();
            assert!(checked.report.passed());
            checked.systems.len()
        })
    });
    assert_eq!(workspace.last_round().verified, 2);
    assert_eq!(workspace.last_round().verify_cache_hits, CLASSES as u64 - 2);
}

criterion_group!(benches, bench_cold, bench_incremental);
criterion_main!(benches);
