//! The differential backend harness: all three claim-checking engines —
//! explicit joint search, symbolic BDD fixpoint, and the NuSMV-encoding
//! evaluator — run on the same random system/claim pairs and must agree.
//!
//! Verdicts must be identical everywhere; where two engines both produce
//! a counterexample it must be a genuine violating word of the model's
//! language, and (absent markers, which this suite does not generate)
//! the witness *lengths* must be equal — every engine searches
//! breadth-first, so all shortest violations have one length.
//!
//! The generator is a hand-rolled LCG so the suite is deterministic
//! across platforms and needs no dev-dependency beyond the crates under
//! test.

use shelley_ltlf::{check_claim as explicit_check, eval, parse_formula, ClaimOutcome, Formula};
use shelley_regular::{parse_regex, Alphabet, Nfa};
use shelley_symbolic::check_claim as symbolic_check;
use std::collections::BTreeSet;
use std::sync::Arc;

/// A 64-bit linear congruential generator (Knuth's MMIX constants).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 16
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

const SYMBOLS: [&str; 3] = ["a", "b", "c"];

/// A random regular expression in the `parse_regex` surface syntax.
fn random_regex(rng: &mut Lcg, depth: u32) -> String {
    if depth == 0 || rng.below(4) == 0 {
        // Leaves are single symbols, with an occasional `void` to hit
        // empty-language corners (the parser constant-folds it away in
        // most positions, which is fine — some survive).
        return match rng.below(8) {
            0 => "void".to_owned(),
            i => SYMBOLS[(i % 3) as usize].to_owned(),
        };
    }
    let left = random_regex(rng, depth - 1);
    let right = random_regex(rng, depth - 1);
    match rng.below(4) {
        0 => format!("({left} ; {right})"),
        1 => format!("({left} + {right})"),
        2 => format!("({left})*"),
        _ => format!("(({left} + {right}))*"),
    }
}

/// A random LTLf claim in the `parse_formula` surface syntax.
fn random_formula(rng: &mut Lcg, depth: u32) -> String {
    if depth == 0 || rng.below(4) == 0 {
        return SYMBOLS[rng.below(3) as usize].to_owned();
    }
    let left = random_formula(rng, depth - 1);
    let right = random_formula(rng, depth - 1);
    match rng.below(9) {
        0 => format!("(! {left})"),
        1 => format!("(G {left})"),
        2 => format!("(F {left})"),
        3 => format!("(X {left})"),
        4 => format!("({left} & {right})"),
        5 => format!("({left} | {right})"),
        6 => format!("({left} U {right})"),
        7 => format!("({left} W {right})"),
        _ => format!("({left} -> {right})"),
    }
}

/// One random pair: a model NFA and a claim over a shared 3-symbol
/// alphabet.
fn random_pair(rng: &mut Lcg) -> (Nfa, Formula) {
    let mut ab = Alphabet::new();
    for name in SYMBOLS {
        ab.intern(name);
    }
    let formula_depth = 1 + (rng.below(3) as u32);
    let formula_text = random_formula(rng, formula_depth);
    let regex_depth = 1 + (rng.below(3) as u32);
    let regex_text = random_regex(rng, regex_depth);
    let claim = parse_formula(&formula_text, &mut ab).expect("generated formulas parse");
    let regex = parse_regex(&regex_text, &mut ab).expect("generated regexes parse");
    (Nfa::from_regex(&regex, Arc::new(ab)), claim)
}

/// Decides the claim through the NuSMV encoding: emit, evaluate the
/// claim's `LTLSPEC`, and translate the witness back to symbols.
fn smv_check(model: &Nfa, claim: &Formula) -> ClaimOutcome {
    let smv = shelley_smv::nfa_to_smv(model, "differential", std::slice::from_ref(claim));
    let outcome = shelley_smv::eval_spec(&smv, &smv.ltlspecs[1]).expect("emitted specs evaluate");
    if outcome.holds {
        return ClaimOutcome::Holds;
    }
    let counterexample = outcome
        .counterexample
        .expect("violations carry a witness")
        .iter()
        .map(|name| {
            model
                .alphabet()
                .lookup(name)
                .expect("sanitized names are identity on a/b/c")
        })
        .collect();
    ClaimOutcome::Violated { counterexample }
}

#[test]
fn the_three_engines_agree_on_random_system_claim_pairs() {
    let markers = BTreeSet::new();
    let mut rng = Lcg(0x5eed_0001);
    let mut violations = 0usize;
    const PAIRS: usize = 1500;
    for case in 0..PAIRS {
        let (model, claim) = random_pair(&mut rng);
        let explicit = explicit_check(&model, &claim, &markers);
        let symbolic = symbolic_check(&model, &claim, &markers);
        let smv = smv_check(&model, &claim);

        match (&explicit, &symbolic, &smv) {
            (ClaimOutcome::Holds, ClaimOutcome::Holds, ClaimOutcome::Holds) => {}
            (
                ClaimOutcome::Violated { counterexample: e },
                ClaimOutcome::Violated { counterexample: s },
                ClaimOutcome::Violated { counterexample: v },
            ) => {
                violations += 1;
                // Shortest-witness lengths agree across all engines…
                assert_eq!(e.len(), s.len(), "case {case}: explicit vs symbolic length");
                assert_eq!(e.len(), v.len(), "case {case}: explicit vs smv length");
                // …and every witness is a genuine violation of a word the
                // model accepts.
                for (engine, word) in [("explicit", e), ("symbolic", s), ("smv", v)] {
                    assert!(
                        model.accepts(word),
                        "case {case}: {engine} witness rejected"
                    );
                    assert!(
                        !eval(&claim, word),
                        "case {case}: {engine} witness satisfies"
                    );
                }
            }
            _ => panic!(
                "case {case}: verdicts differ\n  explicit: {explicit:?}\n  \
                 symbolic: {symbolic:?}\n  smv: {smv:?}"
            ),
        }
    }
    // The generator must exercise both verdicts substantially, or the
    // agreement above is vacuous.
    assert!(
        violations > PAIRS / 10 && violations < PAIRS * 9 / 10,
        "unbalanced generator: {violations}/{PAIRS} violations"
    );
}

#[test]
fn the_engines_agree_with_markers_in_the_model() {
    // Marker agreement is explicit-vs-symbolic only (the SMV path has no
    // marker concept): markers cost one step like any event, so joint
    // witness lengths still match.
    let mut rng = Lcg(0x5eed_0002);
    for case in 0..300 {
        let (model, claim) = random_pair(&mut rng);
        // Promote one symbol to a marker: the claim never observes it.
        let marker = model
            .alphabet()
            .lookup(SYMBOLS[rng.below(3) as usize])
            .unwrap();
        let markers = BTreeSet::from([marker]);
        let explicit = explicit_check(&model, &claim, &markers);
        let symbolic = symbolic_check(&model, &claim, &markers);
        match (&explicit, &symbolic) {
            (ClaimOutcome::Holds, ClaimOutcome::Holds) => {}
            (
                ClaimOutcome::Violated { counterexample: e },
                ClaimOutcome::Violated { counterexample: s },
            ) => {
                assert_eq!(e.len(), s.len(), "case {case}: joint witness length");
                assert!(model.accepts(s), "case {case}: symbolic witness rejected");
            }
            _ => panic!("case {case}: {explicit:?} vs {symbolic:?}"),
        }
    }
}
