//! Encoding the model × ¬claim product as boolean transition relations.
//!
//! The symbolic checker never materializes the monitor's state graph.
//! Instead it represents a *set* of product configurations as one BDD over
//! the **even** (current-state) variables and each event's transition
//! relation as a BDD over even + **odd** (next-state) variable pairs:
//!
//! * **System half** — the model NFA is compiled ([`CompiledNfa`]) and
//!   restricted to its *live* states (forward-reachable ∧ co-reachable,
//!   computed with word-parallel [`StateSet`] passes), then the surviving
//!   states are renumbered compactly and binary-encoded in
//!   `⌈log₂ L⌉` variable pairs. One step follows the ε-saturated move
//!   `q → closure(t)` for `t` a symbol successor of `closure(q)`, so ε
//!   transitions stay free exactly as in the explicit subset search.
//! * **Monitor half** — the negated claim is decomposed into its
//!   **obligation leaves**: the non-connective subformulas reachable by
//!   closing `¬φ` under [`progress`] over every non-marker event. Each leaf
//!   gets one variable pair; a monitor configuration is a set of
//!   obligations, and holding obligation `f` after event `e` obliges the
//!   (primed) structural translation of `progress(f, e)`. Marker events
//!   leave every obligation unchanged (the monitor is blind to them). A
//!   configuration accepts iff every held obligation accepts the empty
//!   remainder. Soundness of the set representation is monotonicity:
//!   formulas are in negation normal form, so extra obligations only
//!   shrink the accepted language — and the exact-truth assignment always
//!   exists, so no violation is lost.

use crate::bdd::{Bdd, Ref, FALSE, TRUE};
use shelley_ltlf::{accepts_empty, progress, Formula};
use shelley_regular::{CompiledNfa, Nfa, StateSet, Symbol};
use std::collections::BTreeMap;
use std::collections::BTreeSet;

/// The symbolic product: one BDD arena plus the relations the fixpoint
/// search needs. Variable pair `p < system_bits` is bit `p` of the encoded
/// live-state index; pair `system_bits + j` is obligation leaf `j`.
pub(crate) struct Encoding {
    pub(crate) bdd: Bdd,
    /// Total variable pairs (system bits + obligation leaves).
    pub(crate) npairs: usize,
    /// Binary digits spent on the live system state index.
    pub(crate) system_bits: usize,
    /// Obligation-leaf variable pairs.
    pub(crate) monitor_vars: usize,
    /// Initial configurations, over even variables.
    pub(crate) init: Ref,
    /// Accepting (= violating) configurations, over even variables.
    pub(crate) accept: Ref,
    /// Per-event transition relations over even + odd variables. Events
    /// with no live system move are omitted entirely.
    pub(crate) trans: Vec<(Symbol, Ref)>,
}

impl Encoding {
    /// Builds the product encoding of `model × bad` (with `bad = ¬claim`
    /// already negated by the caller). Returns `None` when the model's
    /// language is empty — no live states — so the claim trivially holds.
    pub(crate) fn build(
        model: &Nfa,
        bad: &Formula,
        markers: &BTreeSet<Symbol>,
    ) -> Option<Encoding> {
        let compiled = CompiledNfa::compile(model);
        let symbols: Vec<Symbol> = compiled.alphabet().symbols().collect();

        // Live-state restriction: reachable ∧ co-reachable, via the
        // word-parallel StateSet block operations.
        let mut live = forward_reachable(&compiled, &symbols);
        live.intersect_with(&co_reachable(model, &compiled, &symbols));
        if live.is_empty() {
            return None;
        }
        let live_states: Vec<usize> = live.iter().collect();
        let mut live_index = vec![usize::MAX; compiled.num_states()];
        for (i, &q) in live_states.iter().enumerate() {
            live_index[q] = i;
        }
        let system_bits = bits_for(live_states.len());

        // Obligation leaves: close ¬φ under progression over non-marker
        // events, decomposing every result through its And/Or spine.
        let mut leaves: Vec<Formula> = Vec::new();
        let mut leaf_index: BTreeMap<Formula, usize> = BTreeMap::new();
        let mut pending = Vec::new();
        decompose(bad, &mut |f| pending.push(f.clone()));
        while let Some(f) = pending.pop() {
            if leaf_index.contains_key(&f) {
                continue;
            }
            leaf_index.insert(f.clone(), leaves.len());
            leaves.push(f.clone());
            for &e in &symbols {
                if markers.contains(&e) {
                    continue;
                }
                decompose(&progress(&f, e), &mut |g| pending.push(g.clone()));
            }
        }
        let monitor_vars = leaves.len();
        let npairs = system_bits + monitor_vars;

        let mut bdd = Bdd::new();

        // Monitor relations, shared across events where possible.
        let translate = |bdd: &mut Bdd, f: &Formula, primed: bool| -> Ref {
            translate_obligation(bdd, f, primed, system_bits, &leaf_index)
        };
        let marker_identity = {
            let mut id = TRUE;
            for j in 0..monitor_vars {
                let pair = bdd.pair_identity(pair_var(system_bits + j));
                id = bdd.and(id, pair);
            }
            id
        };
        let mut monitor_step: BTreeMap<usize, Ref> = BTreeMap::new();
        for &e in &symbols {
            if markers.contains(&e) {
                continue;
            }
            let mut rel = TRUE;
            for (j, f) in leaves.iter().enumerate() {
                let held = bdd.nvar(2 * pair_var(system_bits + j));
                let next = progress(f, e);
                let obliged = translate(&mut bdd, &next, true);
                let clause = bdd.or(held, obliged);
                rel = bdd.and(rel, clause);
            }
            monitor_step.insert(e.index(), rel);
        }
        let init_mon = translate(&mut bdd, bad, false);
        let accept_mon = {
            let mut acc = TRUE;
            for (j, f) in leaves.iter().enumerate() {
                if !accepts_empty(f) {
                    let dropped = bdd.nvar(2 * pair_var(system_bits + j));
                    acc = bdd.and(acc, dropped);
                }
            }
            acc
        };

        // System relations over the compact live indices.
        let mut trans = Vec::new();
        for &e in &symbols {
            let mut rel = FALSE;
            let mut moved = compiled.empty_set();
            for (i, &q) in live_states.iter().enumerate() {
                moved.clear();
                for p in compiled.closure_of(q) {
                    for &t in compiled.successors(p, e) {
                        moved.union_with(compiled.closure_of(t as usize));
                    }
                }
                moved.intersect_with(&live);
                if moved.is_empty() {
                    continue;
                }
                let src = state_cube(&mut bdd, i, system_bits, false);
                let mut dsts = FALSE;
                for q2 in &moved {
                    let dst = state_cube(&mut bdd, live_index[q2], system_bits, true);
                    dsts = bdd.or(dsts, dst);
                }
                let edge = bdd.and(src, dsts);
                rel = bdd.or(rel, edge);
            }
            if rel == FALSE {
                continue;
            }
            let mon = if markers.contains(&e) {
                marker_identity
            } else {
                monitor_step[&e.index()]
            };
            let full = bdd.and(rel, mon);
            if full != FALSE {
                trans.push((e, full));
            }
        }

        let mut init_sys = FALSE;
        for q in &compiled.start_set() {
            if live.contains(q) {
                let cube = state_cube(&mut bdd, live_index[q], system_bits, false);
                init_sys = bdd.or(init_sys, cube);
            }
        }
        let init = bdd.and(init_sys, init_mon);

        let mut accept_sys = FALSE;
        for (i, &q) in live_states.iter().enumerate() {
            if model.is_accepting(q) {
                let cube = state_cube(&mut bdd, i, system_bits, false);
                accept_sys = bdd.or(accept_sys, cube);
            }
        }
        let accept = bdd.and(accept_sys, accept_mon);

        Some(Encoding {
            bdd,
            npairs,
            system_bits,
            monitor_vars,
            init,
            accept,
            trans,
        })
    }
}

/// Binary digits needed to address `n ≥ 1` states (zero for a single one).
fn bits_for(n: usize) -> usize {
    (usize::BITS - (n - 1).leading_zeros()) as usize
}

fn pair_var(pair: usize) -> u32 {
    u32::try_from(pair).expect("variable pair overflow")
}

/// Walks the And/Or spine of a formula, yielding its non-connective leaves.
/// Constants fold into the spine itself and produce no leaf.
fn decompose(f: &Formula, out: &mut dyn FnMut(&Formula)) {
    match f {
        Formula::True | Formula::False => {}
        Formula::And(items) | Formula::Or(items) => {
            for g in items {
                decompose(g, out);
            }
        }
        leaf => out(leaf),
    }
}

/// The structural BDD of a formula over obligation-leaf variables: the
/// And/Or spine becomes ∧/∨, every leaf its (possibly primed) variable.
fn translate_obligation(
    bdd: &mut Bdd,
    f: &Formula,
    primed: bool,
    system_bits: usize,
    leaf_index: &BTreeMap<Formula, usize>,
) -> Ref {
    match f {
        Formula::True => TRUE,
        Formula::False => FALSE,
        Formula::And(items) => {
            let mut r = TRUE;
            for g in items {
                let t = translate_obligation(bdd, g, primed, system_bits, leaf_index);
                r = bdd.and(r, t);
            }
            r
        }
        Formula::Or(items) => {
            let mut r = FALSE;
            for g in items {
                let t = translate_obligation(bdd, g, primed, system_bits, leaf_index);
                r = bdd.or(r, t);
            }
            r
        }
        leaf => {
            let j = leaf_index[leaf];
            bdd.var(2 * pair_var(system_bits + j) + u32::from(primed))
        }
    }
}

/// The cube fixing the system bits to the binary encoding of live state
/// index `i`, on the current (even) or next (odd) variables.
fn state_cube(bdd: &mut Bdd, i: usize, system_bits: usize, primed: bool) -> Ref {
    let mut r = TRUE;
    for bit in (0..system_bits).rev() {
        let var = 2 * pair_var(bit) + u32::from(primed);
        r = if i & (1 << bit) != 0 {
            bdd.mk(var, FALSE, r)
        } else {
            bdd.mk(var, r, FALSE)
        };
    }
    r
}

/// Forward-reachable states of the compiled NFA (ε-closed throughout).
fn forward_reachable(compiled: &CompiledNfa, symbols: &[Symbol]) -> StateSet {
    let mut seen = compiled.start_set();
    let mut frontier = seen.clone();
    while !frontier.is_empty() {
        let mut next = compiled.empty_set();
        for q in &frontier {
            for &e in symbols {
                for &t in compiled.successors(q, e) {
                    next.union_with(compiled.closure_of(t as usize));
                }
            }
        }
        next.difference_with(&seen);
        seen.union_with(&next);
        frontier = next;
    }
    seen
}

/// States from which an accepting state is reachable (through any mix of ε
/// and symbol moves). Iterated to fixpoint; the NFA has no reverse CSR
/// table, so this is a quadratic sweep — fine for encoding-time work.
fn co_reachable(model: &Nfa, compiled: &CompiledNfa, symbols: &[Symbol]) -> StateSet {
    let n = compiled.num_states();
    let mut co = StateSet::new(n);
    for q in 0..n {
        if model.is_accepting(q) {
            co.insert(q);
        }
    }
    loop {
        let mut changed = false;
        for q in 0..n {
            if co.contains(q) {
                continue;
            }
            let reaches = compiled.closure_of(q).intersects(&co)
                || symbols.iter().any(|&e| {
                    compiled
                        .successors(q, e)
                        .iter()
                        .any(|&t| compiled.closure_of(t as usize).intersects(&co))
                });
            if reaches {
                co.insert(q);
                changed = true;
            }
        }
        if !changed {
            return co;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shelley_ltlf::parse_formula;
    use shelley_regular::{parse_regex, Alphabet};
    use std::sync::Arc;

    fn model(re: &str, ab: &mut Alphabet) -> Nfa {
        let r = parse_regex(re, ab).unwrap();
        Nfa::from_regex(&r, Arc::new(ab.clone()))
    }

    #[test]
    fn empty_language_has_no_encoding() {
        let mut ab = Alphabet::new();
        let claim = parse_formula("F a", &mut ab).unwrap();
        let nfa = model("void", &mut ab);
        assert!(Encoding::build(&nfa, &claim.negate(), &BTreeSet::new()).is_none());
    }

    #[test]
    fn leaf_closure_is_finite_and_small() {
        let mut ab = Alphabet::new();
        // ¬(G !a) = F a: leaves {F a, nonempty-free progressions…} stay tiny.
        let claim = parse_formula("G !a", &mut ab).unwrap();
        let nfa = model("a + b", &mut ab);
        let enc = Encoding::build(&nfa, &claim.negate(), &BTreeSet::new()).unwrap();
        assert!(enc.monitor_vars <= 4, "leaves: {}", enc.monitor_vars);
        assert!(enc.system_bits >= 1);
        assert_eq!(enc.npairs, enc.system_bits + enc.monitor_vars);
    }

    #[test]
    fn dead_states_are_pruned_from_the_encoding() {
        use shelley_regular::Label;
        let mut ab = Alphabet::new();
        let claim = parse_formula("F a", &mut ab).unwrap();
        let a = ab.lookup("a").unwrap();
        let b = ab.intern("b");
        // Hand-built NFA (the regex layer folds dead branches away): one
        // accepting `a` edge plus a reachable but non-co-reachable chain of
        // ten `b` states.
        let mut builder = Nfa::builder(Arc::new(ab));
        let start = builder.add_state();
        builder.set_start(start);
        let acc = builder.add_state();
        builder.add_edge(start, Label::Sym(a), acc);
        builder.mark_accepting(acc);
        let mut prev = start;
        for _ in 0..10 {
            let next = builder.add_state();
            builder.add_edge(prev, Label::Sym(b), next);
            prev = next;
        }
        let nfa = builder.build();
        let full = CompiledNfa::compile(&nfa).num_states();
        assert_eq!(full, 12);
        let enc = Encoding::build(&nfa, &claim.negate(), &BTreeSet::new()).unwrap();
        // Only {start, acc} survive: one bit, far below the raw count.
        assert_eq!(enc.system_bits, 1);
        assert!(1 << enc.system_bits < full);
    }
}
