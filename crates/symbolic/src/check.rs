//! The symbolic fixpoint search over the encoded product.
//!
//! Violation detection is a breadth-first **onion-ring** reachability
//! fixpoint: ring `k` is the set of product configurations first reachable
//! by a trace of exactly `k` events (ε moves are free, marker events cost
//! one ring like any other — identical to the explicit joint search's 0-1
//! cost model, so shortest witness *lengths* agree between backends). The
//! image of a ring is `unprime(∃even (ring ∧ Tₑ))` unioned over events; the
//! search stops at the first ring intersecting the accepting set, or when a
//! ring comes up empty.
//!
//! A counterexample is rebuilt backwards: pick one concrete configuration
//! (a full satisfying cube) of the hit, then per ring find an event whose
//! preimage `∃odd (Tₑ ∧ prime(point))` meets the previous ring. Each ring
//! holds only configurations genuinely reachable at that depth, so the
//! walk always succeeds and yields a word of exactly the ring depth.

use crate::bdd::FALSE;
use crate::encode::Encoding;
use shelley_ltlf::{ClaimOutcome, Formula};
use shelley_regular::{Nfa, Symbol, Word};
use std::collections::BTreeSet;

/// Statistics of one symbolic check, for benchmarks and diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SymbolicSearch {
    /// The verdict, identical in meaning to the explicit checker's.
    pub outcome: ClaimOutcome,
    /// Breadth-first rings explored (= witness length + 1 on violation).
    pub layers: usize,
    /// Nodes in the BDD arena when the search finished.
    pub bdd_nodes: usize,
    /// Variable pairs spent on the binary-encoded system state.
    pub system_bits: usize,
    /// Variable pairs spent on monitor obligation leaves.
    pub monitor_vars: usize,
}

/// Checks `L(model) ⊆ L(claim)` symbolically — same contract as
/// [`shelley_ltlf::check_claim`], decided with BDDs instead of an explicit
/// product search. Symbols in `markers` advance the model but are invisible
/// to the claim.
///
/// # Panics
///
/// Panics if `model`'s alphabet differs from the one the claim's symbols
/// were interned in (they must share one `Alphabet`).
pub fn check_claim(model: &Nfa, claim: &Formula, markers: &BTreeSet<Symbol>) -> ClaimOutcome {
    check_claim_counted(model, claim, markers).outcome
}

/// [`check_claim`] with search statistics.
pub fn check_claim_counted(
    model: &Nfa,
    claim: &Formula,
    markers: &BTreeSet<Symbol>,
) -> SymbolicSearch {
    let bad = claim.negate();
    let Some(mut enc) = Encoding::build(model, &bad, markers) else {
        // Empty model language: every claim holds vacuously.
        return SymbolicSearch {
            outcome: ClaimOutcome::Holds,
            layers: 0,
            bdd_nodes: 0,
            system_bits: 0,
            monitor_vars: 0,
        };
    };

    let mut rings = vec![enc.init];
    let mut visited = enc.init;
    let mut frontier = enc.init;
    let outcome = loop {
        if frontier == FALSE {
            break ClaimOutcome::Holds;
        }
        let hit = enc.bdd.and(frontier, enc.accept);
        if hit != FALSE {
            let counterexample = extract_witness(&mut enc, &rings, hit);
            break ClaimOutcome::Violated { counterexample };
        }
        let mut next = FALSE;
        for &(_, t) in &enc.trans {
            let step = enc.bdd.and(frontier, t);
            let image = enc.bdd.exists_parity(step, false);
            let image = enc.bdd.unprime(image);
            next = enc.bdd.or(next, image);
        }
        let unvisited = enc.bdd.not(visited);
        next = enc.bdd.and(next, unvisited);
        if next == FALSE {
            break ClaimOutcome::Holds;
        }
        visited = enc.bdd.or(visited, next);
        rings.push(next);
        frontier = next;
    };

    SymbolicSearch {
        outcome,
        layers: rings.len(),
        bdd_nodes: enc.bdd.node_count(),
        system_bits: enc.system_bits,
        monitor_vars: enc.monitor_vars,
    }
}

/// Rebuilds a violating word of length `rings.len() - 1` backwards from one
/// concrete configuration of `hit` (a nonempty subset of the last ring).
fn extract_witness(enc: &mut Encoding, rings: &[crate::bdd::Ref], hit: crate::bdd::Ref) -> Word {
    let mut point = enc
        .bdd
        .any_sat(hit, enc.npairs)
        .expect("hit is satisfiable");
    let mut word = Vec::with_capacity(rings.len() - 1);
    for i in (1..rings.len()).rev() {
        let cube = enc.bdd.cube(&point);
        let primed = enc.bdd.prime(cube);
        let mut stepped = false;
        for &(e, t) in &enc.trans {
            let rel = enc.bdd.and(t, primed);
            let pre = enc.bdd.exists_parity(rel, true);
            let cand = enc.bdd.and(pre, rings[i - 1]);
            if cand != FALSE {
                word.push(e);
                point = enc
                    .bdd
                    .any_sat(cand, enc.npairs)
                    .expect("candidate is satisfiable");
                stepped = true;
                break;
            }
        }
        assert!(stepped, "ring {i} configuration has no predecessor");
    }
    word.reverse();
    word
}

#[cfg(test)]
mod tests {
    use super::*;
    use shelley_ltlf::{check_claim as explicit_check, eval, parse_formula};
    use shelley_regular::{parse_regex, Alphabet};
    use std::sync::Arc;

    fn model(re: &str, ab: &mut Alphabet) -> Nfa {
        let r = parse_regex(re, ab).unwrap();
        Nfa::from_regex(&r, Arc::new(ab.clone()))
    }

    #[test]
    fn claim_holds_on_conforming_model() {
        let mut ab = Alphabet::new();
        let claim = parse_formula("(!a.open) W b.open", &mut ab).unwrap();
        let nfa = model("b.open ; a.open", &mut ab);
        assert!(check_claim(&nfa, &claim, &BTreeSet::new()).holds());
    }

    #[test]
    fn violation_produces_a_shortest_valid_counterexample() {
        let mut ab = Alphabet::new();
        let claim = parse_formula("(!a.open) W b.open", &mut ab).unwrap();
        let nfa = model("(b.open ; a.open) + (a.test ; a.open)", &mut ab);
        match check_claim(&nfa, &claim, &BTreeSet::new()) {
            ClaimOutcome::Violated { counterexample } => {
                assert_eq!(counterexample.len(), 2);
                // The witness violates the claim…
                assert!(!eval(&claim, &counterexample));
                // …and matches the explicit engine's length.
                match explicit_check(&nfa, &claim, &BTreeSet::new()) {
                    ClaimOutcome::Violated { counterexample: w } => {
                        assert_eq!(w.len(), counterexample.len());
                    }
                    ClaimOutcome::Holds => panic!("oracle disagrees"),
                }
            }
            ClaimOutcome::Holds => panic!("claim should be violated"),
        }
    }

    #[test]
    fn empty_word_violations_are_found_at_ring_zero() {
        let mut ab = Alphabet::new();
        // The empty trace (model accepts ε) already violates F done.
        let claim = parse_formula("F done", &mut ab).unwrap();
        let nfa = model("done*", &mut ab);
        let search = check_claim_counted(&nfa, &claim, &BTreeSet::new());
        match search.outcome {
            ClaimOutcome::Violated { counterexample } => assert!(counterexample.is_empty()),
            ClaimOutcome::Holds => panic!("empty trace violates F done"),
        }
        assert_eq!(search.layers, 1);
    }

    #[test]
    fn empty_model_satisfies_everything() {
        let mut ab = Alphabet::new();
        let claim = parse_formula("F done", &mut ab).unwrap();
        let nfa = model("void", &mut ab);
        assert!(check_claim(&nfa, &claim, &BTreeSet::new()).holds());
    }

    #[test]
    fn markers_advance_the_model_but_not_the_monitor() {
        let mut ab = Alphabet::new();
        let claim = parse_formula("G !fail", &mut ab).unwrap();
        let ok = model("op ; ok", &mut ab);
        let bad = model("op ; fail", &mut ab);
        let op = ab.lookup("op").unwrap();
        let fail = ab.lookup("fail").unwrap();
        let markers = BTreeSet::from([op]);
        assert!(check_claim(&ok, &claim, &markers).holds());
        match check_claim(&bad, &claim, &markers) {
            ClaimOutcome::Violated { counterexample } => {
                // Marker preserved in the reported trace, same as explicit.
                assert_eq!(counterexample, vec![op, fail]);
            }
            ClaimOutcome::Holds => panic!("should be violated"),
        }
    }

    #[test]
    fn agrees_with_explicit_engine_on_a_hand_picked_grid() {
        let claims = [
            "G !c",
            "F b",
            "(!a) W b",
            "X b",
            "a U b",
            "G (a -> X b)",
            "F (a & X c)",
        ];
        let models = ["a ; b ; c", "(a + b)*", "b*; c", "a ; (b + c) ; a", "void"];
        for c in claims {
            for m in models {
                let mut ab = Alphabet::new();
                // Intern all names first so claim/model share symbols.
                for n in ["a", "b", "c"] {
                    ab.intern(n);
                }
                let claim = parse_formula(c, &mut ab).unwrap();
                let nfa = model(m, &mut ab);
                let sym = check_claim(&nfa, &claim, &BTreeSet::new());
                let exp = explicit_check(&nfa, &claim, &BTreeSet::new());
                match (&sym, &exp) {
                    (ClaimOutcome::Holds, ClaimOutcome::Holds) => {}
                    (
                        ClaimOutcome::Violated { counterexample: s },
                        ClaimOutcome::Violated { counterexample: e },
                    ) => {
                        assert_eq!(s.len(), e.len(), "witness lengths differ: {c} on {m}");
                        assert!(!eval(&claim, s), "invalid witness: {c} on {m}");
                    }
                    _ => panic!("verdicts differ on claim {c} model {m}: {sym:?} vs {exp:?}"),
                }
            }
        }
    }
}
