//! # shelley-symbolic
//!
//! A **symbolic** LTLf claim checker: the same `L(model) ⊆ L(claim)`
//! question as [`shelley_ltlf::check_claim`], decided by BDD fixpoint
//! iteration instead of explicit product search.
//!
//! The explicit checker enumerates reachable `(model subset, monitor
//! formula)` pairs one at a time; adversarial claims whose progression
//! monitor has `2ⁿ` reachable states make it visit them all. This crate
//! instead encodes the product as boolean **transition relations** over a
//! hand-rolled reduced-ordered BDD arena (hash-consed nodes, apply cache —
//! no external dependencies) and computes reachability by image iteration,
//! so a `2ⁿ`-state monitor frontier is one polynomially-sized BDD:
//!
//! * the model NFA is compiled ([`shelley_regular::CompiledNfa`]),
//!   restricted to live states, and binary-encoded in `⌈log₂ L⌉`
//!   interleaved current/next variable pairs;
//! * the `¬claim` monitor is encoded as **obligation sets** over the
//!   leaves of its progression closure — one variable per leaf, no
//!   determinization, no formula-state enumeration;
//! * breadth-first onion rings keep counterexamples **shortest**, with the
//!   same event cost model as the explicit engine (ε free, markers cost
//!   one), so witness lengths agree between backends — a property the
//!   differential test suite pins on thousands of random system/claim
//!   pairs.
//!
//! [`check_claim`] is verdict-compatible with the explicit checker;
//! [`check_claim_counted`] additionally reports ring and BDD-size
//! statistics for the benchmark harness.
//!
//! # Example
//!
//! ```
//! use shelley_symbolic::check_claim;
//! use shelley_ltlf::parse_formula;
//! use shelley_regular::{parse_regex, Alphabet, Nfa};
//! use std::{collections::BTreeSet, sync::Arc};
//!
//! let mut ab = Alphabet::new();
//! let claim = parse_formula("(!a.open) W b.open", &mut ab)?;
//! let model = parse_regex("a.test ; a.open ; b.open", &mut ab).unwrap();
//! let nfa = Nfa::from_regex(&model, Arc::new(ab));
//! let outcome = check_claim(&nfa, &claim, &BTreeSet::new());
//! assert!(!outcome.holds()); // a.open happens before b.open
//! # Ok::<(), shelley_ltlf::ParseFormulaError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bdd;
mod check;
mod encode;

pub use check::{check_claim, check_claim_counted, SymbolicSearch};
