//! A reduced-ordered binary decision diagram arena.
//!
//! Hand-rolled and dependency-free, like the rest of the workspace core.
//! Nodes live in one append-only arena and are **hash-consed**: the
//! `(var, lo, hi)` triple of every reduced node is unique, so semantic
//! equality of functions is pointer (index) equality, constant-time. Every
//! boolean operation is memoized in an **apply cache** keyed by
//! `(op, operand, operand)`, giving the standard `O(|f|·|g|)` bound.
//!
//! Variable numbering implements the interleaved current/next convention
//! used by the transition-relation encoder: *pair* `p` owns the current-
//! state variable `2p` (even) and the next-state variable `2p + 1` (odd).
//! Because a primed variable sits directly below its unprimed twin in the
//! order, renaming primed to unprimed (or back) is a monotone shift by one
//! level — [`Bdd::unprime`]/[`Bdd::prime`] never have to reorder anything.

/// Index of a BDD node in the arena. `0` and `1` are the terminals.
pub(crate) type Ref = u32;

/// The constant-false terminal.
pub(crate) const FALSE: Ref = 0;
/// The constant-true terminal.
pub(crate) const TRUE: Ref = 1;

/// Sentinel variable of the terminals: below every real variable.
const TERMINAL_VAR: u32 = u32::MAX;

/// Apply-cache operation tags.
const OP_AND: u8 = 0;
const OP_OR: u8 = 1;
const OP_NOT: u8 = 2;
const OP_EXISTS_EVEN: u8 = 3;
const OP_EXISTS_ODD: u8 = 4;
const OP_PRIME: u8 = 5;
const OP_UNPRIME: u8 = 6;

/// One reduced node: `if var then hi else lo`.
#[derive(Debug, Clone, Copy)]
struct Node {
    var: u32,
    lo: Ref,
    hi: Ref,
}

/// The arena: nodes, the hash-consing index, and the apply cache.
#[derive(Debug)]
pub(crate) struct Bdd {
    nodes: Vec<Node>,
    unique: std::collections::HashMap<(u32, Ref, Ref), Ref>,
    cache: std::collections::HashMap<(u8, Ref, Ref), Ref>,
}

impl Bdd {
    pub(crate) fn new() -> Bdd {
        let terminal = Node {
            var: TERMINAL_VAR,
            lo: FALSE,
            hi: FALSE,
        };
        Bdd {
            nodes: vec![terminal, terminal],
            unique: std::collections::HashMap::new(),
            cache: std::collections::HashMap::new(),
        }
    }

    /// Total number of live nodes (terminals included) — the size metric
    /// the benchmarks report.
    pub(crate) fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The reduced node `if var then hi else lo` (hash-consed).
    pub(crate) fn mk(&mut self, var: u32, lo: Ref, hi: Ref) -> Ref {
        if lo == hi {
            return lo;
        }
        debug_assert!(var < self.nodes[lo as usize].var);
        debug_assert!(var < self.nodes[hi as usize].var);
        if let Some(&r) = self.unique.get(&(var, lo, hi)) {
            return r;
        }
        let r = u32::try_from(self.nodes.len()).expect("BDD arena overflow");
        self.nodes.push(Node { var, lo, hi });
        self.unique.insert((var, lo, hi), r);
        r
    }

    /// The single-variable function `var`.
    pub(crate) fn var(&mut self, var: u32) -> Ref {
        self.mk(var, FALSE, TRUE)
    }

    /// The single-variable function `!var`.
    pub(crate) fn nvar(&mut self, var: u32) -> Ref {
        self.mk(var, TRUE, FALSE)
    }

    pub(crate) fn and(&mut self, a: Ref, b: Ref) -> Ref {
        if a == FALSE || b == FALSE {
            return FALSE;
        }
        if a == TRUE {
            return b;
        }
        if b == TRUE || a == b {
            return a;
        }
        let key = (OP_AND, a.min(b), a.max(b));
        if let Some(&r) = self.cache.get(&key) {
            return r;
        }
        let (v, alo, ahi, blo, bhi) = self.split(a, b);
        let lo = self.and(alo, blo);
        let hi = self.and(ahi, bhi);
        let r = self.mk(v, lo, hi);
        self.cache.insert(key, r);
        r
    }

    pub(crate) fn or(&mut self, a: Ref, b: Ref) -> Ref {
        if a == TRUE || b == TRUE {
            return TRUE;
        }
        if a == FALSE {
            return b;
        }
        if b == FALSE || a == b {
            return a;
        }
        let key = (OP_OR, a.min(b), a.max(b));
        if let Some(&r) = self.cache.get(&key) {
            return r;
        }
        let (v, alo, ahi, blo, bhi) = self.split(a, b);
        let lo = self.or(alo, blo);
        let hi = self.or(ahi, bhi);
        let r = self.mk(v, lo, hi);
        self.cache.insert(key, r);
        r
    }

    pub(crate) fn not(&mut self, a: Ref) -> Ref {
        if a == FALSE {
            return TRUE;
        }
        if a == TRUE {
            return FALSE;
        }
        let key = (OP_NOT, a, 0);
        if let Some(&r) = self.cache.get(&key) {
            return r;
        }
        let n = self.nodes[a as usize];
        let lo = self.not(n.lo);
        let hi = self.not(n.hi);
        let r = self.mk(n.var, lo, hi);
        self.cache.insert(key, r);
        r
    }

    /// Existentially quantifies every variable of the given parity
    /// (`odd = true` quantifies the primed/next-state variables).
    pub(crate) fn exists_parity(&mut self, a: Ref, odd: bool) -> Ref {
        if a <= TRUE {
            return a;
        }
        let op = if odd { OP_EXISTS_ODD } else { OP_EXISTS_EVEN };
        let key = (op, a, 0);
        if let Some(&r) = self.cache.get(&key) {
            return r;
        }
        let n = self.nodes[a as usize];
        let lo = self.exists_parity(n.lo, odd);
        let hi = self.exists_parity(n.hi, odd);
        let r = if (n.var % 2 == 1) == odd {
            self.or(lo, hi)
        } else {
            self.mk(n.var, lo, hi)
        };
        self.cache.insert(key, r);
        r
    }

    /// Renames every (odd) primed variable `2p + 1` to its unprimed twin
    /// `2p`. The input must mention only odd variables.
    pub(crate) fn unprime(&mut self, a: Ref) -> Ref {
        self.shift(a, OP_UNPRIME)
    }

    /// Renames every (even) unprimed variable `2p` to its primed twin
    /// `2p + 1`. The input must mention only even variables.
    pub(crate) fn prime(&mut self, a: Ref) -> Ref {
        self.shift(a, OP_PRIME)
    }

    fn shift(&mut self, a: Ref, op: u8) -> Ref {
        if a <= TRUE {
            return a;
        }
        let key = (op, a, 0);
        if let Some(&r) = self.cache.get(&key) {
            return r;
        }
        let n = self.nodes[a as usize];
        let var = if op == OP_PRIME {
            debug_assert_eq!(n.var % 2, 0, "prime() input mentions a primed variable");
            n.var + 1
        } else {
            debug_assert_eq!(
                n.var % 2,
                1,
                "unprime() input mentions an unprimed variable"
            );
            n.var - 1
        };
        let lo = self.shift(n.lo, op);
        let hi = self.shift(n.hi, op);
        let r = self.mk(var, lo, hi);
        self.cache.insert(key, r);
        r
    }

    /// The biconditional `current(pair) ↔ next(pair)` for one variable pair
    /// — the building block of marker-step monitor identity.
    pub(crate) fn pair_identity(&mut self, pair: u32) -> Ref {
        let (v, vn) = (2 * pair, 2 * pair + 1);
        let both_false = self.mk(vn, TRUE, FALSE);
        let both_true = self.mk(vn, FALSE, TRUE);
        self.mk(v, both_false, both_true)
    }

    /// One full satisfying assignment over the **pairs** (even variables):
    /// `result[p]` is the value of variable `2p`. Variables not on the
    /// chosen path are don't-cares and default to `false` — any completion
    /// of a path to `TRUE` still satisfies the function. Returns `None` for
    /// the constant-false function. The input must mention only even
    /// variables.
    pub(crate) fn any_sat(&self, a: Ref, npairs: usize) -> Option<Vec<bool>> {
        if a == FALSE {
            return None;
        }
        let mut values = vec![false; npairs];
        let mut cur = a;
        while cur > TRUE {
            let n = self.nodes[cur as usize];
            debug_assert_eq!(n.var % 2, 0, "any_sat input mentions a primed variable");
            if n.hi != FALSE {
                values[(n.var / 2) as usize] = true;
                cur = n.hi;
            } else {
                cur = n.lo;
            }
        }
        Some(values)
    }

    /// The cube (conjunction of literals) fixing every pair's even variable
    /// to the given value — the BDD of one concrete product state.
    pub(crate) fn cube(&mut self, values: &[bool]) -> Ref {
        let mut r = TRUE;
        for (p, &bit) in values.iter().enumerate().rev() {
            let var = 2 * u32::try_from(p).expect("pair index overflow");
            r = if bit {
                self.mk(var, FALSE, r)
            } else {
                self.mk(var, r, FALSE)
            };
        }
        r
    }

    /// Evaluates `a` under a total assignment (used by the tests).
    #[cfg(test)]
    fn eval(&self, a: Ref, assignment: &dyn Fn(u32) -> bool) -> bool {
        let mut cur = a;
        while cur > TRUE {
            let n = self.nodes[cur as usize];
            cur = if assignment(n.var) { n.hi } else { n.lo };
        }
        cur == TRUE
    }

    /// Splits `a` and `b` on their top variable, returning
    /// `(var, a_lo, a_hi, b_lo, b_hi)` with the non-split side duplicated.
    fn split(&self, a: Ref, b: Ref) -> (u32, Ref, Ref, Ref, Ref) {
        let na = self.nodes[a as usize];
        let nb = self.nodes[b as usize];
        let v = na.var.min(nb.var);
        let (alo, ahi) = if na.var == v { (na.lo, na.hi) } else { (a, a) };
        let (blo, bhi) = if nb.var == v { (nb.lo, nb.hi) } else { (b, b) };
        (v, alo, ahi, blo, bhi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exhaustively compares a BDD against a reference boolean function
    /// over `nvars` variables.
    fn assert_table(bdd: &Bdd, a: Ref, nvars: u32, f: &dyn Fn(&[bool]) -> bool) {
        for bits in 0u32..(1 << nvars) {
            let assignment: Vec<bool> = (0..nvars).map(|v| bits & (1 << v) != 0).collect();
            assert_eq!(
                bdd.eval(a, &|v| assignment[v as usize]),
                f(&assignment),
                "assignment {assignment:?}"
            );
        }
    }

    #[test]
    fn boolean_algebra_matches_truth_tables() {
        let mut b = Bdd::new();
        let x = b.var(0);
        let y = b.var(2);
        let z = b.var(4);
        let xy = b.and(x, y);
        let xy_or_z = b.or(xy, z);
        assert_table(&b, xy_or_z, 6, &|a| (a[0] && a[2]) || a[4]);
        let neg = b.not(xy_or_z);
        assert_table(&b, neg, 6, &|a| !((a[0] && a[2]) || a[4]));
        // Involution and De Morgan through hash-consing: equality is
        // index equality.
        assert_eq!(b.not(neg), xy_or_z);
        let nx = b.not(x);
        let ny = b.not(y);
        let nx_or_ny = b.or(nx, ny);
        assert_eq!(b.not(xy), nx_or_ny);
    }

    #[test]
    fn hash_consing_makes_equality_structural() {
        let mut b = Bdd::new();
        let x = b.var(0);
        let y = b.var(2);
        let left = b.and(x, y);
        let right = b.and(y, x);
        assert_eq!(left, right);
        let taut = {
            let nx = b.not(x);
            b.or(x, nx)
        };
        assert_eq!(taut, TRUE);
        let contradiction = {
            let nx = b.not(x);
            b.and(x, nx)
        };
        assert_eq!(contradiction, FALSE);
    }

    #[test]
    fn quantification_by_parity() {
        let mut b = Bdd::new();
        // f = x0 & x1' (pair 0 current, pair 0 next).
        let x = b.var(0);
        let xn = b.var(1);
        let f = b.and(x, xn);
        // ∃ odd: x0 remains.
        assert_eq!(b.exists_parity(f, true), x);
        // ∃ even: x1' remains.
        assert_eq!(b.exists_parity(f, false), xn);
        // Quantifying a variable not mentioned is the identity.
        assert_eq!(b.exists_parity(x, true), x);
    }

    #[test]
    fn prime_and_unprime_are_inverse_shifts() {
        let mut b = Bdd::new();
        let x = b.var(0);
        let y = b.var(2);
        let f = b.or(x, y);
        let primed = b.prime(f);
        let xn = b.var(1);
        let yn = b.var(3);
        let expected = b.or(xn, yn);
        assert_eq!(primed, expected);
        assert_eq!(b.unprime(primed), f);
    }

    #[test]
    fn pair_identity_relates_twins() {
        let mut b = Bdd::new();
        let id = b.pair_identity(1);
        assert_table(&b, id, 4, &|a| a[2] == a[3]);
    }

    #[test]
    fn any_sat_and_cube_round_trip() {
        let mut b = Bdd::new();
        assert_eq!(b.any_sat(FALSE, 3), None);
        assert_eq!(b.any_sat(TRUE, 3), Some(vec![false, false, false]));
        let x = b.var(0);
        let z = b.var(4);
        let f = b.and(x, z);
        let sat = b.any_sat(f, 3).unwrap();
        assert_eq!(sat, vec![true, false, true]);
        let cube = b.cube(&sat);
        // The cube implies f and is satisfiable.
        let nf = b.not(f);
        assert_eq!(b.and(cube, nf), FALSE);
        assert_ne!(cube, FALSE);
    }
}
