/root/repo/target/release/deps/ablation-ffe14cdf6a31908b.d: crates/bench/benches/ablation.rs

/root/repo/target/release/deps/ablation-ffe14cdf6a31908b: crates/bench/benches/ablation.rs

crates/bench/benches/ablation.rs:
