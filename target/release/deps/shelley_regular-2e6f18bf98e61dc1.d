/root/repo/target/release/deps/shelley_regular-2e6f18bf98e61dc1.d: crates/regular/src/lib.rs crates/regular/src/derivative.rs crates/regular/src/dfa.rs crates/regular/src/dot.rs crates/regular/src/enumerate.rs crates/regular/src/minimize.rs crates/regular/src/nfa.rs crates/regular/src/ops.rs crates/regular/src/parser.rs crates/regular/src/regex.rs crates/regular/src/symbol.rs crates/regular/src/to_regex.rs

/root/repo/target/release/deps/shelley_regular-2e6f18bf98e61dc1: crates/regular/src/lib.rs crates/regular/src/derivative.rs crates/regular/src/dfa.rs crates/regular/src/dot.rs crates/regular/src/enumerate.rs crates/regular/src/minimize.rs crates/regular/src/nfa.rs crates/regular/src/ops.rs crates/regular/src/parser.rs crates/regular/src/regex.rs crates/regular/src/symbol.rs crates/regular/src/to_regex.rs

crates/regular/src/lib.rs:
crates/regular/src/derivative.rs:
crates/regular/src/dfa.rs:
crates/regular/src/dot.rs:
crates/regular/src/enumerate.rs:
crates/regular/src/minimize.rs:
crates/regular/src/nfa.rs:
crates/regular/src/ops.rs:
crates/regular/src/parser.rs:
crates/regular/src/regex.rs:
crates/regular/src/symbol.rs:
crates/regular/src/to_regex.rs:
