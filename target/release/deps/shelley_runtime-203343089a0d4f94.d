/root/repo/target/release/deps/shelley_runtime-203343089a0d4f94.d: crates/runtime/src/lib.rs crates/runtime/src/device.rs crates/runtime/src/monitor.rs crates/runtime/src/pins.rs

/root/repo/target/release/deps/shelley_runtime-203343089a0d4f94: crates/runtime/src/lib.rs crates/runtime/src/device.rs crates/runtime/src/monitor.rs crates/runtime/src/pins.rs

crates/runtime/src/lib.rs:
crates/runtime/src/device.rs:
crates/runtime/src/monitor.rs:
crates/runtime/src/pins.rs:
