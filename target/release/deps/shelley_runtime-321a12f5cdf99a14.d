/root/repo/target/release/deps/shelley_runtime-321a12f5cdf99a14.d: crates/runtime/src/lib.rs crates/runtime/src/device.rs crates/runtime/src/monitor.rs crates/runtime/src/pins.rs

/root/repo/target/release/deps/libshelley_runtime-321a12f5cdf99a14.rlib: crates/runtime/src/lib.rs crates/runtime/src/device.rs crates/runtime/src/monitor.rs crates/runtime/src/pins.rs

/root/repo/target/release/deps/libshelley_runtime-321a12f5cdf99a14.rmeta: crates/runtime/src/lib.rs crates/runtime/src/device.rs crates/runtime/src/monitor.rs crates/runtime/src/pins.rs

crates/runtime/src/lib.rs:
crates/runtime/src/device.rs:
crates/runtime/src/monitor.rs:
crates/runtime/src/pins.rs:
