/root/repo/target/release/deps/smv_export-7cfbe1cc922b03b3.d: crates/bench/benches/smv_export.rs

/root/repo/target/release/deps/smv_export-7cfbe1cc922b03b3: crates/bench/benches/smv_export.rs

crates/bench/benches/smv_export.rs:
