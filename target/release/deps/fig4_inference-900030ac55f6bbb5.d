/root/repo/target/release/deps/fig4_inference-900030ac55f6bbb5.d: crates/bench/benches/fig4_inference.rs

/root/repo/target/release/deps/fig4_inference-900030ac55f6bbb5: crates/bench/benches/fig4_inference.rs

crates/bench/benches/fig4_inference.rs:
