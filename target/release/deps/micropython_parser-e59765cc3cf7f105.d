/root/repo/target/release/deps/micropython_parser-e59765cc3cf7f105.d: crates/micropython/src/lib.rs crates/micropython/src/ast.rs crates/micropython/src/lexer.rs crates/micropython/src/parser.rs crates/micropython/src/printer.rs crates/micropython/src/span.rs crates/micropython/src/token.rs crates/micropython/src/visit.rs

/root/repo/target/release/deps/libmicropython_parser-e59765cc3cf7f105.rlib: crates/micropython/src/lib.rs crates/micropython/src/ast.rs crates/micropython/src/lexer.rs crates/micropython/src/parser.rs crates/micropython/src/printer.rs crates/micropython/src/span.rs crates/micropython/src/token.rs crates/micropython/src/visit.rs

/root/repo/target/release/deps/libmicropython_parser-e59765cc3cf7f105.rmeta: crates/micropython/src/lib.rs crates/micropython/src/ast.rs crates/micropython/src/lexer.rs crates/micropython/src/parser.rs crates/micropython/src/printer.rs crates/micropython/src/span.rs crates/micropython/src/token.rs crates/micropython/src/visit.rs

crates/micropython/src/lib.rs:
crates/micropython/src/ast.rs:
crates/micropython/src/lexer.rs:
crates/micropython/src/parser.rs:
crates/micropython/src/printer.rs:
crates/micropython/src/span.rs:
crates/micropython/src/token.rs:
crates/micropython/src/visit.rs:
