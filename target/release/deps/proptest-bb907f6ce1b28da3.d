/root/repo/target/release/deps/proptest-bb907f6ce1b28da3.d: devtools/proptest/src/lib.rs devtools/proptest/src/strategy.rs devtools/proptest/src/test_runner.rs devtools/proptest/src/collection.rs devtools/proptest/src/option.rs

/root/repo/target/release/deps/proptest-bb907f6ce1b28da3: devtools/proptest/src/lib.rs devtools/proptest/src/strategy.rs devtools/proptest/src/test_runner.rs devtools/proptest/src/collection.rs devtools/proptest/src/option.rs

devtools/proptest/src/lib.rs:
devtools/proptest/src/strategy.rs:
devtools/proptest/src/test_runner.rs:
devtools/proptest/src/collection.rs:
devtools/proptest/src/option.rs:
