/root/repo/target/release/deps/shelley-b5192aaf2c30a36e.d: src/lib.rs

/root/repo/target/release/deps/libshelley-b5192aaf2c30a36e.rlib: src/lib.rs

/root/repo/target/release/deps/libshelley-b5192aaf2c30a36e.rmeta: src/lib.rs

src/lib.rs:
