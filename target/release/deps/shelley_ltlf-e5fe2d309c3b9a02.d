/root/repo/target/release/deps/shelley_ltlf-e5fe2d309c3b9a02.d: crates/ltlf/src/lib.rs crates/ltlf/src/automaton.rs crates/ltlf/src/check.rs crates/ltlf/src/parser.rs crates/ltlf/src/semantics.rs crates/ltlf/src/simplify.rs crates/ltlf/src/syntax.rs

/root/repo/target/release/deps/libshelley_ltlf-e5fe2d309c3b9a02.rlib: crates/ltlf/src/lib.rs crates/ltlf/src/automaton.rs crates/ltlf/src/check.rs crates/ltlf/src/parser.rs crates/ltlf/src/semantics.rs crates/ltlf/src/simplify.rs crates/ltlf/src/syntax.rs

/root/repo/target/release/deps/libshelley_ltlf-e5fe2d309c3b9a02.rmeta: crates/ltlf/src/lib.rs crates/ltlf/src/automaton.rs crates/ltlf/src/check.rs crates/ltlf/src/parser.rs crates/ltlf/src/semantics.rs crates/ltlf/src/simplify.rs crates/ltlf/src/syntax.rs

crates/ltlf/src/lib.rs:
crates/ltlf/src/automaton.rs:
crates/ltlf/src/check.rs:
crates/ltlf/src/parser.rs:
crates/ltlf/src/semantics.rs:
crates/ltlf/src/simplify.rs:
crates/ltlf/src/syntax.rs:
