/root/repo/target/release/deps/table2_returns-143604280268e530.d: crates/bench/benches/table2_returns.rs

/root/repo/target/release/deps/table2_returns-143604280268e530: crates/bench/benches/table2_returns.rs

crates/bench/benches/table2_returns.rs:
