/root/repo/target/release/deps/shelley_ltlf-d15a1b1bdb3ef148.d: crates/ltlf/src/lib.rs crates/ltlf/src/automaton.rs crates/ltlf/src/check.rs crates/ltlf/src/parser.rs crates/ltlf/src/semantics.rs crates/ltlf/src/simplify.rs crates/ltlf/src/syntax.rs

/root/repo/target/release/deps/shelley_ltlf-d15a1b1bdb3ef148: crates/ltlf/src/lib.rs crates/ltlf/src/automaton.rs crates/ltlf/src/check.rs crates/ltlf/src/parser.rs crates/ltlf/src/semantics.rs crates/ltlf/src/simplify.rs crates/ltlf/src/syntax.rs

crates/ltlf/src/lib.rs:
crates/ltlf/src/automaton.rs:
crates/ltlf/src/check.rs:
crates/ltlf/src/parser.rs:
crates/ltlf/src/semantics.rs:
crates/ltlf/src/simplify.rs:
crates/ltlf/src/syntax.rs:
