/root/repo/target/release/deps/fig2_badsector-e886a8f39ea215a9.d: crates/bench/benches/fig2_badsector.rs

/root/repo/target/release/deps/fig2_badsector-e886a8f39ea215a9: crates/bench/benches/fig2_badsector.rs

crates/bench/benches/fig2_badsector.rs:
