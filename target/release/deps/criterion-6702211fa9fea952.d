/root/repo/target/release/deps/criterion-6702211fa9fea952.d: devtools/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-6702211fa9fea952.rlib: devtools/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-6702211fa9fea952.rmeta: devtools/criterion/src/lib.rs

devtools/criterion/src/lib.rs:
