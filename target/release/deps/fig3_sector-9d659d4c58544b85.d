/root/repo/target/release/deps/fig3_sector-9d659d4c58544b85.d: crates/bench/benches/fig3_sector.rs

/root/repo/target/release/deps/fig3_sector-9d659d4c58544b85: crates/bench/benches/fig3_sector.rs

crates/bench/benches/fig3_sector.rs:
