/root/repo/target/release/deps/criterion-42f740cc6a3e3d21.d: devtools/criterion/src/lib.rs

/root/repo/target/release/deps/criterion-42f740cc6a3e3d21: devtools/criterion/src/lib.rs

devtools/criterion/src/lib.rs:
