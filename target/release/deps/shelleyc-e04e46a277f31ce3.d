/root/repo/target/release/deps/shelleyc-e04e46a277f31ce3.d: crates/cli/src/main.rs

/root/repo/target/release/deps/shelleyc-e04e46a277f31ce3: crates/cli/src/main.rs

crates/cli/src/main.rs:
