/root/repo/target/release/deps/shelley_smv-00f0c8b79363e39d.d: crates/smv/src/lib.rs crates/smv/src/ltl.rs crates/smv/src/model.rs crates/smv/src/translate.rs crates/smv/src/validate.rs

/root/repo/target/release/deps/shelley_smv-00f0c8b79363e39d: crates/smv/src/lib.rs crates/smv/src/ltl.rs crates/smv/src/model.rs crates/smv/src/translate.rs crates/smv/src/validate.rs

crates/smv/src/lib.rs:
crates/smv/src/ltl.rs:
crates/smv/src/model.rs:
crates/smv/src/translate.rs:
crates/smv/src/validate.rs:
