/root/repo/target/release/deps/shelley_smv-d77e13161f6e56c5.d: crates/smv/src/lib.rs crates/smv/src/ltl.rs crates/smv/src/model.rs crates/smv/src/translate.rs crates/smv/src/validate.rs

/root/repo/target/release/deps/libshelley_smv-d77e13161f6e56c5.rlib: crates/smv/src/lib.rs crates/smv/src/ltl.rs crates/smv/src/model.rs crates/smv/src/translate.rs crates/smv/src/validate.rs

/root/repo/target/release/deps/libshelley_smv-d77e13161f6e56c5.rmeta: crates/smv/src/lib.rs crates/smv/src/ltl.rs crates/smv/src/model.rs crates/smv/src/translate.rs crates/smv/src/validate.rs

crates/smv/src/lib.rs:
crates/smv/src/ltl.rs:
crates/smv/src/model.rs:
crates/smv/src/translate.rs:
crates/smv/src/validate.rs:
