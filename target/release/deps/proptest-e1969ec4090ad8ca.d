/root/repo/target/release/deps/proptest-e1969ec4090ad8ca.d: devtools/proptest/src/lib.rs devtools/proptest/src/strategy.rs devtools/proptest/src/test_runner.rs devtools/proptest/src/collection.rs devtools/proptest/src/option.rs

/root/repo/target/release/deps/libproptest-e1969ec4090ad8ca.rlib: devtools/proptest/src/lib.rs devtools/proptest/src/strategy.rs devtools/proptest/src/test_runner.rs devtools/proptest/src/collection.rs devtools/proptest/src/option.rs

/root/repo/target/release/deps/libproptest-e1969ec4090ad8ca.rmeta: devtools/proptest/src/lib.rs devtools/proptest/src/strategy.rs devtools/proptest/src/test_runner.rs devtools/proptest/src/collection.rs devtools/proptest/src/option.rs

devtools/proptest/src/lib.rs:
devtools/proptest/src/strategy.rs:
devtools/proptest/src/test_runner.rs:
devtools/proptest/src/collection.rs:
devtools/proptest/src/option.rs:
