/root/repo/target/release/deps/shelley_bench-93056a6573a63dbb.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/shelley_bench-93056a6573a63dbb: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
