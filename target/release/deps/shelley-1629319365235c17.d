/root/repo/target/release/deps/shelley-1629319365235c17.d: src/lib.rs

/root/repo/target/release/deps/shelley-1629319365235c17: src/lib.rs

src/lib.rs:
