/root/repo/target/release/deps/shelleyc-fd3c7bb6adf35b15.d: crates/cli/src/main.rs

/root/repo/target/release/deps/shelleyc-fd3c7bb6adf35b15: crates/cli/src/main.rs

crates/cli/src/main.rs:
