/root/repo/target/release/deps/scalability-a29306bc5be19948.d: crates/bench/benches/scalability.rs

/root/repo/target/release/deps/scalability-a29306bc5be19948: crates/bench/benches/scalability.rs

crates/bench/benches/scalability.rs:
