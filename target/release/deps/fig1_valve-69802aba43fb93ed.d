/root/repo/target/release/deps/fig1_valve-69802aba43fb93ed.d: crates/bench/benches/fig1_valve.rs

/root/repo/target/release/deps/fig1_valve-69802aba43fb93ed: crates/bench/benches/fig1_valve.rs

crates/bench/benches/fig1_valve.rs:
