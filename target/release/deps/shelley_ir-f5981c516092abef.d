/root/repo/target/release/deps/shelley_ir-f5981c516092abef.d: crates/ir/src/lib.rs crates/ir/src/generate.rs crates/ir/src/infer.rs crates/ir/src/parser.rs crates/ir/src/program.rs crates/ir/src/semantics.rs

/root/repo/target/release/deps/libshelley_ir-f5981c516092abef.rlib: crates/ir/src/lib.rs crates/ir/src/generate.rs crates/ir/src/infer.rs crates/ir/src/parser.rs crates/ir/src/program.rs crates/ir/src/semantics.rs

/root/repo/target/release/deps/libshelley_ir-f5981c516092abef.rmeta: crates/ir/src/lib.rs crates/ir/src/generate.rs crates/ir/src/infer.rs crates/ir/src/parser.rs crates/ir/src/program.rs crates/ir/src/semantics.rs

crates/ir/src/lib.rs:
crates/ir/src/generate.rs:
crates/ir/src/infer.rs:
crates/ir/src/parser.rs:
crates/ir/src/program.rs:
crates/ir/src/semantics.rs:
