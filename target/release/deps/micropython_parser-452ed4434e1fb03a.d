/root/repo/target/release/deps/micropython_parser-452ed4434e1fb03a.d: crates/micropython/src/lib.rs crates/micropython/src/ast.rs crates/micropython/src/lexer.rs crates/micropython/src/parser.rs crates/micropython/src/printer.rs crates/micropython/src/span.rs crates/micropython/src/token.rs crates/micropython/src/visit.rs

/root/repo/target/release/deps/micropython_parser-452ed4434e1fb03a: crates/micropython/src/lib.rs crates/micropython/src/ast.rs crates/micropython/src/lexer.rs crates/micropython/src/parser.rs crates/micropython/src/printer.rs crates/micropython/src/span.rs crates/micropython/src/token.rs crates/micropython/src/visit.rs

crates/micropython/src/lib.rs:
crates/micropython/src/ast.rs:
crates/micropython/src/lexer.rs:
crates/micropython/src/parser.rs:
crates/micropython/src/printer.rs:
crates/micropython/src/span.rs:
crates/micropython/src/token.rs:
crates/micropython/src/visit.rs:
