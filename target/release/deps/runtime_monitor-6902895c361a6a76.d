/root/repo/target/release/deps/runtime_monitor-6902895c361a6a76.d: crates/bench/benches/runtime_monitor.rs

/root/repo/target/release/deps/runtime_monitor-6902895c361a6a76: crates/bench/benches/runtime_monitor.rs

crates/bench/benches/runtime_monitor.rs:
