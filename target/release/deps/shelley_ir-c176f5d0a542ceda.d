/root/repo/target/release/deps/shelley_ir-c176f5d0a542ceda.d: crates/ir/src/lib.rs crates/ir/src/generate.rs crates/ir/src/infer.rs crates/ir/src/parser.rs crates/ir/src/program.rs crates/ir/src/semantics.rs

/root/repo/target/release/deps/shelley_ir-c176f5d0a542ceda: crates/ir/src/lib.rs crates/ir/src/generate.rs crates/ir/src/infer.rs crates/ir/src/parser.rs crates/ir/src/program.rs crates/ir/src/semantics.rs

crates/ir/src/lib.rs:
crates/ir/src/generate.rs:
crates/ir/src/infer.rs:
crates/ir/src/parser.rs:
crates/ir/src/program.rs:
crates/ir/src/semantics.rs:
