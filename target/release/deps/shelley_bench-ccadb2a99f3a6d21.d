/root/repo/target/release/deps/shelley_bench-ccadb2a99f3a6d21.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libshelley_bench-ccadb2a99f3a6d21.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libshelley_bench-ccadb2a99f3a6d21.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
