/root/repo/target/release/deps/lint_passes-43b713304c69d271.d: crates/bench/benches/lint_passes.rs

/root/repo/target/release/deps/lint_passes-43b713304c69d271: crates/bench/benches/lint_passes.rs

crates/bench/benches/lint_passes.rs:
