/root/repo/target/release/deps/table1_annotations-0a318a50f5914692.d: crates/bench/benches/table1_annotations.rs

/root/repo/target/release/deps/table1_annotations-0a318a50f5914692: crates/bench/benches/table1_annotations.rs

crates/bench/benches/table1_annotations.rs:
