/root/repo/target/release/deps/shelley_core-829ca70aafe51cd7.d: crates/core/src/lib.rs crates/core/src/annotations.rs crates/core/src/diagnostics.rs crates/core/src/diagram.rs crates/core/src/extract/mod.rs crates/core/src/extract/cfg.rs crates/core/src/extract/dependency.rs crates/core/src/extract/invocation.rs crates/core/src/extract/lower.rs crates/core/src/integration.rs crates/core/src/lint/mod.rs crates/core/src/lint/init_order.rs crates/core/src/lint/self_calls.rs crates/core/src/lint/unreachable.rs crates/core/src/pipeline.rs crates/core/src/project.rs crates/core/src/spec.rs crates/core/src/stats.rs crates/core/src/system.rs crates/core/src/verify/mod.rs crates/core/src/verify/claims.rs crates/core/src/verify/usage.rs

/root/repo/target/release/deps/shelley_core-829ca70aafe51cd7: crates/core/src/lib.rs crates/core/src/annotations.rs crates/core/src/diagnostics.rs crates/core/src/diagram.rs crates/core/src/extract/mod.rs crates/core/src/extract/cfg.rs crates/core/src/extract/dependency.rs crates/core/src/extract/invocation.rs crates/core/src/extract/lower.rs crates/core/src/integration.rs crates/core/src/lint/mod.rs crates/core/src/lint/init_order.rs crates/core/src/lint/self_calls.rs crates/core/src/lint/unreachable.rs crates/core/src/pipeline.rs crates/core/src/project.rs crates/core/src/spec.rs crates/core/src/stats.rs crates/core/src/system.rs crates/core/src/verify/mod.rs crates/core/src/verify/claims.rs crates/core/src/verify/usage.rs

crates/core/src/lib.rs:
crates/core/src/annotations.rs:
crates/core/src/diagnostics.rs:
crates/core/src/diagram.rs:
crates/core/src/extract/mod.rs:
crates/core/src/extract/cfg.rs:
crates/core/src/extract/dependency.rs:
crates/core/src/extract/invocation.rs:
crates/core/src/extract/lower.rs:
crates/core/src/integration.rs:
crates/core/src/lint/mod.rs:
crates/core/src/lint/init_order.rs:
crates/core/src/lint/self_calls.rs:
crates/core/src/lint/unreachable.rs:
crates/core/src/pipeline.rs:
crates/core/src/project.rs:
crates/core/src/spec.rs:
crates/core/src/stats.rs:
crates/core/src/system.rs:
crates/core/src/verify/mod.rs:
crates/core/src/verify/claims.rs:
crates/core/src/verify/usage.rs:
