/root/repo/target/debug/examples/runtime_guard-8ab91055d0e5a982.d: examples/runtime_guard.rs

/root/repo/target/debug/examples/runtime_guard-8ab91055d0e5a982: examples/runtime_guard.rs

examples/runtime_guard.rs:
