/root/repo/target/debug/examples/quickstart-c7e1c61a760cf8ca.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-c7e1c61a760cf8ca.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
