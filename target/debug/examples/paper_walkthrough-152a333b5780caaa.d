/root/repo/target/debug/examples/paper_walkthrough-152a333b5780caaa.d: examples/paper_walkthrough.rs Cargo.toml

/root/repo/target/debug/examples/libpaper_walkthrough-152a333b5780caaa.rmeta: examples/paper_walkthrough.rs Cargo.toml

examples/paper_walkthrough.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
