/root/repo/target/debug/examples/irrigation-4138ce57b80bdc35.d: examples/irrigation.rs Cargo.toml

/root/repo/target/debug/examples/libirrigation-4138ce57b80bdc35.rmeta: examples/irrigation.rs Cargo.toml

examples/irrigation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
