/root/repo/target/debug/examples/diagrams-ca83b1ffec74b37e.d: examples/diagrams.rs

/root/repo/target/debug/examples/diagrams-ca83b1ffec74b37e: examples/diagrams.rs

examples/diagrams.rs:
