/root/repo/target/debug/examples/quickstart-4815a1a5ae8cd92c.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-4815a1a5ae8cd92c: examples/quickstart.rs

examples/quickstart.rs:
