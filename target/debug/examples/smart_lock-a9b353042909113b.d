/root/repo/target/debug/examples/smart_lock-a9b353042909113b.d: examples/smart_lock.rs Cargo.toml

/root/repo/target/debug/examples/libsmart_lock-a9b353042909113b.rmeta: examples/smart_lock.rs Cargo.toml

examples/smart_lock.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
