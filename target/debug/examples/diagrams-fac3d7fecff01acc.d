/root/repo/target/debug/examples/diagrams-fac3d7fecff01acc.d: examples/diagrams.rs Cargo.toml

/root/repo/target/debug/examples/libdiagrams-fac3d7fecff01acc.rmeta: examples/diagrams.rs Cargo.toml

examples/diagrams.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
