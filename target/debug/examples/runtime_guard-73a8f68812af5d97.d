/root/repo/target/debug/examples/runtime_guard-73a8f68812af5d97.d: examples/runtime_guard.rs Cargo.toml

/root/repo/target/debug/examples/libruntime_guard-73a8f68812af5d97.rmeta: examples/runtime_guard.rs Cargo.toml

examples/runtime_guard.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
