/root/repo/target/debug/examples/irrigation-41c513e3efe68a7b.d: examples/irrigation.rs

/root/repo/target/debug/examples/irrigation-41c513e3efe68a7b: examples/irrigation.rs

examples/irrigation.rs:
