/root/repo/target/debug/examples/paper_walkthrough-bc005e8a5f03848f.d: examples/paper_walkthrough.rs

/root/repo/target/debug/examples/paper_walkthrough-bc005e8a5f03848f: examples/paper_walkthrough.rs

examples/paper_walkthrough.rs:
