/root/repo/target/debug/examples/smart_lock-db8b9b6cbab66fec.d: examples/smart_lock.rs

/root/repo/target/debug/examples/smart_lock-db8b9b6cbab66fec: examples/smart_lock.rs

examples/smart_lock.rs:
