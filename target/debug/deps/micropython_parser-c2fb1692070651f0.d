/root/repo/target/debug/deps/micropython_parser-c2fb1692070651f0.d: crates/micropython/src/lib.rs crates/micropython/src/ast.rs crates/micropython/src/lexer.rs crates/micropython/src/parser.rs crates/micropython/src/printer.rs crates/micropython/src/span.rs crates/micropython/src/token.rs crates/micropython/src/visit.rs Cargo.toml

/root/repo/target/debug/deps/libmicropython_parser-c2fb1692070651f0.rmeta: crates/micropython/src/lib.rs crates/micropython/src/ast.rs crates/micropython/src/lexer.rs crates/micropython/src/parser.rs crates/micropython/src/printer.rs crates/micropython/src/span.rs crates/micropython/src/token.rs crates/micropython/src/visit.rs Cargo.toml

crates/micropython/src/lib.rs:
crates/micropython/src/ast.rs:
crates/micropython/src/lexer.rs:
crates/micropython/src/parser.rs:
crates/micropython/src/printer.rs:
crates/micropython/src/span.rs:
crates/micropython/src/token.rs:
crates/micropython/src/visit.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
