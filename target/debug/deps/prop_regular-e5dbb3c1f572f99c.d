/root/repo/target/debug/deps/prop_regular-e5dbb3c1f572f99c.d: crates/regular/tests/prop_regular.rs Cargo.toml

/root/repo/target/debug/deps/libprop_regular-e5dbb3c1f572f99c.rmeta: crates/regular/tests/prop_regular.rs Cargo.toml

crates/regular/tests/prop_regular.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
