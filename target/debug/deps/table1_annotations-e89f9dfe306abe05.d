/root/repo/target/debug/deps/table1_annotations-e89f9dfe306abe05.d: crates/bench/benches/table1_annotations.rs Cargo.toml

/root/repo/target/debug/deps/libtable1_annotations-e89f9dfe306abe05.rmeta: crates/bench/benches/table1_annotations.rs Cargo.toml

crates/bench/benches/table1_annotations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
