/root/repo/target/debug/deps/fig3_sector-b2eba2eaa6afa776.d: crates/bench/benches/fig3_sector.rs Cargo.toml

/root/repo/target/debug/deps/libfig3_sector-b2eba2eaa6afa776.rmeta: crates/bench/benches/fig3_sector.rs Cargo.toml

crates/bench/benches/fig3_sector.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
