/root/repo/target/debug/deps/shelleyc-327e56ac3ef19437.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/shelleyc-327e56ac3ef19437: crates/cli/src/main.rs

crates/cli/src/main.rs:
