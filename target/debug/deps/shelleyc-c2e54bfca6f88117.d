/root/repo/target/debug/deps/shelleyc-c2e54bfca6f88117.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/shelleyc-c2e54bfca6f88117: crates/cli/src/main.rs

crates/cli/src/main.rs:
