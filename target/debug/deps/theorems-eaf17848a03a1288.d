/root/repo/target/debug/deps/theorems-eaf17848a03a1288.d: crates/ir/tests/theorems.rs Cargo.toml

/root/repo/target/debug/deps/libtheorems-eaf17848a03a1288.rmeta: crates/ir/tests/theorems.rs Cargo.toml

crates/ir/tests/theorems.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
