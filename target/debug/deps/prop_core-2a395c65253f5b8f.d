/root/repo/target/debug/deps/prop_core-2a395c65253f5b8f.d: crates/core/tests/prop_core.rs Cargo.toml

/root/repo/target/debug/deps/libprop_core-2a395c65253f5b8f.rmeta: crates/core/tests/prop_core.rs Cargo.toml

crates/core/tests/prop_core.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
