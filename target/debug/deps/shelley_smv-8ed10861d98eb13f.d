/root/repo/target/debug/deps/shelley_smv-8ed10861d98eb13f.d: crates/smv/src/lib.rs crates/smv/src/ltl.rs crates/smv/src/model.rs crates/smv/src/translate.rs crates/smv/src/validate.rs

/root/repo/target/debug/deps/shelley_smv-8ed10861d98eb13f: crates/smv/src/lib.rs crates/smv/src/ltl.rs crates/smv/src/model.rs crates/smv/src/translate.rs crates/smv/src/validate.rs

crates/smv/src/lib.rs:
crates/smv/src/ltl.rs:
crates/smv/src/model.rs:
crates/smv/src/translate.rs:
crates/smv/src/validate.rs:
