/root/repo/target/debug/deps/proptest-c4aa16ec0794b40f.d: devtools/proptest/src/lib.rs devtools/proptest/src/strategy.rs devtools/proptest/src/test_runner.rs devtools/proptest/src/collection.rs devtools/proptest/src/option.rs

/root/repo/target/debug/deps/proptest-c4aa16ec0794b40f: devtools/proptest/src/lib.rs devtools/proptest/src/strategy.rs devtools/proptest/src/test_runner.rs devtools/proptest/src/collection.rs devtools/proptest/src/option.rs

devtools/proptest/src/lib.rs:
devtools/proptest/src/strategy.rs:
devtools/proptest/src/test_runner.rs:
devtools/proptest/src/collection.rs:
devtools/proptest/src/option.rs:
