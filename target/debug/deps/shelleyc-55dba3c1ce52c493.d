/root/repo/target/debug/deps/shelleyc-55dba3c1ce52c493.d: crates/cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libshelleyc-55dba3c1ce52c493.rmeta: crates/cli/src/main.rs Cargo.toml

crates/cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
