/root/repo/target/debug/deps/prop_translation-cba8711a77b95371.d: crates/smv/tests/prop_translation.rs

/root/repo/target/debug/deps/prop_translation-cba8711a77b95371: crates/smv/tests/prop_translation.rs

crates/smv/tests/prop_translation.rs:
