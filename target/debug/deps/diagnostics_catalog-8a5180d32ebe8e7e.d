/root/repo/target/debug/deps/diagnostics_catalog-8a5180d32ebe8e7e.d: tests/diagnostics_catalog.rs Cargo.toml

/root/repo/target/debug/deps/libdiagnostics_catalog-8a5180d32ebe8e7e.rmeta: tests/diagnostics_catalog.rs Cargo.toml

tests/diagnostics_catalog.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
