/root/repo/target/debug/deps/criterion-4bf67bfd886513d5.d: devtools/criterion/src/lib.rs

/root/repo/target/debug/deps/criterion-4bf67bfd886513d5: devtools/criterion/src/lib.rs

devtools/criterion/src/lib.rs:
