/root/repo/target/debug/deps/prop_monitor-b5ffe6d4eede2a88.d: crates/runtime/tests/prop_monitor.rs

/root/repo/target/debug/deps/prop_monitor-b5ffe6d4eede2a88: crates/runtime/tests/prop_monitor.rs

crates/runtime/tests/prop_monitor.rs:
