/root/repo/target/debug/deps/shelley_bench-7c89e37f39118ed7.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libshelley_bench-7c89e37f39118ed7.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libshelley_bench-7c89e37f39118ed7.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
