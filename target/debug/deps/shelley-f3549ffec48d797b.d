/root/repo/target/debug/deps/shelley-f3549ffec48d797b.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libshelley-f3549ffec48d797b.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
