/root/repo/target/debug/deps/proptest-c4323e95f194d7cb.d: devtools/proptest/src/lib.rs devtools/proptest/src/strategy.rs devtools/proptest/src/test_runner.rs devtools/proptest/src/collection.rs devtools/proptest/src/option.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-c4323e95f194d7cb.rmeta: devtools/proptest/src/lib.rs devtools/proptest/src/strategy.rs devtools/proptest/src/test_runner.rs devtools/proptest/src/collection.rs devtools/proptest/src/option.rs Cargo.toml

devtools/proptest/src/lib.rs:
devtools/proptest/src/strategy.rs:
devtools/proptest/src/test_runner.rs:
devtools/proptest/src/collection.rs:
devtools/proptest/src/option.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
