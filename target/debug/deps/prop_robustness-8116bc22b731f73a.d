/root/repo/target/debug/deps/prop_robustness-8116bc22b731f73a.d: crates/micropython/tests/prop_robustness.rs Cargo.toml

/root/repo/target/debug/deps/libprop_robustness-8116bc22b731f73a.rmeta: crates/micropython/tests/prop_robustness.rs Cargo.toml

crates/micropython/tests/prop_robustness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
