/root/repo/target/debug/deps/shelley_smv-52ff8e0f08cc1e3a.d: crates/smv/src/lib.rs crates/smv/src/ltl.rs crates/smv/src/model.rs crates/smv/src/translate.rs crates/smv/src/validate.rs Cargo.toml

/root/repo/target/debug/deps/libshelley_smv-52ff8e0f08cc1e3a.rmeta: crates/smv/src/lib.rs crates/smv/src/ltl.rs crates/smv/src/model.rs crates/smv/src/translate.rs crates/smv/src/validate.rs Cargo.toml

crates/smv/src/lib.rs:
crates/smv/src/ltl.rs:
crates/smv/src/model.rs:
crates/smv/src/translate.rs:
crates/smv/src/validate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
