/root/repo/target/debug/deps/shelley_bench-9cd723c623d1b136.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/shelley_bench-9cd723c623d1b136: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
