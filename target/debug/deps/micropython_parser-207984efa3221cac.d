/root/repo/target/debug/deps/micropython_parser-207984efa3221cac.d: crates/micropython/src/lib.rs crates/micropython/src/ast.rs crates/micropython/src/lexer.rs crates/micropython/src/parser.rs crates/micropython/src/printer.rs crates/micropython/src/span.rs crates/micropython/src/token.rs crates/micropython/src/visit.rs

/root/repo/target/debug/deps/micropython_parser-207984efa3221cac: crates/micropython/src/lib.rs crates/micropython/src/ast.rs crates/micropython/src/lexer.rs crates/micropython/src/parser.rs crates/micropython/src/printer.rs crates/micropython/src/span.rs crates/micropython/src/token.rs crates/micropython/src/visit.rs

crates/micropython/src/lib.rs:
crates/micropython/src/ast.rs:
crates/micropython/src/lexer.rs:
crates/micropython/src/parser.rs:
crates/micropython/src/printer.rs:
crates/micropython/src/span.rs:
crates/micropython/src/token.rs:
crates/micropython/src/visit.rs:
