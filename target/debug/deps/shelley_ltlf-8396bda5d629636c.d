/root/repo/target/debug/deps/shelley_ltlf-8396bda5d629636c.d: crates/ltlf/src/lib.rs crates/ltlf/src/automaton.rs crates/ltlf/src/check.rs crates/ltlf/src/parser.rs crates/ltlf/src/semantics.rs crates/ltlf/src/simplify.rs crates/ltlf/src/syntax.rs

/root/repo/target/debug/deps/shelley_ltlf-8396bda5d629636c: crates/ltlf/src/lib.rs crates/ltlf/src/automaton.rs crates/ltlf/src/check.rs crates/ltlf/src/parser.rs crates/ltlf/src/semantics.rs crates/ltlf/src/simplify.rs crates/ltlf/src/syntax.rs

crates/ltlf/src/lib.rs:
crates/ltlf/src/automaton.rs:
crates/ltlf/src/check.rs:
crates/ltlf/src/parser.rs:
crates/ltlf/src/semantics.rs:
crates/ltlf/src/simplify.rs:
crates/ltlf/src/syntax.rs:
