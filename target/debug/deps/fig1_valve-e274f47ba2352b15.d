/root/repo/target/debug/deps/fig1_valve-e274f47ba2352b15.d: crates/bench/benches/fig1_valve.rs Cargo.toml

/root/repo/target/debug/deps/libfig1_valve-e274f47ba2352b15.rmeta: crates/bench/benches/fig1_valve.rs Cargo.toml

crates/bench/benches/fig1_valve.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
