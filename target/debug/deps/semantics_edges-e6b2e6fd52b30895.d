/root/repo/target/debug/deps/semantics_edges-e6b2e6fd52b30895.d: tests/semantics_edges.rs

/root/repo/target/debug/deps/semantics_edges-e6b2e6fd52b30895: tests/semantics_edges.rs

tests/semantics_edges.rs:
