/root/repo/target/debug/deps/generated_systems-484dbdfe1a52d75e.d: tests/generated_systems.rs

/root/repo/target/debug/deps/generated_systems-484dbdfe1a52d75e: tests/generated_systems.rs

tests/generated_systems.rs:
