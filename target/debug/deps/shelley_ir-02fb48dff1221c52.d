/root/repo/target/debug/deps/shelley_ir-02fb48dff1221c52.d: crates/ir/src/lib.rs crates/ir/src/generate.rs crates/ir/src/infer.rs crates/ir/src/parser.rs crates/ir/src/program.rs crates/ir/src/semantics.rs

/root/repo/target/debug/deps/shelley_ir-02fb48dff1221c52: crates/ir/src/lib.rs crates/ir/src/generate.rs crates/ir/src/infer.rs crates/ir/src/parser.rs crates/ir/src/program.rs crates/ir/src/semantics.rs

crates/ir/src/lib.rs:
crates/ir/src/generate.rs:
crates/ir/src/infer.rs:
crates/ir/src/parser.rs:
crates/ir/src/program.rs:
crates/ir/src/semantics.rs:
