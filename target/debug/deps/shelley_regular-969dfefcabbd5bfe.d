/root/repo/target/debug/deps/shelley_regular-969dfefcabbd5bfe.d: crates/regular/src/lib.rs crates/regular/src/derivative.rs crates/regular/src/dfa.rs crates/regular/src/dot.rs crates/regular/src/enumerate.rs crates/regular/src/minimize.rs crates/regular/src/nfa.rs crates/regular/src/ops.rs crates/regular/src/parser.rs crates/regular/src/regex.rs crates/regular/src/symbol.rs crates/regular/src/to_regex.rs Cargo.toml

/root/repo/target/debug/deps/libshelley_regular-969dfefcabbd5bfe.rmeta: crates/regular/src/lib.rs crates/regular/src/derivative.rs crates/regular/src/dfa.rs crates/regular/src/dot.rs crates/regular/src/enumerate.rs crates/regular/src/minimize.rs crates/regular/src/nfa.rs crates/regular/src/ops.rs crates/regular/src/parser.rs crates/regular/src/regex.rs crates/regular/src/symbol.rs crates/regular/src/to_regex.rs Cargo.toml

crates/regular/src/lib.rs:
crates/regular/src/derivative.rs:
crates/regular/src/dfa.rs:
crates/regular/src/dot.rs:
crates/regular/src/enumerate.rs:
crates/regular/src/minimize.rs:
crates/regular/src/nfa.rs:
crates/regular/src/ops.rs:
crates/regular/src/parser.rs:
crates/regular/src/regex.rs:
crates/regular/src/symbol.rs:
crates/regular/src/to_regex.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
