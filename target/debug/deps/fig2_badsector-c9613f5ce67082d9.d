/root/repo/target/debug/deps/fig2_badsector-c9613f5ce67082d9.d: crates/bench/benches/fig2_badsector.rs Cargo.toml

/root/repo/target/debug/deps/libfig2_badsector-c9613f5ce67082d9.rmeta: crates/bench/benches/fig2_badsector.rs Cargo.toml

crates/bench/benches/fig2_badsector.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
