/root/repo/target/debug/deps/shelley_core-77cd17c95798cf2e.d: crates/core/src/lib.rs crates/core/src/annotations.rs crates/core/src/diagnostics.rs crates/core/src/diagram.rs crates/core/src/extract/mod.rs crates/core/src/extract/cfg.rs crates/core/src/extract/dependency.rs crates/core/src/extract/invocation.rs crates/core/src/extract/lower.rs crates/core/src/integration.rs crates/core/src/lint/mod.rs crates/core/src/lint/init_order.rs crates/core/src/lint/self_calls.rs crates/core/src/lint/unreachable.rs crates/core/src/pipeline.rs crates/core/src/project.rs crates/core/src/spec.rs crates/core/src/stats.rs crates/core/src/system.rs crates/core/src/verify/mod.rs crates/core/src/verify/claims.rs crates/core/src/verify/usage.rs Cargo.toml

/root/repo/target/debug/deps/libshelley_core-77cd17c95798cf2e.rmeta: crates/core/src/lib.rs crates/core/src/annotations.rs crates/core/src/diagnostics.rs crates/core/src/diagram.rs crates/core/src/extract/mod.rs crates/core/src/extract/cfg.rs crates/core/src/extract/dependency.rs crates/core/src/extract/invocation.rs crates/core/src/extract/lower.rs crates/core/src/integration.rs crates/core/src/lint/mod.rs crates/core/src/lint/init_order.rs crates/core/src/lint/self_calls.rs crates/core/src/lint/unreachable.rs crates/core/src/pipeline.rs crates/core/src/project.rs crates/core/src/spec.rs crates/core/src/stats.rs crates/core/src/system.rs crates/core/src/verify/mod.rs crates/core/src/verify/claims.rs crates/core/src/verify/usage.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/annotations.rs:
crates/core/src/diagnostics.rs:
crates/core/src/diagram.rs:
crates/core/src/extract/mod.rs:
crates/core/src/extract/cfg.rs:
crates/core/src/extract/dependency.rs:
crates/core/src/extract/invocation.rs:
crates/core/src/extract/lower.rs:
crates/core/src/integration.rs:
crates/core/src/lint/mod.rs:
crates/core/src/lint/init_order.rs:
crates/core/src/lint/self_calls.rs:
crates/core/src/lint/unreachable.rs:
crates/core/src/pipeline.rs:
crates/core/src/project.rs:
crates/core/src/spec.rs:
crates/core/src/stats.rs:
crates/core/src/system.rs:
crates/core/src/verify/mod.rs:
crates/core/src/verify/claims.rs:
crates/core/src/verify/usage.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
