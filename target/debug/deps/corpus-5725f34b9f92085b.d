/root/repo/target/debug/deps/corpus-5725f34b9f92085b.d: tests/corpus.rs tests/../examples_py/paper.py tests/../examples_py/sector.py tests/../examples_py/greenhouse.py

/root/repo/target/debug/deps/corpus-5725f34b9f92085b: tests/corpus.rs tests/../examples_py/paper.py tests/../examples_py/sector.py tests/../examples_py/greenhouse.py

tests/corpus.rs:
tests/../examples_py/paper.py:
tests/../examples_py/sector.py:
tests/../examples_py/greenhouse.py:
