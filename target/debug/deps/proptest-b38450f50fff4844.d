/root/repo/target/debug/deps/proptest-b38450f50fff4844.d: devtools/proptest/src/lib.rs devtools/proptest/src/strategy.rs devtools/proptest/src/test_runner.rs devtools/proptest/src/collection.rs devtools/proptest/src/option.rs

/root/repo/target/debug/deps/libproptest-b38450f50fff4844.rlib: devtools/proptest/src/lib.rs devtools/proptest/src/strategy.rs devtools/proptest/src/test_runner.rs devtools/proptest/src/collection.rs devtools/proptest/src/option.rs

/root/repo/target/debug/deps/libproptest-b38450f50fff4844.rmeta: devtools/proptest/src/lib.rs devtools/proptest/src/strategy.rs devtools/proptest/src/test_runner.rs devtools/proptest/src/collection.rs devtools/proptest/src/option.rs

devtools/proptest/src/lib.rs:
devtools/proptest/src/strategy.rs:
devtools/proptest/src/test_runner.rs:
devtools/proptest/src/collection.rs:
devtools/proptest/src/option.rs:
