/root/repo/target/debug/deps/prop_roundtrip-38171fa8583be7d3.d: crates/micropython/tests/prop_roundtrip.rs Cargo.toml

/root/repo/target/debug/deps/libprop_roundtrip-38171fa8583be7d3.rmeta: crates/micropython/tests/prop_roundtrip.rs Cargo.toml

crates/micropython/tests/prop_roundtrip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
