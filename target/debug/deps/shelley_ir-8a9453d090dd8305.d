/root/repo/target/debug/deps/shelley_ir-8a9453d090dd8305.d: crates/ir/src/lib.rs crates/ir/src/generate.rs crates/ir/src/infer.rs crates/ir/src/parser.rs crates/ir/src/program.rs crates/ir/src/semantics.rs

/root/repo/target/debug/deps/libshelley_ir-8a9453d090dd8305.rlib: crates/ir/src/lib.rs crates/ir/src/generate.rs crates/ir/src/infer.rs crates/ir/src/parser.rs crates/ir/src/program.rs crates/ir/src/semantics.rs

/root/repo/target/debug/deps/libshelley_ir-8a9453d090dd8305.rmeta: crates/ir/src/lib.rs crates/ir/src/generate.rs crates/ir/src/infer.rs crates/ir/src/parser.rs crates/ir/src/program.rs crates/ir/src/semantics.rs

crates/ir/src/lib.rs:
crates/ir/src/generate.rs:
crates/ir/src/infer.rs:
crates/ir/src/parser.rs:
crates/ir/src/program.rs:
crates/ir/src/semantics.rs:
