/root/repo/target/debug/deps/shelley_ltlf-cf8b202912e496eb.d: crates/ltlf/src/lib.rs crates/ltlf/src/automaton.rs crates/ltlf/src/check.rs crates/ltlf/src/parser.rs crates/ltlf/src/semantics.rs crates/ltlf/src/simplify.rs crates/ltlf/src/syntax.rs Cargo.toml

/root/repo/target/debug/deps/libshelley_ltlf-cf8b202912e496eb.rmeta: crates/ltlf/src/lib.rs crates/ltlf/src/automaton.rs crates/ltlf/src/check.rs crates/ltlf/src/parser.rs crates/ltlf/src/semantics.rs crates/ltlf/src/simplify.rs crates/ltlf/src/syntax.rs Cargo.toml

crates/ltlf/src/lib.rs:
crates/ltlf/src/automaton.rs:
crates/ltlf/src/check.rs:
crates/ltlf/src/parser.rs:
crates/ltlf/src/semantics.rs:
crates/ltlf/src/simplify.rs:
crates/ltlf/src/syntax.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
