/root/repo/target/debug/deps/cli-568d0e25b32f5d74.d: crates/cli/tests/cli.rs Cargo.toml

/root/repo/target/debug/deps/libcli-568d0e25b32f5d74.rmeta: crates/cli/tests/cli.rs Cargo.toml

crates/cli/tests/cli.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_shelleyc=placeholder:shelleyc
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
