/root/repo/target/debug/deps/theorems-c07c6a8aefb5bdc0.d: crates/ir/tests/theorems.rs

/root/repo/target/debug/deps/theorems-c07c6a8aefb5bdc0: crates/ir/tests/theorems.rs

crates/ir/tests/theorems.rs:
