/root/repo/target/debug/deps/diagnostics_catalog-80ab29d2b9ba5da6.d: tests/diagnostics_catalog.rs

/root/repo/target/debug/deps/diagnostics_catalog-80ab29d2b9ba5da6: tests/diagnostics_catalog.rs

tests/diagnostics_catalog.rs:
