/root/repo/target/debug/deps/shelley_regular-9ec8ab41f602febd.d: crates/regular/src/lib.rs crates/regular/src/derivative.rs crates/regular/src/dfa.rs crates/regular/src/dot.rs crates/regular/src/enumerate.rs crates/regular/src/minimize.rs crates/regular/src/nfa.rs crates/regular/src/ops.rs crates/regular/src/parser.rs crates/regular/src/regex.rs crates/regular/src/symbol.rs crates/regular/src/to_regex.rs

/root/repo/target/debug/deps/libshelley_regular-9ec8ab41f602febd.rlib: crates/regular/src/lib.rs crates/regular/src/derivative.rs crates/regular/src/dfa.rs crates/regular/src/dot.rs crates/regular/src/enumerate.rs crates/regular/src/minimize.rs crates/regular/src/nfa.rs crates/regular/src/ops.rs crates/regular/src/parser.rs crates/regular/src/regex.rs crates/regular/src/symbol.rs crates/regular/src/to_regex.rs

/root/repo/target/debug/deps/libshelley_regular-9ec8ab41f602febd.rmeta: crates/regular/src/lib.rs crates/regular/src/derivative.rs crates/regular/src/dfa.rs crates/regular/src/dot.rs crates/regular/src/enumerate.rs crates/regular/src/minimize.rs crates/regular/src/nfa.rs crates/regular/src/ops.rs crates/regular/src/parser.rs crates/regular/src/regex.rs crates/regular/src/symbol.rs crates/regular/src/to_regex.rs

crates/regular/src/lib.rs:
crates/regular/src/derivative.rs:
crates/regular/src/dfa.rs:
crates/regular/src/dot.rs:
crates/regular/src/enumerate.rs:
crates/regular/src/minimize.rs:
crates/regular/src/nfa.rs:
crates/regular/src/ops.rs:
crates/regular/src/parser.rs:
crates/regular/src/regex.rs:
crates/regular/src/symbol.rs:
crates/regular/src/to_regex.rs:
