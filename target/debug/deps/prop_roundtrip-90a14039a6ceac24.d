/root/repo/target/debug/deps/prop_roundtrip-90a14039a6ceac24.d: crates/micropython/tests/prop_roundtrip.rs

/root/repo/target/debug/deps/prop_roundtrip-90a14039a6ceac24: crates/micropython/tests/prop_roundtrip.rs

crates/micropython/tests/prop_roundtrip.rs:
