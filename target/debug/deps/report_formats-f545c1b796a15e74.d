/root/repo/target/debug/deps/report_formats-f545c1b796a15e74.d: tests/report_formats.rs

/root/repo/target/debug/deps/report_formats-f545c1b796a15e74: tests/report_formats.rs

tests/report_formats.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
