/root/repo/target/debug/deps/cli-2bfea1d0f6739b4d.d: crates/cli/tests/cli.rs

/root/repo/target/debug/deps/cli-2bfea1d0f6739b4d: crates/cli/tests/cli.rs

crates/cli/tests/cli.rs:

# env-dep:CARGO_BIN_EXE_shelleyc=/root/repo/target/debug/shelleyc
