/root/repo/target/debug/deps/prop_core-0ff04315830cce8b.d: crates/core/tests/prop_core.rs

/root/repo/target/debug/deps/prop_core-0ff04315830cce8b: crates/core/tests/prop_core.rs

crates/core/tests/prop_core.rs:
