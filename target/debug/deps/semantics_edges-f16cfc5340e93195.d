/root/repo/target/debug/deps/semantics_edges-f16cfc5340e93195.d: tests/semantics_edges.rs Cargo.toml

/root/repo/target/debug/deps/libsemantics_edges-f16cfc5340e93195.rmeta: tests/semantics_edges.rs Cargo.toml

tests/semantics_edges.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
