/root/repo/target/debug/deps/shelley_ltlf-dc3563057e076370.d: crates/ltlf/src/lib.rs crates/ltlf/src/automaton.rs crates/ltlf/src/check.rs crates/ltlf/src/parser.rs crates/ltlf/src/semantics.rs crates/ltlf/src/simplify.rs crates/ltlf/src/syntax.rs

/root/repo/target/debug/deps/libshelley_ltlf-dc3563057e076370.rlib: crates/ltlf/src/lib.rs crates/ltlf/src/automaton.rs crates/ltlf/src/check.rs crates/ltlf/src/parser.rs crates/ltlf/src/semantics.rs crates/ltlf/src/simplify.rs crates/ltlf/src/syntax.rs

/root/repo/target/debug/deps/libshelley_ltlf-dc3563057e076370.rmeta: crates/ltlf/src/lib.rs crates/ltlf/src/automaton.rs crates/ltlf/src/check.rs crates/ltlf/src/parser.rs crates/ltlf/src/semantics.rs crates/ltlf/src/simplify.rs crates/ltlf/src/syntax.rs

crates/ltlf/src/lib.rs:
crates/ltlf/src/automaton.rs:
crates/ltlf/src/check.rs:
crates/ltlf/src/parser.rs:
crates/ltlf/src/semantics.rs:
crates/ltlf/src/simplify.rs:
crates/ltlf/src/syntax.rs:
