/root/repo/target/debug/deps/smv_export-56d7f665611e7833.d: crates/bench/benches/smv_export.rs Cargo.toml

/root/repo/target/debug/deps/libsmv_export-56d7f665611e7833.rmeta: crates/bench/benches/smv_export.rs Cargo.toml

crates/bench/benches/smv_export.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
