/root/repo/target/debug/deps/shelleyc-62ec4af45b63f30a.d: crates/cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libshelleyc-62ec4af45b63f30a.rmeta: crates/cli/src/main.rs Cargo.toml

crates/cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
