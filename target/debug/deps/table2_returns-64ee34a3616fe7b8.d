/root/repo/target/debug/deps/table2_returns-64ee34a3616fe7b8.d: crates/bench/benches/table2_returns.rs Cargo.toml

/root/repo/target/debug/deps/libtable2_returns-64ee34a3616fe7b8.rmeta: crates/bench/benches/table2_returns.rs Cargo.toml

crates/bench/benches/table2_returns.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
