/root/repo/target/debug/deps/prop_regular-efa2be72f1044669.d: crates/regular/tests/prop_regular.rs

/root/repo/target/debug/deps/prop_regular-efa2be72f1044669: crates/regular/tests/prop_regular.rs

crates/regular/tests/prop_regular.rs:
