/root/repo/target/debug/deps/shelley-fc4600fd0c041d1c.d: src/lib.rs

/root/repo/target/debug/deps/shelley-fc4600fd0c041d1c: src/lib.rs

src/lib.rs:
