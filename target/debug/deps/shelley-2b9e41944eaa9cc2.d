/root/repo/target/debug/deps/shelley-2b9e41944eaa9cc2.d: src/lib.rs

/root/repo/target/debug/deps/libshelley-2b9e41944eaa9cc2.rlib: src/lib.rs

/root/repo/target/debug/deps/libshelley-2b9e41944eaa9cc2.rmeta: src/lib.rs

src/lib.rs:
