/root/repo/target/debug/deps/fig4_inference-7aefe3fdfd0d343a.d: crates/bench/benches/fig4_inference.rs Cargo.toml

/root/repo/target/debug/deps/libfig4_inference-7aefe3fdfd0d343a.rmeta: crates/bench/benches/fig4_inference.rs Cargo.toml

crates/bench/benches/fig4_inference.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
