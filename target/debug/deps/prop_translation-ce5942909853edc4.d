/root/repo/target/debug/deps/prop_translation-ce5942909853edc4.d: crates/smv/tests/prop_translation.rs Cargo.toml

/root/repo/target/debug/deps/libprop_translation-ce5942909853edc4.rmeta: crates/smv/tests/prop_translation.rs Cargo.toml

crates/smv/tests/prop_translation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
