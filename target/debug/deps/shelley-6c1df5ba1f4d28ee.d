/root/repo/target/debug/deps/shelley-6c1df5ba1f4d28ee.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libshelley-6c1df5ba1f4d28ee.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
