/root/repo/target/debug/deps/prop_ltlf-ff8bc03f17dd6c05.d: crates/ltlf/tests/prop_ltlf.rs

/root/repo/target/debug/deps/prop_ltlf-ff8bc03f17dd6c05: crates/ltlf/tests/prop_ltlf.rs

crates/ltlf/tests/prop_ltlf.rs:
