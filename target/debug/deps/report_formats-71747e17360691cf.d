/root/repo/target/debug/deps/report_formats-71747e17360691cf.d: tests/report_formats.rs Cargo.toml

/root/repo/target/debug/deps/libreport_formats-71747e17360691cf.rmeta: tests/report_formats.rs Cargo.toml

tests/report_formats.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
