/root/repo/target/debug/deps/shelley_ltlf-d78abb59a51a3591.d: crates/ltlf/src/lib.rs crates/ltlf/src/automaton.rs crates/ltlf/src/check.rs crates/ltlf/src/parser.rs crates/ltlf/src/semantics.rs crates/ltlf/src/simplify.rs crates/ltlf/src/syntax.rs Cargo.toml

/root/repo/target/debug/deps/libshelley_ltlf-d78abb59a51a3591.rmeta: crates/ltlf/src/lib.rs crates/ltlf/src/automaton.rs crates/ltlf/src/check.rs crates/ltlf/src/parser.rs crates/ltlf/src/semantics.rs crates/ltlf/src/simplify.rs crates/ltlf/src/syntax.rs Cargo.toml

crates/ltlf/src/lib.rs:
crates/ltlf/src/automaton.rs:
crates/ltlf/src/check.rs:
crates/ltlf/src/parser.rs:
crates/ltlf/src/semantics.rs:
crates/ltlf/src/simplify.rs:
crates/ltlf/src/syntax.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
