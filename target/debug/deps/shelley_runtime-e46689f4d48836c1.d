/root/repo/target/debug/deps/shelley_runtime-e46689f4d48836c1.d: crates/runtime/src/lib.rs crates/runtime/src/device.rs crates/runtime/src/monitor.rs crates/runtime/src/pins.rs

/root/repo/target/debug/deps/libshelley_runtime-e46689f4d48836c1.rlib: crates/runtime/src/lib.rs crates/runtime/src/device.rs crates/runtime/src/monitor.rs crates/runtime/src/pins.rs

/root/repo/target/debug/deps/libshelley_runtime-e46689f4d48836c1.rmeta: crates/runtime/src/lib.rs crates/runtime/src/device.rs crates/runtime/src/monitor.rs crates/runtime/src/pins.rs

crates/runtime/src/lib.rs:
crates/runtime/src/device.rs:
crates/runtime/src/monitor.rs:
crates/runtime/src/pins.rs:
