/root/repo/target/debug/deps/shelley_runtime-22a316019bd01e60.d: crates/runtime/src/lib.rs crates/runtime/src/device.rs crates/runtime/src/monitor.rs crates/runtime/src/pins.rs Cargo.toml

/root/repo/target/debug/deps/libshelley_runtime-22a316019bd01e60.rmeta: crates/runtime/src/lib.rs crates/runtime/src/device.rs crates/runtime/src/monitor.rs crates/runtime/src/pins.rs Cargo.toml

crates/runtime/src/lib.rs:
crates/runtime/src/device.rs:
crates/runtime/src/monitor.rs:
crates/runtime/src/pins.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
