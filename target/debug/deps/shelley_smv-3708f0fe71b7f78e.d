/root/repo/target/debug/deps/shelley_smv-3708f0fe71b7f78e.d: crates/smv/src/lib.rs crates/smv/src/ltl.rs crates/smv/src/model.rs crates/smv/src/translate.rs crates/smv/src/validate.rs

/root/repo/target/debug/deps/libshelley_smv-3708f0fe71b7f78e.rlib: crates/smv/src/lib.rs crates/smv/src/ltl.rs crates/smv/src/model.rs crates/smv/src/translate.rs crates/smv/src/validate.rs

/root/repo/target/debug/deps/libshelley_smv-3708f0fe71b7f78e.rmeta: crates/smv/src/lib.rs crates/smv/src/ltl.rs crates/smv/src/model.rs crates/smv/src/translate.rs crates/smv/src/validate.rs

crates/smv/src/lib.rs:
crates/smv/src/ltl.rs:
crates/smv/src/model.rs:
crates/smv/src/translate.rs:
crates/smv/src/validate.rs:
