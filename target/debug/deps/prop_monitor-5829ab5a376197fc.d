/root/repo/target/debug/deps/prop_monitor-5829ab5a376197fc.d: crates/runtime/tests/prop_monitor.rs Cargo.toml

/root/repo/target/debug/deps/libprop_monitor-5829ab5a376197fc.rmeta: crates/runtime/tests/prop_monitor.rs Cargo.toml

crates/runtime/tests/prop_monitor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
