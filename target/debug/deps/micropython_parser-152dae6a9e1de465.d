/root/repo/target/debug/deps/micropython_parser-152dae6a9e1de465.d: crates/micropython/src/lib.rs crates/micropython/src/ast.rs crates/micropython/src/lexer.rs crates/micropython/src/parser.rs crates/micropython/src/printer.rs crates/micropython/src/span.rs crates/micropython/src/token.rs crates/micropython/src/visit.rs

/root/repo/target/debug/deps/libmicropython_parser-152dae6a9e1de465.rlib: crates/micropython/src/lib.rs crates/micropython/src/ast.rs crates/micropython/src/lexer.rs crates/micropython/src/parser.rs crates/micropython/src/printer.rs crates/micropython/src/span.rs crates/micropython/src/token.rs crates/micropython/src/visit.rs

/root/repo/target/debug/deps/libmicropython_parser-152dae6a9e1de465.rmeta: crates/micropython/src/lib.rs crates/micropython/src/ast.rs crates/micropython/src/lexer.rs crates/micropython/src/parser.rs crates/micropython/src/printer.rs crates/micropython/src/span.rs crates/micropython/src/token.rs crates/micropython/src/visit.rs

crates/micropython/src/lib.rs:
crates/micropython/src/ast.rs:
crates/micropython/src/lexer.rs:
crates/micropython/src/parser.rs:
crates/micropython/src/printer.rs:
crates/micropython/src/span.rs:
crates/micropython/src/token.rs:
crates/micropython/src/visit.rs:
