/root/repo/target/debug/deps/criterion-daf80911d2770044.d: devtools/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-daf80911d2770044.rlib: devtools/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-daf80911d2770044.rmeta: devtools/criterion/src/lib.rs

devtools/criterion/src/lib.rs:
