/root/repo/target/debug/deps/lint_passes-e2e6535394935e49.d: crates/bench/benches/lint_passes.rs Cargo.toml

/root/repo/target/debug/deps/liblint_passes-e2e6535394935e49.rmeta: crates/bench/benches/lint_passes.rs Cargo.toml

crates/bench/benches/lint_passes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
