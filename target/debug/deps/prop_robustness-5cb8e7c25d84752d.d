/root/repo/target/debug/deps/prop_robustness-5cb8e7c25d84752d.d: crates/micropython/tests/prop_robustness.rs

/root/repo/target/debug/deps/prop_robustness-5cb8e7c25d84752d: crates/micropython/tests/prop_robustness.rs

crates/micropython/tests/prop_robustness.rs:
