/root/repo/target/debug/deps/paper_artifacts-be4c42a1fe6ebbd9.d: tests/paper_artifacts.rs

/root/repo/target/debug/deps/paper_artifacts-be4c42a1fe6ebbd9: tests/paper_artifacts.rs

tests/paper_artifacts.rs:
