/root/repo/target/debug/deps/runtime_monitor-a1de9e05ede93292.d: crates/bench/benches/runtime_monitor.rs Cargo.toml

/root/repo/target/debug/deps/libruntime_monitor-a1de9e05ede93292.rmeta: crates/bench/benches/runtime_monitor.rs Cargo.toml

crates/bench/benches/runtime_monitor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
