/root/repo/target/debug/deps/shelley_bench-d956d2be0ccd1bc6.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libshelley_bench-d956d2be0ccd1bc6.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
