/root/repo/target/debug/deps/corpus-02d468a0e1401e13.d: tests/corpus.rs tests/../examples_py/paper.py tests/../examples_py/sector.py tests/../examples_py/greenhouse.py Cargo.toml

/root/repo/target/debug/deps/libcorpus-02d468a0e1401e13.rmeta: tests/corpus.rs tests/../examples_py/paper.py tests/../examples_py/sector.py tests/../examples_py/greenhouse.py Cargo.toml

tests/corpus.rs:
tests/../examples_py/paper.py:
tests/../examples_py/sector.py:
tests/../examples_py/greenhouse.py:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
