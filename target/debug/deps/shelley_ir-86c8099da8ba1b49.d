/root/repo/target/debug/deps/shelley_ir-86c8099da8ba1b49.d: crates/ir/src/lib.rs crates/ir/src/generate.rs crates/ir/src/infer.rs crates/ir/src/parser.rs crates/ir/src/program.rs crates/ir/src/semantics.rs Cargo.toml

/root/repo/target/debug/deps/libshelley_ir-86c8099da8ba1b49.rmeta: crates/ir/src/lib.rs crates/ir/src/generate.rs crates/ir/src/infer.rs crates/ir/src/parser.rs crates/ir/src/program.rs crates/ir/src/semantics.rs Cargo.toml

crates/ir/src/lib.rs:
crates/ir/src/generate.rs:
crates/ir/src/infer.rs:
crates/ir/src/parser.rs:
crates/ir/src/program.rs:
crates/ir/src/semantics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
