/root/repo/target/debug/deps/criterion-ced776b124132058.d: devtools/criterion/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion-ced776b124132058.rmeta: devtools/criterion/src/lib.rs Cargo.toml

devtools/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
