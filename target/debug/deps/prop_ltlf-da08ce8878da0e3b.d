/root/repo/target/debug/deps/prop_ltlf-da08ce8878da0e3b.d: crates/ltlf/tests/prop_ltlf.rs Cargo.toml

/root/repo/target/debug/deps/libprop_ltlf-da08ce8878da0e3b.rmeta: crates/ltlf/tests/prop_ltlf.rs Cargo.toml

crates/ltlf/tests/prop_ltlf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
