/root/repo/target/debug/deps/generated_systems-f544f9b9161497af.d: tests/generated_systems.rs Cargo.toml

/root/repo/target/debug/deps/libgenerated_systems-f544f9b9161497af.rmeta: tests/generated_systems.rs Cargo.toml

tests/generated_systems.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
