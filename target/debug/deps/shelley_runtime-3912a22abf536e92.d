/root/repo/target/debug/deps/shelley_runtime-3912a22abf536e92.d: crates/runtime/src/lib.rs crates/runtime/src/device.rs crates/runtime/src/monitor.rs crates/runtime/src/pins.rs

/root/repo/target/debug/deps/shelley_runtime-3912a22abf536e92: crates/runtime/src/lib.rs crates/runtime/src/device.rs crates/runtime/src/monitor.rs crates/runtime/src/pins.rs

crates/runtime/src/lib.rs:
crates/runtime/src/device.rs:
crates/runtime/src/monitor.rs:
crates/runtime/src/pins.rs:
