//! # shelley
//!
//! A complete Rust reproduction of *Formalizing Model Inference of
//! MicroPython* (Mão de Ferro, Cogumbreiro, Martins — DSN-W 2023): the
//! **Shelley** framework for model checking call ordering on hierarchical
//! MicroPython systems.
//!
//! This facade crate re-exports the whole stack:
//!
//! | Crate | Contents |
//! |---|---|
//! | [`regular`] | regular expressions, Brzozowski derivatives, NFAs/DFAs, Hopcroft minimization, language algebra, DOT |
//! | [`ir`] | the paper's imperative calculus: trace semantics `s ⊢ l ∈ p`, behavior inference `⟦p⟧`, Theorems 1–2 executably |
//! | [`micropython`] | indentation-aware lexer + parser for the analyzed MicroPython subset |
//! | [`ltlf`] | linear temporal logic on finite traces: claims, progression, monitor DFAs, model checking |
//! | [`core`] | Shelley proper: annotations (Table 1), specs, dependency graphs (§3.1), behavior extraction (§3.2), invocation analysis, subsystem-usage + claim verification with the paper's error messages, diagrams (Figs. 1–3) |
//! | [`smv`] | the NFA → NuSMV translation of §5, with an explicit-state validation checker |
//! | [`runtime`] | runtime enforcement of the same models: spec monitors and simulated GPIO |
//!
//! # Quickstart
//!
//! ```
//! use shelley::Checker;
//!
//! let verdict = Checker::new().check_source(r#"
//! @sys
//! class Valve:
//!     @op_initial
//!     def test(self):
//!         if self.ok():
//!             return ["open"]
//!         else:
//!             return ["clean"]
//!
//!     @op
//!     def open(self):
//!         return ["close"]
//!
//!     @op_final
//!     def close(self):
//!         return ["test"]
//!
//!     @op_final
//!     def clean(self):
//!         return ["test"]
//! "#)?;
//! assert!(verdict.report.passed());
//! # Ok::<(), shelley::CheckError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use micropython_parser as micropython;
pub use shelley_core as core;
pub use shelley_ir as ir;
pub use shelley_ltlf as ltlf;
pub use shelley_regular as regular;
pub use shelley_runtime as runtime;
pub use shelley_smv as smv;

pub use shelley_core::{
    build_integration, build_systems, CheckError, CheckReport, Checked, Checker, ClaimViolation,
    System, SystemSet, UsageViolation, Workspace, WorkspaceStats,
};
