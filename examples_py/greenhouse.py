# A realistic greenhouse controller: three hardware protocols, two
# mid-level composites, one top-level scheduler. Verifies clean.

@sys
class Valve:
    def __init__(self):
        self.control = Pin(5, OUT)
        self.status = Pin(6, IN)

    @op_initial
    def test(self):
        if self.status.value():
            return ["open"]
        else:
            return ["flush"]

    @op
    def open(self):
        self.control.on()
        return ["close"]

    @op_final
    def close(self):
        self.control.off()
        return ["test"]

    @op_final
    def flush(self):
        return ["test"]

@sys
class Fan:
    @op_initial
    def spin_up(self):
        return ["spin_down"]

    @op_final
    def spin_down(self):
        return ["spin_up"]

@sys
class MoistureSensor:
    @op_initial_final
    def sample(self):
        return ["sample"]

@claim("(!w.open) W w.test")
@sys(["w", "m"])
class Bed:
    def __init__(self):
        self.w = Valve()
        self.m = MoistureSensor()

    @op_initial_final
    def water_if_dry(self):
        self.m.sample()
        match self.w.test():
            case ["open"]:
                self.w.open()
                self.w.close()
                return ["water_if_dry"]
            case ["flush"]:
                self.w.flush()
                return ["water_if_dry"]

@claim("G (!f.spin_up | F f.spin_down)")
@sys(["f"])
class Vent:
    def __init__(self):
        self.f = Fan()

    @op_initial_final
    def cycle(self):
        self.f.spin_up()
        self.f.spin_down()
        return ["cycle"]

@sys(["b1", "b2", "v"])
class Greenhouse:
    def __init__(self):
        self.b1 = Bed()
        self.b2 = Bed()
        self.v = Vent()

    @op_initial_final
    def morning(self):
        for i in range(2):
            self.b1.water_if_dry()
            self.b2.water_if_dry()
        self.v.cycle()
        return ["evening"]

    @op_final
    def evening(self):
        while hot:
            self.v.cycle()
        return ["morning"]
