@sys
class Sector:
    @op_initial
    def open_a(self):
        if which:
            return ["close_a", "open_b"]
        else:
            return ["clean_a"]

    @op
    def clean_a(self):
        return ["open_a"]

    @op
    def close_a(self):
        return ["open_a"]

    @op_final
    def open_b(self):
        if which:
            return []
        else:
            return []
