//! The paper's industrial use case: a battery-operated wireless controller
//! that switches water valves according to a scheduled irrigation plan.
//!
//! This example builds the *corrected* sector (the paper's `BadSector`
//! opens the valves across two operations and fails verification; here each
//! sector operation leaves its valves closed), verifies the whole
//! three-level hierarchy (Valve → Sector → Controller), and then drives a
//! small in-Rust valve simulation with traces sampled from the verified
//! integration model — demonstrating that every sampled schedule respects
//! the physical valve protocol.
//!
//! Run with `cargo run --example irrigation`.

use shelley::core::Checker;
use shelley::regular::ops::strip_markers;
use shelley::regular::Dfa;
use std::collections::HashMap;

const SOURCE: &str = r#"
@sys
class Valve:
    def __init__(self):
        self.control = Pin(27, OUT)
        self.clean_pin = Pin(28, OUT)
        self.status = Pin(29, IN)

    @op_initial
    def test(self):
        if self.status.value():
            return ["open"]
        else:
            return ["clean"]

    @op
    def open(self):
        self.control.on()
        return ["close"]

    @op_final
    def close(self):
        self.control.off()
        return ["test"]

    @op_final
    def clean(self):
        self.clean_pin.on()
        return ["test"]

@claim("(!a.open) W a.test")
@claim("(!b.open) W b.test")
@sys(["a", "b"])
class Sector:
    def __init__(self):
        self.a = Valve()
        self.b = Valve()

    @op_initial_final
    def water(self):
        match self.a.test():
            case ["open"]:
                self.a.open()
                match self.b.test():
                    case ["open"]:
                        self.b.open()
                        self.a.close()
                        self.b.close()
                        return ["maintain"]
                    case ["clean"]:
                        self.b.clean()
                        self.a.close()
                        return ["maintain"]
            case ["clean"]:
                self.a.clean()
                return ["maintain"]

    @op_final
    def maintain(self):
        match self.a.test():
            case ["open"]:
                self.a.open()
                self.a.close()
                return []
            case ["clean"]:
                self.a.clean()
                return []
"#;

/// A simulated electromechanical valve enforcing the physical protocol.
#[derive(Debug, Default)]
struct SimValve {
    tested: bool,
    open: bool,
    cycles: u32,
    faults: u32,
}

impl SimValve {
    fn apply(&mut self, op: &str) -> Result<(), String> {
        match op {
            "test" => {
                self.tested = true;
                Ok(())
            }
            "open" => {
                if !self.tested {
                    return Err("opened without testing".into());
                }
                if self.open {
                    return Err("opened twice".into());
                }
                self.open = true;
                Ok(())
            }
            "close" => {
                if !self.open {
                    return Err("closed while not open".into());
                }
                self.open = false;
                self.tested = false;
                self.cycles += 1;
                Ok(())
            }
            "clean" => {
                if !self.tested {
                    return Err("cleaned without testing".into());
                }
                self.tested = false;
                self.faults += 1;
                Ok(())
            }
            other => Err(format!("unknown valve operation `{other}`")),
        }
    }

    fn is_safe_at_rest(&self) -> bool {
        !self.open
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let checked = Checker::new().check_source(SOURCE)?;
    println!("== verification ==");
    if !checked.report.passed() {
        println!("{}", checked.report.render(None));
        return Err("irrigation system failed verification".into());
    }
    println!(
        "OK: {} systems verified, {} warnings\n",
        checked.systems.len(),
        checked.report.diagnostics.warnings().count()
    );

    // Sample complete schedules from the verified integration model and
    // replay them against the physical simulation.
    let (_, integration) = checked
        .integrations
        .iter()
        .find(|(name, _)| name == "Sector")
        .expect("Sector is composite");
    let alphabet = integration.nfa.alphabet().clone();
    let dfa = Dfa::from_nfa(&integration.nfa);
    let schedules = dfa.enumerate_words(12, 40);
    println!(
        "== replaying {} verified schedules on the valve simulator ==",
        schedules.len()
    );

    let mut total_events = 0usize;
    for schedule in &schedules {
        let mut valves: HashMap<&str, SimValve> = HashMap::new();
        valves.insert("a", SimValve::default());
        valves.insert("b", SimValve::default());
        let events = strip_markers(schedule, &integration.markers);
        for event in &events {
            let name = alphabet.name(*event);
            let (field, op) = name.split_once('.').expect("qualified event");
            valves
                .get_mut(field)
                .expect("known valve")
                .apply(op)
                .map_err(|e| format!("schedule {name}: {e}"))?;
            total_events += 1;
        }
        for (field, valve) in &valves {
            assert!(
                valve.is_safe_at_rest(),
                "valve {field} left open after a complete schedule!"
            );
        }
    }
    println!("replayed {total_events} valve events — no valve was ever left open\n");

    // Show the longest schedule for flavor.
    if let Some(longest) = schedules.iter().max_by_key(|s| s.len()) {
        println!("longest sampled schedule:");
        println!("  {}", alphabet.render_word(longest));
    }
    Ok(())
}
