//! A second CPS domain: a battery-powered smart door lock.
//!
//! The lock's motor must never be driven while the latch sensor is
//! uncalibrated, and every alarm must eventually be acknowledged. This
//! example first verifies a *buggy* controller — Shelley finds both an
//! invalid subsystem usage and a violated temporal claim, with
//! counterexamples — then verifies the fixed controller.
//!
//! Run with `cargo run --example smart_lock`.

use shelley::core::Checker;

const HARDWARE: &str = r#"
@sys
class Motor:
    @op_initial
    def calibrate(self):
        return ["drive_open", "drive_closed"]

    @op
    def drive_open(self):
        return ["drive_closed"]

    @op_final
    def drive_closed(self):
        return ["drive_open", "calibrate"]

@sys
class Siren:
    @op_initial
    def arm(self):
        return ["sound", "disarm"]

    @op
    def sound(self):
        return ["ack"]

    @op
    def ack(self):
        return ["disarm", "sound"]

    @op_final
    def disarm(self):
        return ["arm"]
"#;

const BUGGY: &str = r#"
@claim("G (!siren.sound | F siren.ack)")
@sys(["motor", "siren"])
class BuggyLock:
    def __init__(self):
        self.motor = Motor()
        self.siren = Siren()

    @op_initial_final
    def unlock(self):
        self.motor.drive_open()
        self.motor.drive_closed()
        return ["panic"]

    @op_final
    def panic(self):
        self.siren.arm()
        self.siren.sound()
        return []
"#;

const FIXED: &str = r#"
@claim("G (!siren.sound | F siren.ack)")
@claim("(!motor.drive_open) W motor.calibrate")
@sys(["motor", "siren"])
class SafeLock:
    def __init__(self):
        self.motor = Motor()
        self.siren = Siren()

    @op_initial_final
    def unlock(self):
        self.motor.calibrate()
        self.motor.drive_open()
        self.motor.drive_closed()
        return ["panic", "unlock"]

    @op_final
    def panic(self):
        self.siren.arm()
        self.siren.sound()
        self.siren.ack()
        self.siren.disarm()
        return ["unlock"]
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== the buggy controller ==");
    let buggy = Checker::new().check_source(&format!("{HARDWARE}{BUGGY}"))?;
    assert!(!buggy.report.passed());
    for (class, v) in &buggy.report.usage_violations {
        println!("[{class}]");
        print!("{}", v.render());
        println!();
    }
    for (class, v) in &buggy.report.claim_violations {
        println!("[{class}]");
        print!("{}", v.render());
        println!();
    }

    println!("== the fixed controller ==");
    let fixed = Checker::new().check_source(&format!("{HARDWARE}{FIXED}"))?;
    if fixed.report.passed() {
        println!(
            "OK: {} systems verified ({} warnings)",
            fixed.systems.len(),
            fixed.report.diagnostics.warnings().count()
        );
    } else {
        println!("{}", fixed.report.render(None));
        return Err("expected the fixed lock to verify".into());
    }
    Ok(())
}
