//! A guided reproduction of every artifact in *Formalizing Model Inference
//! of MicroPython* (DSN-W 2023): Listings 2.1/2.2/3.1, Figures 1–4,
//! Examples 1–3, and both error messages of §2.2.
//!
//! Run with `cargo run --example paper_walkthrough`.

use shelley::core::extract::dependency::DependencyGraph;
use shelley::core::{spec_diagram, Checker};
use shelley::ir::{denote, enumerate_traces, EnumConfig, Program, Status, TraceChecker};
use shelley::regular::Alphabet;

/// Listing 2.1 (class Valve) and Listing 2.2 (class BadSector), verbatim.
const LISTINGS_2_1_AND_2_2: &str = r#"
@sys
class Valve:
    def __init__(self):
        self.control = Pin(27, OUT)
        self.clean_pin = Pin(28, OUT)
        self.status = Pin(29, IN)

    @op_initial
    def test(self):
        if self.status.value():
            return ["open"]
        else:
            return ["clean"]

    @op
    def open(self):
        self.control.on()
        return ["close"]

    @op_final
    def close(self):
        self.control.off()
        return ["test"]

    @op_final
    def clean(self):
        self.clean_pin.on()
        return ["test"]

@claim("(!a.open) W b.open")
@sys(["a", "b"])
class BadSector:
    def __init__(self):
        self.a = Valve()
        self.b = Valve()

    @op_initial_final
    def open_a(self):
        match self.a.test():
            case ["open"]:
                self.a.open()
                return ["open_b"]
            case ["clean"]:
                self.a.clean()
                print("a failed")
                return []

    @op_final
    def open_b(self):
        match self.b.test():
            case ["open"]:
                self.b.open()
                self.a.close()
                self.b.close()
                return []
            case ["clean"]:
                self.b.clean()
                print("b failed")
                self.a.close()
                return []
"#;

/// Listing 3.1 (class Sector, code elided to returns) as an annotated
/// class so the §3.1 dependency graph of Fig. 3 can be extracted.
const LISTING_3_1: &str = r#"
@sys
class Sector:
    @op_initial
    def open_a(self):
        if which:
            return ["close_a", "open_b"]
        else:
            return ["clean_a"]

    @op
    def clean_a(self):
        return ["open_a"]

    @op
    def close_a(self):
        return ["open_a"]

    @op_final
    def open_b(self):
        if which:
            return []
        else:
            return []
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    banner("Section 2: model checking with Shelley");
    let checked = Checker::new().check_source(LISTINGS_2_1_AND_2_2)?;

    println!("-- Figure 1: Valve diagram (Graphviz DOT) --");
    let valve = checked.systems.get("Valve").unwrap();
    println!("{}", spec_diagram(&valve.spec));

    println!("-- §2.2 error 1: INVALID SUBSYSTEM USAGE --");
    for (_, violation) in &checked.report.usage_violations {
        print!("{}", violation.render());
    }

    println!();
    println!("-- §2.2 error 2: FAIL TO MEET REQUIREMENT --");
    for (_, violation) in &checked.report.claim_violations {
        print!("{}", violation.render());
    }

    banner("Section 3.1: method dependency extraction (Figure 3)");
    let sector_checked = Checker::new().check_source(LISTING_3_1)?;
    let sector = sector_checked.systems.get("Sector").unwrap();
    let graph = DependencyGraph::from_spec(&sector.spec);
    println!(
        "Sector has {} entry nodes and {} exit nodes",
        graph.entry_count(),
        graph.exit_count()
    );
    println!("{}", graph.to_dot());

    banner("Section 3.2: the calculus of Figure 4");
    // The program of Examples 1-3:
    // loop(*){ a(); if(*){ b(); return } else { c() } }
    let mut ab = Alphabet::new();
    let (a, b, c) = (ab.intern("a"), ab.intern("b"), ab.intern("c"));
    let program = Program::loop_(Program::seq(
        Program::call(a),
        Program::if_(
            Program::seq(Program::call(b), Program::ret(0)),
            Program::call(c),
        ),
    ));
    println!("program p = {}", program.display(&ab));

    let checker = TraceChecker::new(&program);
    println!(
        "Example 1:  0 ⊢ [a, c, a, c] ∈ p   … {}",
        checker.derivable(Status::Ongoing, &[a, c, a, c])
    );
    println!(
        "Example 2:  R ⊢ [a, c, a, b] ∈ p   … {}",
        checker.derivable(Status::Returned, &[a, c, a, b])
    );

    let (ongoing, returned) = denote(&program);
    println!("Example 3:  ⟦p⟧ = ({}, {{{}}})", ongoing.display(&ab), {
        returned
            .iter()
            .map(|r| r.display(&ab).to_string())
            .collect::<Vec<_>>()
            .join(", ")
    });

    // Theorems 1-2, demonstrated on this program: every derivable trace is
    // inferred and vice versa.
    let behavior = shelley::ir::infer(&program);
    let traces = enumerate_traces(&program, EnumConfig::default());
    let sound = traces.iter().all(|(_, l)| behavior.matches(l));
    println!(
        "Theorem 1 (soundness) on {} enumerated traces … {}",
        traces.len(),
        sound
    );
    let dfa = shelley::regular::Dfa::from_nfa(&shelley::regular::Nfa::from_regex(
        &behavior,
        std::sync::Arc::new(ab),
    ));
    let complete = dfa
        .enumerate_words(6, 500)
        .iter()
        .all(|w| checker.in_language(w));
    println!("Theorem 2 (completeness) on enumerated words … {complete}");
    println!(
        "Corollary 1: the behavior compiles to a DFA with {} states",
        dfa.num_states()
    );

    Ok(())
}

fn banner(title: &str) {
    println!();
    println!("=== {title} ===");
    println!();
}
