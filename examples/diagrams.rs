//! Regenerates the paper's figures as Graphviz DOT files under
//! `target/diagrams/`.
//!
//! * `fig1_valve.dot` — the Valve operation diagram (Figure 1);
//! * `fig2_badsector.dot` — the BadSector integration automaton whose
//!   accepting run `open_a, a.test, a.open` is the invalid usage shown in
//!   Figure 2;
//! * `fig3_sector.dot` — the Sector method-dependency graph (Figure 3).
//!
//! Run with `cargo run --example diagrams`, then e.g.
//! `dot -Tpng target/diagrams/fig1_valve.dot -o fig1.png`.

use shelley::core::extract::dependency::DependencyGraph;
use shelley::core::{build_integration, integration_diagram, spec_diagram, Checker};
use std::fs;
use std::path::Path;

const PAPER: &str = r#"
@sys
class Valve:
    @op_initial
    def test(self):
        if ok:
            return ["open"]
        else:
            return ["clean"]

    @op
    def open(self):
        return ["close"]

    @op_final
    def close(self):
        return ["test"]

    @op_final
    def clean(self):
        return ["test"]

@sys(["a", "b"])
class BadSector:
    def __init__(self):
        self.a = Valve()
        self.b = Valve()

    @op_initial_final
    def open_a(self):
        match self.a.test():
            case ["open"]:
                self.a.open()
                return ["open_b"]
            case ["clean"]:
                self.a.clean()
                return []

    @op_final
    def open_b(self):
        match self.b.test():
            case ["open"]:
                self.b.open()
                self.a.close()
                self.b.close()
                return []
            case ["clean"]:
                self.b.clean()
                self.a.close()
                return []

@sys
class Sector:
    @op_initial
    def open_a(self):
        if which:
            return ["close_a", "open_b"]
        else:
            return ["clean_a"]

    @op
    def clean_a(self):
        return ["open_a"]

    @op
    def close_a(self):
        return ["open_a"]

    @op_final
    def open_b(self):
        if which:
            return []
        else:
            return []
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let checked = Checker::new().check_source(PAPER)?;
    let out_dir = Path::new("target/diagrams");
    fs::create_dir_all(out_dir)?;

    let valve = checked.systems.get("Valve").unwrap();
    fs::write(out_dir.join("fig1_valve.dot"), spec_diagram(&valve.spec))?;

    let badsector = checked.systems.get("BadSector").unwrap();
    let integration = build_integration(badsector);
    fs::write(
        out_dir.join("fig2_badsector.dot"),
        integration_diagram("BadSector", &integration),
    )?;

    let sector = checked.systems.get("Sector").unwrap();
    fs::write(
        out_dir.join("fig3_sector.dot"),
        DependencyGraph::from_spec(&sector.spec).to_dot(),
    )?;

    for f in ["fig1_valve.dot", "fig2_badsector.dot", "fig3_sector.dot"] {
        println!("wrote target/diagrams/{f}");
    }
    Ok(())
}
