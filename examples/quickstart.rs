//! Quickstart: verify a MicroPython class hierarchy in a few lines.
//!
//! Run with `cargo run --example quickstart`.

use shelley::core::spec_diagram;
use shelley::Checker;

const SOURCE: &str = r#"
@sys
class Led:
    @op_initial
    def on(self):
        return ["off"]

    @op_final
    def off(self):
        return ["on"]

@claim("G (!led.on | F led.off)")
@sys(["led"])
class Blinker:
    def __init__(self):
        self.led = Led()

    @op_initial_final
    def blink(self):
        for i in range(3):
            self.led.on()
            self.led.off()
        return []
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One call runs the full pipeline: parse → extract → verify.
    let checked = Checker::new().check_source(SOURCE)?;

    println!("== verification ==");
    if checked.report.passed() {
        println!("OK: {} system(s) verified\n", checked.systems.len());
    } else {
        println!("{}", checked.report.render(None));
    }

    // The inferred model of the base class, as a DOT diagram.
    let led = checked.systems.get("Led").expect("Led is a @sys class");
    println!("== Led operation diagram (Graphviz) ==");
    println!("{}", spec_diagram(&led.spec));

    // The extracted behavior of the composite's operation.
    let blinker = checked.systems.get("Blinker").expect("Blinker exists");
    let info = blinker.composite().expect("Blinker is composite");
    let lowered = &info.methods["blink"];
    let behavior = shelley::ir::infer(&lowered.program);
    println!("== inferred behavior of Blinker.blink ==");
    println!("{}", behavior.display(&info.alphabet));

    Ok(())
}
