//! Static + dynamic enforcement from one model.
//!
//! Shelley's extracted model serves twice: `Checker::check_source` verifies code
//! *statically*, and `shelley-runtime`'s monitor enforces the same protocol
//! *dynamically*. This example runs a correct controller and a buggy
//! controller against a monitored valve: the correct one completes its
//! cycles, the buggy one (the `BadSector` pattern — opening and walking
//! away) is stopped at run time before the hardware is stranded.
//!
//! Run with `cargo run --example runtime_guard`.

use shelley::runtime::{DeviceError, MonitoredValve};
use shelley::Checker;

const VALVE: &str = r#"
@sys
class Valve:
    @op_initial
    def test(self):
        if self.status.value():
            return ["open"]
        else:
            return ["clean"]

    @op
    def open(self):
        return ["close"]

    @op_final
    def close(self):
        return ["test"]

    @op_final
    def clean(self):
        return ["test"]
"#;

fn correct_controller(valve: &mut MonitoredValve) -> Result<u32, DeviceError> {
    let mut watering_cycles = 0;
    for day in 0..3 {
        // The physical world: the valve silts up on day 1.
        valve.set_status(day != 1);
        if valve.test()? {
            valve.open()?;
            valve.close()?;
            watering_cycles += 1;
        } else {
            valve.clean()?;
        }
    }
    Ok(watering_cycles)
}

fn buggy_controller(valve: &mut MonitoredValve) -> Result<(), DeviceError> {
    valve.set_status(true);
    valve.test()?;
    valve.open()?;
    // ... forgets to close — then tries to test again next day:
    valve.test()?;
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let checked = Checker::new().check_source(VALVE)?;
    assert!(checked.report.passed());
    let spec = &checked.systems.get("Valve").unwrap().spec;

    println!("== correct controller ==");
    let mut valve = MonitoredValve::new(spec);
    let cycles = correct_controller(&mut valve)?;
    assert!(valve.can_finish() && valve.is_safe());
    println!(
        "completed {cycles} watering cycles; history: {}",
        valve.history().join(" → ")
    );

    println!();
    println!("== buggy controller (the BadSector pattern) ==");
    let mut valve = MonitoredValve::new(spec);
    match buggy_controller(&mut valve) {
        Err(DeviceError::Protocol(e)) => {
            println!("stopped at run time: {e}");
            println!(
                "history up to the violation: {}",
                valve.history().join(" → ")
            );
            // The monitor refused before the hardware was touched again;
            // the valve is still mid-protocol but not silently abandoned.
            assert!(!valve.can_finish());
        }
        other => return Err(format!("expected a protocol violation, got {other:?}").into()),
    }
    Ok(())
}
