//! `langbench` — machine-readable summaries of the language-engine
//! performance story.
//!
//! Three artifacts, written next to the workspace root:
//!
//! * `BENCH_lang.json` — the lazy-vs-eager separation: the `lang_views`
//!   adversarial workload (claim `F a0 & ... & F a{n-1}` against the model
//!   `a0*`, negated monitor ~2^n states) at a sweep of sizes, measured on
//!   both engines.
//! * `BENCH_perf.json` — the bitset-vs-`BTreeSet` state-engine trajectory:
//!   subset construction and exhaustive joint BFS on an exponential-DFA
//!   family, each timed on the `StateSet`/`CompiledNfa` engine and the
//!   retained reference engine, plus the antichain-vs-classic inclusion
//!   engines and Hopcroft-vs-Moore minimization. Each row records size,
//!   wall-ns, states visited, and peak subset size so later PRs can prove
//!   regressions or improvements against it.
//! * `BENCH_sym.json` — the symbolic-vs-explicit claim-backend
//!   separation: the same `∧ F aᵢ` claim family, but against the model
//!   `Σⁿ`, whose reachable product frontier is genuinely exponential —
//!   the explicit joint search must enumerate it while the BDD engine
//!   carries each breadth-first ring as one diagram.
//!
//! The JSON is hand-rolled — the workspace is offline and carries no serde.
//!
//! Run with `cargo run -p langbench --release [LANG_OUT [PERF_OUT [SYM_OUT]]]`.

use shelley_bench::adversarial_claim;
use shelley_core::system::build_systems;
use shelley_core::{analyze_class, Checker};
use shelley_ltlf::{check_claim, to_dfa, Formula, MonitorView};
use shelley_regular::antichain;
use shelley_regular::lang::{self, Complement, Lang, NfaView, NfaViewRef};
use shelley_regular::{ops, Alphabet, Dfa, Nfa, Regex, Symbol};
use shelley_symbolic::check_claim_counted;
use std::collections::{BTreeSet, HashSet, VecDeque};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

/// Median-of-`reps` wall time of `f`, in nanoseconds.
fn time<T>(reps: usize, mut f: impl FnMut() -> T) -> u128 {
    let mut samples: Vec<u128> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            std::hint::black_box(f());
            t.elapsed().as_nanos()
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

// ---------------------------------------------------------------------------
// BENCH_lang.json: lazy vs eager claim checking (unchanged workload).

/// One measured size of the adversarial claim workload.
struct LangRow {
    n: usize,
    lazy_visited: usize,
    eager_states: usize,
    lazy_ns: u128,
    eager_ns: u128,
}

fn measure_lang(n: usize) -> LangRow {
    let (ab, claim, model) = adversarial_claim(n);
    let markers = BTreeSet::new();
    let bad = claim.negate();

    let lazy_visited =
        ops::shortest_joint_word_counted(&model, &MonitorView::new(&bad, ab.clone()), &markers)
            .visited;
    let eager_states = to_dfa(&bad, ab.clone()).num_states();

    let reps = if n >= 12 { 5 } else { 20 };
    let lazy_ns = time(reps, || {
        assert!(!check_claim(&model, &claim, &markers).holds());
    });
    let eager_ns = time(reps, || {
        let monitor = to_dfa(&bad, ab.clone());
        ops::shortest_joint_word(&model, &monitor, &markers).expect("claim is violated")
    });

    LangRow {
        n,
        lazy_visited,
        eager_states,
        lazy_ns,
        eager_ns,
    }
}

fn lang_report() -> (String, bool) {
    let rows: Vec<LangRow> = [4, 6, 8, 10, 12].into_iter().map(measure_lang).collect();

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"lang_views\",\n");
    json.push_str(
        "  \"workload\": \"claim F a0 & ... & F a{n-1} vs model a0* (negated monitor ~2^n states)\",\n",
    );
    json.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let speedup = r.eager_ns as f64 / r.lazy_ns.max(1) as f64;
        let ratio = r.lazy_visited as f64 / r.eager_states.max(1) as f64;
        let _ = write!(
            json,
            "    {{\"n\": {}, \"lazy_visited_states\": {}, \"eager_monitor_states\": {}, \
             \"state_ratio\": {:.4}, \"lazy_ns\": {}, \"eager_ns\": {}, \"speedup\": {:.1}}}",
            r.n, r.lazy_visited, r.eager_states, ratio, r.lazy_ns, r.eager_ns, speedup
        );
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");

    // The acceptance gate, checked at the largest size: the lazy engine
    // visits ≤ 10% of the eager monitor's states and is ≥ 5× faster.
    let last = rows.last().expect("nonempty sweep");
    let gate_states = last.lazy_visited * 10 <= last.eager_states;
    let gate_time = last.eager_ns >= 5 * last.lazy_ns;
    let _ = writeln!(
        json,
        "  \"gate\": {{\"n\": {}, \"lazy_visits_at_most_10pct\": {}, \"lazy_at_least_5x_faster\": {}}}",
        last.n, gate_states, gate_time
    );
    json.push_str("}\n");
    (json, gate_states && gate_time)
}

// ---------------------------------------------------------------------------
// BENCH_sym.json: symbolic BDD backend vs explicit joint search.

/// `∧_{i<n} F aᵢ` against the model `Σⁿ` over an `n`-symbol alphabet.
///
/// Unlike the `lang_views` family (whose model `a0*` keeps the reachable
/// product linear), every length-`k` prefix here reaches a distinct
/// monitor residual per *set* of symbols seen so far — the product
/// frontier really is exponential, and the explicit engine must enumerate
/// it state by state before the first accepting node appears at depth
/// `n`. The claim is violated (e.g. `a0ⁿ` never sees `a1`), and every
/// accepted word has length `n`, so shortest witnesses have length `n`
/// on every backend.
fn many_state_family(n: usize) -> (Arc<Alphabet>, Formula, Nfa) {
    let mut ab = Alphabet::new();
    let syms: Vec<_> = (0..n).map(|i| ab.intern(&format!("a{i}"))).collect();
    let ab = Arc::new(ab);
    let claim = syms
        .iter()
        .map(|&s| Formula::eventually(Formula::atom(s)))
        .reduce(Formula::and)
        .expect("n >= 1");
    let sigma = syms
        .iter()
        .map(|&s| Regex::sym(s))
        .reduce(Regex::union)
        .expect("n >= 1");
    let mut re = sigma.clone();
    for _ in 1..n {
        re = Regex::concat(re, sigma.clone());
    }
    (ab.clone(), claim, Nfa::from_regex(&re, ab))
}

/// What a budgeted explicit product search produced.
enum BudgetedSearch {
    /// A shortest violating word of this length was found.
    Decided { witness_len: usize },
    /// The budget ran out with no verdict.
    Aborted,
}

/// The explicit product search — model subsets × progression-monitor
/// residuals, breadth-first — capped at `budget` discovered product
/// states. Returns the verdict (for this family, always a violation when
/// it finishes) plus the number of states discovered.
fn explicit_budgeted(
    model: &Nfa,
    bad: &Formula,
    ab: Arc<Alphabet>,
    budget: usize,
) -> (BudgetedSearch, usize) {
    let view = NfaView::new(model);
    let monitor = MonitorView::new(bad, ab.clone());
    let nsyms = ab.len();
    type Node<'a> = (<NfaView<'a> as Lang>::State, <MonitorView as Lang>::State);
    let start: Node = (view.start(), monitor.start());
    if view.is_accepting(&start.0) && monitor.is_accepting(&start.1) {
        return (BudgetedSearch::Decided { witness_len: 0 }, 1);
    }
    let mut seen: HashSet<Node> = HashSet::from([start.clone()]);
    let mut queue: VecDeque<(Node, usize)> = VecDeque::from([(start, 0)]);
    while let Some((node, depth)) = queue.pop_front() {
        for s in 0..nsyms {
            let sym = Symbol::from_index(s);
            let next = (view.step(&node.0, sym), monitor.step(&node.1, sym));
            if seen.contains(&next) {
                continue;
            }
            if view.is_accepting(&next.0) && monitor.is_accepting(&next.1) {
                return (
                    BudgetedSearch::Decided {
                        witness_len: depth + 1,
                    },
                    seen.len() + 1,
                );
            }
            seen.insert(next.clone());
            if seen.len() >= budget {
                return (BudgetedSearch::Aborted, seen.len());
            }
            queue.push_back((next, depth + 1));
        }
    }
    // The whole product was exhausted without an accepting node: the
    // claim holds. The family never takes this branch.
    (BudgetedSearch::Aborted, seen.len())
}

/// One measured size where both engines run to completion.
struct SymRow {
    n: usize,
    product_states: usize,
    bdd_nodes: usize,
    explicit_ns: u128,
    symbolic_ns: u128,
}

/// The state budget the n=16 showcase instance must exceed explicitly.
const SYM_BUDGET: usize = 100_000;

fn measure_sym(n: usize) -> SymRow {
    let (ab, claim, model) = many_state_family(n);
    let markers = BTreeSet::new();
    let bad = claim.negate();

    let (decided, product_states) = explicit_budgeted(&model, &bad, ab.clone(), SYM_BUDGET * 100);
    assert!(
        matches!(decided, BudgetedSearch::Decided { witness_len } if witness_len == n),
        "family claim must be violated at witness length n"
    );
    let search = check_claim_counted(&model, &claim, &markers);
    assert_eq!(search.layers, n + 1, "one breadth-first ring per position");
    let bdd_nodes = search.bdd_nodes;

    let reps = if n >= 10 { 3 } else { 10 };
    let explicit_ns = time(reps, || {
        assert!(!check_claim(&model, &claim, &markers).holds());
    });
    let symbolic_ns = time(reps, || {
        assert!(!shelley_symbolic::check_claim(&model, &claim, &markers).holds());
    });

    SymRow {
        n,
        product_states,
        bdd_nodes,
        explicit_ns,
        symbolic_ns,
    }
}

fn sym_report() -> (String, bool) {
    let rows: Vec<SymRow> = [4, 8, 10, 12].into_iter().map(measure_sym).collect();

    // The showcase instance: at n = 16 the explicit engine blows through
    // the state budget undecided, while the symbolic engine returns a
    // shortest witness.
    const SHOWCASE_N: usize = 16;
    let (ab, claim, model) = many_state_family(SHOWCASE_N);
    let markers = BTreeSet::new();
    let bad = claim.negate();
    let t = Instant::now();
    let (verdict, explicit_states) = explicit_budgeted(&model, &bad, ab, SYM_BUDGET);
    let explicit_aborted = matches!(verdict, BudgetedSearch::Aborted);
    let explicit_abort_ns = t.elapsed().as_nanos();
    let t = Instant::now();
    let search = check_claim_counted(&model, &claim, &markers);
    let symbolic_ns = t.elapsed().as_nanos();
    let symbolic_witness_len = match &search.outcome {
        shelley_ltlf::ClaimOutcome::Violated { counterexample } => Some(counterexample.len()),
        shelley_ltlf::ClaimOutcome::Holds => None,
    };

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"symbolic_backend\",\n");
    json.push_str(
        "  \"workload\": \"claim F a0 & ... & F a{n-1} vs model Sigma^n (exponential product frontier)\",\n",
    );
    json.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let speedup = r.explicit_ns as f64 / r.symbolic_ns.max(1) as f64;
        let _ = write!(
            json,
            "    {{\"n\": {}, \"explicit_product_states\": {}, \"bdd_nodes\": {}, \
             \"explicit_ns\": {}, \"symbolic_ns\": {}, \"speedup\": {:.2}}}",
            r.n, r.product_states, r.bdd_nodes, r.explicit_ns, r.symbolic_ns, speedup
        );
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"showcase\": {{\"n\": {SHOWCASE_N}, \"state_budget\": {SYM_BUDGET}, \
         \"explicit_aborted\": {explicit_aborted}, \"explicit_states_at_abort\": {explicit_states}, \
         \"explicit_abort_ns\": {explicit_abort_ns}, \"symbolic_witness_len\": {}, \
         \"symbolic_bdd_nodes\": {}, \"symbolic_ns\": {symbolic_ns}}},",
        symbolic_witness_len.map_or(-1i64, |l| l as i64),
        search.bdd_nodes
    );

    // The acceptance gates: the symbolic engine decides the showcase
    // instance the explicit engine cannot touch within the budget, and is
    // at least break-even at n ≥ 12.
    let gate_showcase = explicit_aborted && symbolic_witness_len == Some(SHOWCASE_N);
    let gate_speed = rows
        .iter()
        .filter(|r| r.n >= 12)
        .all(|r| r.explicit_ns >= r.symbolic_ns);
    let _ = writeln!(
        json,
        "  \"gate\": {{\"symbolic_decides_past_explicit_budget\": {gate_showcase}, \
         \"symbolic_at_least_1x_at_n12\": {gate_speed}}}"
    );
    json.push_str("}\n");
    (json, gate_showcase && gate_speed)
}

// ---------------------------------------------------------------------------
// BENCH_perf.json: bitset state engine vs BTreeSet reference engine.

/// `(a+b)* ; a ; (a+b)^(n-1)` — the classic family whose minimal DFA has
/// 2^n states ("the n-th symbol from the end is `a`"). Subset construction
/// pays the full exponential price, which is exactly what makes it the
/// right stress test for the per-subset constant factor.
fn exponential_nfa(n: usize) -> (Arc<Alphabet>, Nfa) {
    let mut ab = Alphabet::new();
    let a = ab.intern("a");
    let b = ab.intern("b");
    let ab = Arc::new(ab);
    let sigma = Regex::union(Regex::sym(a), Regex::sym(b));
    let mut re = Regex::concat(Regex::star(sigma.clone()), Regex::sym(a));
    for _ in 1..n {
        re = Regex::concat(re, sigma.clone());
    }
    (ab.clone(), Nfa::from_regex(&re, ab))
}

/// A model whose language (`a ; (a+b)^(n-1)`) is included in the
/// exponential spec, so the joint inclusion search must exhaust the whole
/// reachable product instead of stopping at an early witness.
fn included_model(n: usize, ab: Arc<Alphabet>) -> Nfa {
    let a = Symbol::from_index(0);
    let b = Symbol::from_index(1);
    let sigma = Regex::union(Regex::sym(a), Regex::sym(b));
    let mut re = Regex::sym(a);
    for _ in 1..n {
        re = Regex::concat(re, sigma.clone());
    }
    Nfa::from_regex(&re, ab)
}

/// Explores every reachable state of `view` (BFS, dense symbol order) and
/// returns `(states discovered, peak subset size)`.
fn explore_subsets(view: &NfaView<'_>) -> (usize, usize) {
    let nsyms = view.alphabet().len();
    let start = view.start();
    let mut peak = start.len();
    let mut seen: HashSet<<NfaView<'_> as Lang>::State> = HashSet::from([start.clone()]);
    let mut queue = VecDeque::from([start]);
    while let Some(state) = queue.pop_front() {
        for s in 0..nsyms {
            let next = view.step(&state, Symbol::from_index(s));
            peak = peak.max(next.len());
            if !seen.contains(&next) {
                seen.insert(next.clone());
                queue.push_back(next);
            }
        }
    }
    (seen.len(), peak)
}

struct PerfRow {
    n: usize,
    /// States visited by the measured traversal (DFA states for subset
    /// construction, product states for the joint BFS, input states for
    /// minimization).
    visited: usize,
    /// Largest NFA-subset cardinality the traversal ever held.
    peak_subset: usize,
    fast_ns: u128,
    slow_ns: u128,
}

impl PerfRow {
    fn speedup(&self) -> f64 {
        self.slow_ns as f64 / self.fast_ns.max(1) as f64
    }
}

fn reps_for(n: usize) -> usize {
    if n >= 12 {
        5
    } else if n >= 10 {
        10
    } else {
        20
    }
}

/// Subset construction: bitset `Dfa::from_nfa` vs the reference engine
/// materialized through `NfaViewRef` (the historical `BTreeSet` path).
fn measure_subset(n: usize) -> PerfRow {
    let (_, nfa) = exponential_nfa(n);
    let view = NfaView::new(&nfa);
    let (visited, peak_subset) = explore_subsets(&view);
    let reps = reps_for(n);
    let fast_ns = time(reps, || Dfa::from_nfa(&nfa).num_states());
    let slow_ns = time(reps, || {
        lang::materialize(&NfaViewRef::new(&nfa)).num_states()
    });
    PerfRow {
        n,
        visited,
        peak_subset,
        fast_ns,
        slow_ns,
    }
}

/// Exhaustive joint 0-1 BFS (the usage-verification hot path): model NFA
/// against the spec's complemented subset view. Inclusion holds, so the
/// search drains the entire reachable product on both engines.
fn measure_joint(n: usize) -> PerfRow {
    let (ab, spec) = exponential_nfa(n);
    let model = included_model(n, ab);
    let markers = BTreeSet::new();
    let search =
        ops::shortest_joint_word_counted(&model, &Complement::new(NfaView::new(&spec)), &markers);
    assert!(search.witness.is_none(), "model must be included in spec");
    let (_, peak_subset) = explore_subsets(&NfaView::new(&spec));
    let reps = reps_for(n);
    let fast_ns = time(reps, || {
        ops::projected_subset(&model, &NfaView::new(&spec), &markers).is_ok()
    });
    let slow_ns = time(reps, || {
        ops::projected_subset(&model, &NfaViewRef::new(&spec), &markers).is_ok()
    });
    PerfRow {
        n,
        visited: search.visited,
        peak_subset,
        fast_ns,
        slow_ns,
    }
}

/// Antichain-pruned inclusion vs the classic exhaustive joint search on
/// the same included-model family. Inclusion holds, so the classic engine
/// drains the exponential reachable product while the antichain engine
/// keeps a ⊆-minimal frontier that grows only linearly in `n`; `visited`
/// records the pairs the antichain discarded and `peak_subset` the pairs
/// it kept.
fn measure_inclusion(n: usize) -> PerfRow {
    let (ab, spec) = exponential_nfa(n);
    let model = included_model(n, ab);
    let markers = BTreeSet::new();
    let (verdict, stats) =
        antichain::projected_subset_counted(&model, &NfaView::new(&spec), &markers);
    assert!(verdict.is_ok(), "model must be included in spec");
    let reps = reps_for(n);
    let fast_ns = time(reps, || {
        antichain::projected_subset(&model, &NfaView::new(&spec), &markers).is_ok()
    });
    let slow_ns = time(reps, || {
        ops::projected_subset(&model, &NfaView::new(&spec), &markers).is_ok()
    });
    PerfRow {
        n,
        visited: stats.pruned,
        peak_subset: stats.frontier,
        fast_ns,
        slow_ns,
    }
}

/// Hopcroft vs the naive Moore baseline on the 2^n-state DFA.
fn measure_minimize(n: usize) -> PerfRow {
    let (_, nfa) = exponential_nfa(n);
    let dfa = Dfa::from_nfa(&nfa);
    let minimal = dfa.minimize().num_states();
    let reps = if n >= 10 { 3 } else { 10 };
    let fast_ns = time(reps, || dfa.minimize().num_states());
    let slow_ns = time(reps, || dfa.minimize_naive().num_states());
    PerfRow {
        n,
        visited: dfa.num_states(),
        peak_subset: minimal,
        fast_ns,
        slow_ns,
    }
}

fn write_rows(
    json: &mut String,
    rows: &[PerfRow],
    visited_key: &str,
    peak_key: &str,
    fast_key: &str,
    slow_key: &str,
) {
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "      {{\"n\": {}, \"{}\": {}, \"{}\": {}, \"{}\": {}, \"{}\": {}, \"speedup\": {:.2}}}",
            r.n,
            visited_key,
            r.visited,
            peak_key,
            r.peak_subset,
            fast_key,
            r.fast_ns,
            slow_key,
            r.slow_ns,
            r.speedup()
        );
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
}

// ---------------------------------------------------------------------------
// The dataflow/typestate row: a synthetic 100-class workspace.

/// Measured facts of the typestate analysis on the synthetic workspace.
struct DataflowRow {
    classes: usize,
    composites: usize,
    fast_path_proven: u64,
    analysis_ns: u128,
    check_ns: u128,
}

impl DataflowRow {
    fn skip_rate(&self) -> f64 {
        self.fast_path_proven as f64 / self.composites.max(1) as f64
    }
}

/// Builds the synthetic workspace: 10 three-operation device protocols and
/// 90 composite apps, each driving one device through `boot · work · stop`.
/// Every third app detours through a `while`/`break` loop, whose jump makes
/// the typestate analysis bail to ⊤ — so the fast-path skip rate lands
/// strictly between 0 and 1 and both verification paths stay exercised.
fn synthetic_workspace() -> Vec<(String, String)> {
    const BASES: usize = 10;
    const APPS: usize = 90;
    let mut files = Vec::with_capacity(BASES + APPS);
    for k in 0..BASES {
        files.push((
            format!("dev{k}.py"),
            format!(
                "@sys\nclass Dev{k}:\n    @op_initial\n    def boot(self):\n        \
                 return [\"work\"]\n\n    @op\n    def work(self):\n        \
                 return [\"stop\"]\n\n    @op_final\n    def stop(self):\n        \
                 return []\n"
            ),
        ));
    }
    for i in 0..APPS {
        let k = i % BASES;
        let body = if i % 3 == 2 {
            "        self.d.boot()\n        self.d.work()\n        \
             while retry:\n            break\n        self.d.stop()\n        return []\n"
        } else {
            "        self.d.boot()\n        self.d.work()\n        \
             self.d.stop()\n        return []\n"
        };
        files.push((
            format!("app{i}.py"),
            format!(
                "@sys([\"d\"])\nclass App{i}:\n    def __init__(self):\n        \
                 self.d = Dev{k}()\n\n    @op_initial_final\n    def run(self):\n{body}"
            ),
        ));
    }
    files
}

fn measure_dataflow() -> DataflowRow {
    let files = synthetic_workspace();

    // Counters from one cold workspace round.
    let mut ws = Checker::new().jobs(1).into_workspace();
    for (name, src) in &files {
        ws.set_file(name.clone(), src.clone());
    }
    let checked = ws.check().expect("synthetic workspace parses");
    assert!(
        checked.report.passed(),
        "synthetic workspace must verify:\n{}",
        checked.report.render(None)
    );
    let classes = checked.systems.len();
    let composites = checked.integrations.len();
    let fast_path_proven = ws.last_round().fast_path_proven;

    // Timed: the typestate analysis alone, over every class of the
    // concatenated module.
    let src: String = files
        .iter()
        .map(|(_, s)| s.as_str())
        .collect::<Vec<_>>()
        .join("\n");
    let module = micropython_parser::parse_module(&src).expect("parses");
    let (systems, _) = build_systems(&module);
    let analysis_ns = time(5, || {
        let mut proven = 0usize;
        for system in systems.iter() {
            if let Some(class) = module.class(&system.name) {
                if let Some(report) = analyze_class(class, system, &systems) {
                    proven += report.proven.len();
                }
            }
        }
        proven
    });

    // Timed: a full cold workspace check (parse → extract → verify with
    // the fast path active).
    let check_ns = time(5, || {
        let mut ws = Checker::new().jobs(1).into_workspace();
        for (name, src) in &files {
            ws.set_file(name.clone(), src.clone());
        }
        ws.check().expect("parses").report.passed()
    });

    DataflowRow {
        classes,
        composites,
        fast_path_proven,
        analysis_ns,
        check_ns,
    }
}

fn perf_report() -> (String, bool) {
    let sweep = [4usize, 6, 8, 10, 12];
    let subset: Vec<PerfRow> = sweep.iter().map(|&n| measure_subset(n)).collect();
    let joint: Vec<PerfRow> = sweep.iter().map(|&n| measure_joint(n)).collect();
    let inclusion: Vec<PerfRow> = sweep.iter().map(|&n| measure_inclusion(n)).collect();
    let minimize: Vec<PerfRow> = [4usize, 6, 8, 10, 12]
        .iter()
        .map(|&n| measure_minimize(n))
        .collect();
    let dataflow = measure_dataflow();

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"state_engine_perf\",\n");
    json.push_str(
        "  \"workload\": \"(a+b)*;a;(a+b)^(n-1): 2^n-state subset space; bitset StateSet/CompiledNfa engine vs BTreeSet reference engine\",\n",
    );
    json.push_str("  \"subset_construction\": {\n");
    json.push_str("    \"rows\": [\n");
    write_rows(
        &mut json,
        &subset,
        "dfa_states",
        "peak_subset",
        "bitset_ns",
        "reference_ns",
    );
    json.push_str("    ]\n  },\n");
    json.push_str("  \"joint_bfs\": {\n");
    json.push_str("    \"rows\": [\n");
    write_rows(
        &mut json,
        &joint,
        "product_states_visited",
        "peak_subset",
        "bitset_ns",
        "reference_ns",
    );
    json.push_str("    ]\n  },\n");
    json.push_str("  \"inclusion\": {\n");
    json.push_str(
        "    \"workload\": \"antichain-pruned inclusion vs classic exhaustive joint search, same included-model family\",\n",
    );
    json.push_str("    \"rows\": [\n");
    write_rows(
        &mut json,
        &inclusion,
        "inclusion_antichain_pruned",
        "inclusion_antichain_frontier",
        "inclusion_antichain_ns",
        "inclusion_classic_ns",
    );
    json.push_str("    ]\n  },\n");
    json.push_str("  \"minimization\": {\n");
    json.push_str("    \"rows\": [\n");
    write_rows(
        &mut json,
        &minimize,
        "input_states",
        "minimal_states",
        "hopcroft_ns",
        "moore_ns",
    );
    json.push_str("    ]\n  },\n");
    json.push_str("  \"dataflow\": {\n");
    json.push_str(
        "    \"workload\": \"synthetic workspace: 10 three-op device protocols + 90 composite apps (every third loop-imprecise)\",\n",
    );
    json.push_str("    \"rows\": [\n");
    let _ = writeln!(
        json,
        "      {{\"classes\": {}, \"composites\": {}, \"fast_path_proven\": {}, \
         \"skip_rate\": {:.2}, \"analysis_ns\": {}, \"workspace_check_ns\": {}}}",
        dataflow.classes,
        dataflow.composites,
        dataflow.fast_path_proven,
        dataflow.skip_rate(),
        dataflow.analysis_ns,
        dataflow.check_ns
    );
    json.push_str("    ]\n  },\n");

    // The acceptance gates: at n ≥ 10 the bitset engine wins subset
    // construction and the exhaustive joint BFS by ≥ 2×, the antichain
    // engine wins inclusion by ≥ 2× over the classic search, Hopcroft
    // never loses to the Moore baseline, and the typestate fast path
    // proves a positive share of the synthetic workspace.
    let gate_rows = |rows: &[PerfRow]| {
        rows.iter()
            .filter(|r| r.n >= 10)
            .all(|r| r.speedup() >= 2.0)
    };
    let gate_subset = gate_rows(&subset);
    let gate_joint = gate_rows(&joint);
    let gate_inclusion = gate_rows(&inclusion);
    let gate_hopcroft = minimize
        .iter()
        .filter(|r| r.n >= 10)
        .all(|r| r.speedup() >= 1.0);
    let gate_dataflow = dataflow.fast_path_proven > 0;
    let _ = writeln!(
        json,
        "  \"gate\": {{\"n\": 10, \"subset_bitset_at_least_2x\": {gate_subset}, \
         \"joint_bitset_at_least_2x\": {gate_joint}, \
         \"inclusion_antichain_at_least_2x\": {gate_inclusion}, \
         \"hopcroft_at_least_moore\": {gate_hopcroft}, \
         \"dataflow_skip_rate_positive\": {gate_dataflow}}}"
    );
    json.push_str("}\n");
    (
        json,
        gate_subset && gate_joint && gate_inclusion && gate_hopcroft && gate_dataflow,
    )
}

fn write_or_die(path: &str, json: &str) {
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(1);
    }
}

fn main() {
    let lang_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_lang.json".to_owned());
    let perf_path = std::env::args()
        .nth(2)
        .unwrap_or_else(|| "BENCH_perf.json".to_owned());
    let sym_path = std::env::args()
        .nth(3)
        .unwrap_or_else(|| "BENCH_sym.json".to_owned());

    let (lang_json, lang_gate) = lang_report();
    write_or_die(&lang_path, &lang_json);
    print!("{lang_json}");

    let (perf_json, perf_gate) = perf_report();
    write_or_die(&perf_path, &perf_json);
    print!("{perf_json}");

    let (sym_json, sym_gate) = sym_report();
    write_or_die(&sym_path, &sym_json);
    print!("{sym_json}");

    assert!(
        lang_gate,
        "lazy-vs-eager separation gate failed (see {lang_path})"
    );
    assert!(
        perf_gate,
        "bitset-vs-reference 2x gate failed (see {perf_path})"
    );
    assert!(
        sym_gate,
        "symbolic-backend separation gate failed (see {sym_path})"
    );
}
