//! `langbench` — machine-readable summary of the lazy-vs-eager language
//! engine separation.
//!
//! Runs the `lang_views` adversarial workload (claim `F a0 & ... & F a{n-1}`
//! against the model `a0*`, negated monitor ~2^n states) at a sweep of
//! sizes, measures both engines, and writes `BENCH_lang.json` next to the
//! workspace root (or to the path given as the first argument). The JSON is
//! hand-rolled — the workspace is offline and carries no serde.
//!
//! Run with `cargo run -p langbench --release`.

use shelley_bench::adversarial_claim;
use shelley_ltlf::{check_claim, to_dfa, MonitorView};
use shelley_regular::ops;
use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::time::Instant;

/// One measured size of the adversarial workload.
struct Row {
    n: usize,
    lazy_visited: usize,
    eager_states: usize,
    lazy_ns: u128,
    eager_ns: u128,
}

/// Median-of-`reps` wall time of `f`, in nanoseconds.
fn time<T>(reps: usize, mut f: impl FnMut() -> T) -> u128 {
    let mut samples: Vec<u128> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            std::hint::black_box(f());
            t.elapsed().as_nanos()
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn measure(n: usize) -> Row {
    let (ab, claim, model) = adversarial_claim(n);
    let markers = BTreeSet::new();
    let bad = claim.negate();

    let lazy_visited =
        ops::shortest_joint_word_counted(&model, &MonitorView::new(&bad, ab.clone()), &markers)
            .visited;
    let eager_states = to_dfa(&bad, ab.clone()).num_states();

    let reps = if n >= 12 { 5 } else { 20 };
    let lazy_ns = time(reps, || {
        assert!(!check_claim(&model, &claim, &markers).holds());
    });
    let eager_ns = time(reps, || {
        let monitor = to_dfa(&bad, ab.clone());
        ops::shortest_joint_word(&model, &monitor, &markers).expect("claim is violated")
    });

    Row {
        n,
        lazy_visited,
        eager_states,
        lazy_ns,
        eager_ns,
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_lang.json".to_owned());

    let rows: Vec<Row> = [4, 6, 8, 10, 12].into_iter().map(measure).collect();

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"lang_views\",\n");
    json.push_str(
        "  \"workload\": \"claim F a0 & ... & F a{n-1} vs model a0* (negated monitor ~2^n states)\",\n",
    );
    json.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let speedup = r.eager_ns as f64 / r.lazy_ns.max(1) as f64;
        let ratio = r.lazy_visited as f64 / r.eager_states.max(1) as f64;
        let _ = write!(
            json,
            "    {{\"n\": {}, \"lazy_visited_states\": {}, \"eager_monitor_states\": {}, \
             \"state_ratio\": {:.4}, \"lazy_ns\": {}, \"eager_ns\": {}, \"speedup\": {:.1}}}",
            r.n, r.lazy_visited, r.eager_states, ratio, r.lazy_ns, r.eager_ns, speedup
        );
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");

    // The acceptance gate, checked at the largest size: the lazy engine
    // visits ≤ 10% of the eager monitor's states and is ≥ 5× faster.
    let last = rows.last().expect("nonempty sweep");
    let gate_states = last.lazy_visited * 10 <= last.eager_states;
    let gate_time = last.eager_ns >= 5 * last.lazy_ns;
    let _ = writeln!(
        json,
        "  \"gate\": {{\"n\": {}, \"lazy_visits_at_most_10pct\": {}, \"lazy_at_least_5x_faster\": {}}}",
        last.n, gate_states, gate_time
    );
    json.push_str("}\n");

    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    print!("{json}");
    assert!(
        gate_states && gate_time,
        "separation gate failed at n={}: visited {}/{} states, {} ns lazy vs {} ns eager",
        last.n,
        last.lazy_visited,
        last.eager_states,
        last.lazy_ns,
        last.eager_ns
    );
}
