//! `servebench` — the cold / warm-restart / steady-state trajectory of
//! the persistent verify cache, on the ~1k-class synthetic workspace of
//! [`shelley_bench::serve_project`].
//!
//! Three modes of the same check, written to `BENCH_serve.json`:
//!
//! * **cold** — a fresh process with no cache: every class pays parse,
//!   extract, and the full verify (lints, typestate, inclusion, claims);
//! * **warm_restart** — a fresh process that loads the on-disk cache a
//!   previous run saved: every class still parses, extracts, and
//!   resolves, but the expensive analyses are restored from disk;
//! * **steady_state** — a re-check in a live workspace: everything is an
//!   in-memory fingerprint hit.
//!
//! The emitted `gate` asserts the cache pays for itself: a warm restart
//! must be at least 2x faster than a cold start. The runner exits
//! nonzero when the gate fails, so CI can call it directly.
//!
//! Run with `cargo run -p servebench --release [OUT.json]`.

use serde::{json, Value};
use shelley_core::{Checker, Workspace};
use std::time::Instant;

/// Classes in the synthetic workspace (~1k, the issue's target size).
const CLASSES: usize = 1000;

/// Timing repetitions; the median is reported.
const REPS: usize = 5;

fn median(mut samples: Vec<u128>) -> u128 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// One measured mode: wall time plus the stats row proving which path
/// the round actually took.
struct Mode {
    name: &'static str,
    ns: u128,
    verified: u64,
    verify_disk_hits: u64,
    verify_cache_hits: u64,
    fast_path_proven: u64,
}

impl Mode {
    fn row(&self) -> Value {
        obj(vec![
            ("mode", Value::Str(self.name.to_string())),
            ("ns", Value::UInt(self.ns as u64)),
            ("verified", Value::UInt(self.verified)),
            ("verify_disk_hits", Value::UInt(self.verify_disk_hits)),
            ("verify_cache_hits", Value::UInt(self.verify_cache_hits)),
            ("fast_path_proven", Value::UInt(self.fast_path_proven)),
        ])
    }
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Map(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn fill(workspace: &mut Workspace, files: &[(String, String)]) {
    for (name, text) in files {
        workspace.set_file(name.clone(), text.clone());
    }
}

fn mode_stats(name: &'static str, ns: u128, workspace: &Workspace) -> Mode {
    let round = workspace.last_round();
    Mode {
        name,
        ns,
        verified: round.verified,
        verify_disk_hits: round.verify_disk_hits,
        verify_cache_hits: round.verify_cache_hits,
        fast_path_proven: round.fast_path_proven,
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_serve.json".to_string());
    let files = shelley_bench::serve_project(CLASSES);

    // Seed the on-disk cache once, and keep this workspace alive as the
    // steady-state subject.
    let cache = std::env::temp_dir().join(format!("servebench-{}.ndjson", std::process::id()));
    let mut live = Checker::new().into_workspace();
    fill(&mut live, &files);
    let checked = live.check().expect("synthetic workspace parses");
    assert!(
        checked.report.passed(),
        "synthetic workspace must verify:\n{}",
        checked.report.render(None)
    );
    let records = live.save_disk_cache(&cache).expect("cache saves");
    let cache_bytes = std::fs::metadata(&cache).map(|m| m.len()).unwrap_or(0);

    // Cold: fresh workspace, no cache.
    let mut cold_probe = None;
    let cold_ns = median(
        (0..REPS)
            .map(|_| {
                let mut ws = Checker::new().into_workspace();
                fill(&mut ws, &files);
                let t = Instant::now();
                std::hint::black_box(ws.check().expect("parses").report.passed());
                let ns = t.elapsed().as_nanos();
                cold_probe = Some(mode_stats("cold", ns, &ws));
                ns
            })
            .collect(),
    );
    let mut cold = cold_probe.expect("REPS > 0");
    cold.ns = cold_ns;

    // Warm restart: fresh workspace that loads the saved cache.
    let mut warm_probe = None;
    let warm_ns = median(
        (0..REPS)
            .map(|_| {
                let mut ws = Checker::new().into_workspace();
                let outcome = ws.load_disk_cache(&cache);
                assert!(outcome.rejected.is_none(), "{:?}", outcome.rejected);
                fill(&mut ws, &files);
                let t = Instant::now();
                std::hint::black_box(ws.check().expect("parses").report.passed());
                let ns = t.elapsed().as_nanos();
                warm_probe = Some(mode_stats("warm_restart", ns, &ws));
                ns
            })
            .collect(),
    );
    let mut warm = warm_probe.expect("REPS > 0");
    warm.ns = warm_ns;
    assert_eq!(
        warm.verify_disk_hits, warm.verified,
        "a warm restart must restore every class from disk"
    );

    // Steady state: the live workspace re-checks an unchanged project.
    let mut steady_probe = None;
    let steady_ns = median(
        (0..REPS)
            .map(|_| {
                fill(&mut live, &files);
                let t = Instant::now();
                std::hint::black_box(live.check().expect("parses").report.passed());
                let ns = t.elapsed().as_nanos();
                steady_probe = Some(mode_stats("steady_state", ns, &live));
                ns
            })
            .collect(),
    );
    let mut steady = steady_probe.expect("REPS > 0");
    steady.ns = steady_ns;

    let speedup = cold.ns as f64 / warm.ns.max(1) as f64;
    let gate_ok = speedup >= 2.0;

    let doc = obj(vec![
        ("bench", Value::Str("serve_cache".to_string())),
        (
            "workload",
            Value::Str(format!(
                "serve_project({CLASSES}): device protocols + claim-carrying apps, \
                 every second app loop-imprecise (full inclusion check)"
            )),
        ),
        ("classes", Value::UInt(CLASSES as u64)),
        (
            "rows",
            Value::Seq(vec![cold.row(), warm.row(), steady.row()]),
        ),
        (
            "cache",
            obj(vec![
                ("records", Value::UInt(records as u64)),
                ("bytes", Value::UInt(cache_bytes)),
            ]),
        ),
        (
            "gate",
            obj(vec![
                ("warm_restart_at_least_2x_cold", Value::Bool(gate_ok)),
                (
                    "warm_restart_speedup",
                    Value::Float((speedup * 100.0).round() / 100.0),
                ),
            ]),
        ),
    ]);
    std::fs::write(&out_path, json::to_string_pretty(&doc) + "\n").expect("write bench json");
    let _ = std::fs::remove_file(&cache);

    eprintln!(
        "cold {:.1}ms, warm restart {:.1}ms ({speedup:.2}x), steady state {:.1}ms -> {out_path}",
        cold.ns as f64 / 1e6,
        warm.ns as f64 / 1e6,
        steady.ns as f64 / 1e6,
    );
    assert!(
        gate_ok,
        "GATE FAILED: warm restart only {speedup:.2}x faster than cold (need >= 2x)"
    );
}
