//! An offline, dependency-free subset of the [criterion] API.
//!
//! The bench harness of this workspace was written against the real
//! `criterion` crate, which is unavailable in the sealed build environment.
//! This shim keeps every bench compiling and *running* — each benchmark is
//! timed with [`std::time::Instant`] over a modest number of iterations and
//! a single line is printed per benchmark:
//!
//! ```text
//! bench fig2/full_pipeline ... 1.23 ms/iter (30 samples)
//! ```
//!
//! There is no statistical analysis, plotting, or HTML report; the point is
//! that `cargo bench` exercises the same code paths and yields comparable
//! relative numbers between revisions on the same machine.
//!
//! [criterion]: https://docs.rs/criterion

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], matching criterion's API.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// The benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs a single benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.to_string(), self.sample_size, |b| f(b));
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&id.to_string(), self.sample_size, |b| f(b, input));
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark of the group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, |b| f(b));
        self
    }

    /// Runs one parameterized benchmark of the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (retained for API compatibility).
    pub fn finish(self) {}
}

/// A benchmark identifier (`name/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{name}/{parameter}"),
        }
    }

    /// An id that is just a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] does the timing.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: usize,
    total: Duration,
    iterations: u64,
}

impl Bencher {
    /// Times `f` over the configured number of samples.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        // One warm-up call, then timed samples.
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(f());
        }
        self.total = start.elapsed();
        self.iterations = self.samples as u64;
    }
}

fn run_one<F>(name: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        samples: sample_size,
        ..Bencher::default()
    };
    f(&mut bencher);
    if bencher.iterations == 0 {
        println!("bench {name} ... (no iterations)");
        return;
    }
    let per_iter = bencher.total.as_secs_f64() / bencher.iterations as f64;
    let (value, unit) = if per_iter >= 1.0 {
        (per_iter, "s")
    } else if per_iter >= 1e-3 {
        (per_iter * 1e3, "ms")
    } else if per_iter >= 1e-6 {
        (per_iter * 1e6, "µs")
    } else {
        (per_iter * 1e9, "ns")
    };
    println!(
        "bench {name} ... {value:.2} {unit}/iter ({} samples)",
        bencher.iterations
    );
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench `main` that runs each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_times_work() {
        let mut c = Criterion::default().sample_size(3);
        let mut ran = 0usize;
        c.bench_function("shim/smoke", |b| b.iter(|| ran += 1));
        assert!(ran >= 3);
    }

    #[test]
    fn groups_and_ids_render() {
        let mut c = Criterion::default().sample_size(2);
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_with_input(BenchmarkId::from_parameter(7), &7, |b, &n| b.iter(|| n * 2));
        group.bench_function(BenchmarkId::new("f", 1), |b| b.iter(|| 1 + 1));
        group.finish();
    }
}
