//! Offline stand-in for the `serde_derive` proc-macro crate.
//!
//! The build environment has no network access, so — like the `proptest`
//! and `criterion` shims under `devtools/` — this crate re-implements the
//! subset of `#[derive(Serialize, Deserialize)]` the workspace uses,
//! against the [`serde` shim](../serde)'s `Value` data model:
//!
//! * structs with named fields (`Option<T>` fields are skipped when `None`
//!   on serialize and default to `None` when missing on deserialize — the
//!   wire-type convention the protocol goldens pin);
//! * enums with unit and named-field variants, encoded externally tagged
//!   exactly like real serde (`"variant"` / `{"variant": {fields}}`);
//! * the container attribute `#[serde(rename_all = "snake_case")]`.
//!
//! Generics, tuple variants, and field-level attributes are not supported
//! and produce a compile error naming the limitation.
//!
//! The implementation parses the item's token stream by hand (no `syn` /
//! `quote` — those live on crates.io too) and emits the impl as source
//! text.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (shim): `fn serialize(&self) -> serde::Value`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Which::Serialize)
}

/// Derives `serde::Deserialize` (shim):
/// `fn deserialize(&serde::Value) -> Result<Self, serde::Error>`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Which::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Which {
    Serialize,
    Deserialize,
}

fn expand(input: TokenStream, which: Which) -> TokenStream {
    match parse_item(input) {
        Ok(item) => {
            let code = match which {
                Which::Serialize => gen_serialize(&item),
                Which::Deserialize => gen_deserialize(&item),
            };
            code.parse().expect("generated impl parses")
        }
        Err(msg) => format!("::core::compile_error!({msg:?});")
            .parse()
            .expect("compile_error parses"),
    }
}

// ---------------------------------------------------------------------------
// Item model and parser

struct Field {
    name: String,
    /// Whether the declared type's head is `Option`.
    optional: bool,
}

enum Shape {
    Struct(Vec<Field>),
    Enum(Vec<(String, Option<Vec<Field>>)>),
}

struct Item {
    name: String,
    snake_variants: bool,
    shape: Shape,
}

/// Skips one `#[...]` attribute, reporting whether it was
/// `#[serde(rename_all = "snake_case")]`.
fn eat_attribute(iter: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) -> bool {
    iter.next(); // '#'
    let Some(TokenTree::Group(g)) = iter.next() else {
        return false;
    };
    let text = g.stream().to_string().replace(' ', "");
    text.starts_with("serde(") && text.contains("rename_all=\"snake_case\"")
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut iter = input.into_iter().peekable();
    let mut snake_variants = false;
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                snake_variants |= eat_attribute(&mut iter);
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                iter.next();
                // `pub(crate)` and friends carry a paren group.
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next();
                    }
                }
            }
            _ => break,
        }
    }
    let kind = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, got {other:?}")),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, got {other:?}")),
    };
    if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde shim derive: `{name}` is generic (unsupported)"
        ));
    }
    let body = match iter.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        _ => {
            return Err(format!(
                "serde shim derive: `{name}` must have a braced body (tuple/unit items unsupported)"
            ))
        }
    };
    let shape = match kind.as_str() {
        "struct" => Shape::Struct(parse_fields(body)?),
        "enum" => Shape::Enum(parse_variants(body)?),
        other => return Err(format!("expected `struct` or `enum`, got `{other}`")),
    };
    Ok(Item {
        name,
        snake_variants,
        shape,
    })
}

fn parse_fields(body: TokenStream) -> Result<Vec<Field>, String> {
    let mut fields = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        // Attributes and visibility before the field name.
        loop {
            match iter.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    eat_attribute(&mut iter);
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    iter.next();
                    if let Some(TokenTree::Group(g)) = iter.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            iter.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let Some(tree) = iter.next() else { break };
        let TokenTree::Ident(field_name) = tree else {
            return Err(format!("expected field name, got {tree:?}"));
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected `:` after field name, got {other:?}")),
        }
        // The type: consume until a comma at angle-bracket depth 0. Only the
        // head identifier matters (to spot `Option`).
        let mut depth = 0i32;
        let mut head: Option<String> = None;
        for tree in iter.by_ref() {
            match &tree {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                TokenTree::Ident(id) => {
                    if head.is_none() {
                        head = Some(id.to_string());
                    } else if depth == 0 {
                        // e.g. `std :: time :: Duration` — keep updating so the
                        // head reflects the path's last segment at depth 0...
                        head = Some(id.to_string());
                    }
                }
                _ => {}
            }
            // `Option` is always the path head at depth 0 *before* the `<`.
            if depth > 0 && head.is_none() {
                head = Some(String::new());
            }
        }
        let optional = head.as_deref() == Some("Option");
        fields.push(Field {
            name: field_name.to_string(),
            optional,
        });
    }
    Ok(fields)
}

/// A parsed enum variant: its name plus named fields (`None` for unit
/// variants).
type Variant = (String, Option<Vec<Field>>);

fn parse_variants(body: TokenStream) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        while matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            eat_attribute(&mut iter);
        }
        let Some(tree) = iter.next() else { break };
        let TokenTree::Ident(vname) = tree else {
            return Err(format!("expected variant name, got {tree:?}"));
        };
        let fields = match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let stream = g.stream();
                iter.next();
                Some(parse_fields(stream)?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                return Err(format!(
                    "serde shim derive: tuple variant `{vname}` unsupported (use named fields)"
                ));
            }
            _ => None,
        };
        if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            iter.next();
        }
        variants.push((vname.to_string(), fields));
    }
    Ok(variants)
}

fn snake_case(name: &str) -> String {
    let mut out = String::new();
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.push(c.to_ascii_lowercase());
        } else {
            out.push(c);
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Code generation

/// `fields.push(...)` statements serializing `prefix<name>` into `__fields`.
fn ser_fields(fields: &[Field], prefix: &str) -> String {
    let mut out = String::new();
    for f in fields {
        let access = format!("{prefix}{}", f.name);
        if f.optional {
            out.push_str(&format!(
                "if let ::core::option::Option::Some(__v) = &{access} {{ \
                 __fields.push((\"{}\".to_string(), ::serde::Serialize::serialize(__v))); }}\n",
                f.name
            ));
        } else {
            out.push_str(&format!(
                "__fields.push((\"{}\".to_string(), ::serde::Serialize::serialize(&{access})));\n",
                f.name
            ));
        }
    }
    out
}

/// `name: ...?` initializers deserializing each field from `__map`.
fn de_fields(fields: &[Field], ty: &str) -> String {
    let mut out = String::new();
    for f in fields {
        let helper = if f.optional { "__opt_field" } else { "__field" };
        out.push_str(&format!(
            "{}: ::serde::{helper}(__map, \"{}\", \"{ty}\")?,\n",
            f.name, f.name
        ));
    }
    out
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Struct(fields) => format!(
            "let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
             ::std::vec::Vec::new();\n{}::serde::Value::Map(__fields)",
            ser_fields(fields, "self.")
        ),
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for (vname, fields) in variants {
                let wire = if item.snake_variants {
                    snake_case(vname)
                } else {
                    vname.clone()
                };
                match fields {
                    None => arms.push_str(&format!(
                        "{name}::{vname} => ::serde::Value::Str(\"{wire}\".to_string()),\n"
                    )),
                    Some(fields) => {
                        let binders: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {} }} => {{\n\
                             let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                             ::std::vec::Vec::new();\n{}\
                             ::serde::Value::Map(vec![(\"{wire}\".to_string(), ::serde::Value::Map(__fields))])\n}}\n",
                            binders.join(", "),
                            ser_fields(fields, "")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn serialize(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Struct(fields) => format!(
            "let __map = ::serde::__as_map(__value, \"{name}\")?;\n\
             ::core::result::Result::Ok({name} {{\n{}}})",
            de_fields(fields, name)
        ),
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for (vname, fields) in variants {
                let wire = if item.snake_variants {
                    snake_case(vname)
                } else {
                    vname.clone()
                };
                match fields {
                    None => unit_arms.push_str(&format!(
                        "\"{wire}\" => ::core::result::Result::Ok({name}::{vname}),\n"
                    )),
                    Some(fields) => tagged_arms.push_str(&format!(
                        "\"{wire}\" => {{\n\
                         let __map = ::serde::__as_map(__inner, \"{name}::{vname}\")?;\n\
                         ::core::result::Result::Ok({name}::{vname} {{\n{}}})\n}}\n",
                        de_fields(fields, &format!("{name}::{vname}"))
                    )),
                }
            }
            format!(
                "match __value {{\n\
                 ::serde::Value::Str(__s) => match __s.as_str() {{\n{unit_arms}\
                 __other => ::core::result::Result::Err(::serde::Error::new(format!(\
                 \"unknown variant `{{}}` of `{name}`\", __other))),\n}},\n\
                 ::serde::Value::Map(__m) if __m.len() == 1 => {{\n\
                 let (__tag, __inner) = &__m[0];\n\
                 match __tag.as_str() {{\n{tagged_arms}\
                 __other => ::core::result::Result::Err(::serde::Error::new(format!(\
                 \"unknown variant `{{}}` of `{name}`\", __other))),\n}}\n}}\n\
                 _ => ::core::result::Result::Err(::serde::Error::new(\
                 \"expected string or single-key map for enum `{name}`\".to_string())),\n}}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn deserialize(__value: &::serde::Value) \
         -> ::core::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n}}\n"
    )
}
