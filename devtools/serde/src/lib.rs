//! An offline, dependency-free stand-in for the [serde] + `serde_json`
//! API subset this workspace uses.
//!
//! Like the `proptest` and `criterion` shims next door, this crate exists
//! because the build environment has no network access: workspace crates
//! write `serde = { workspace = true }` and `#[derive(Serialize,
//! Deserialize)]` exactly as they would against the real crates, and the
//! path dependency resolves here.
//!
//! Differences from real serde (acceptable for this workspace):
//!
//! * Serialization is **tree-building, not visitor-driven**:
//!   [`Serialize::serialize`] returns a [`Value`], and
//!   [`Deserialize::deserialize`] reads one. The derive macro targets this
//!   model directly.
//! * `Option<T>` **struct fields** are skipped when `None` and default to
//!   `None` when missing — the convention the wire protocol and the
//!   `--format json` golden files pin. (Real serde needs
//!   `skip_serializing_if` + `default` attributes for this.)
//! * The only container attribute honored is
//!   `#[serde(rename_all = "snake_case")]`, on enums.
//! * [`json`] provides `to_string` / `to_string_pretty` / `from_str` over
//!   the same `Value` model; the pretty form is byte-identical to the
//!   hand-rolled writer the diagnostics renderers used before this crate
//!   existed (object keys in declaration order, two-space indent, empty
//!   containers inline).
//!
//! [serde]: https://docs.rs/serde

pub use serde_derive::{Deserialize, Serialize};

pub mod json;

use std::collections::BTreeMap;
use std::fmt;
use std::time::Duration;

/// A JSON-shaped document tree: the serialization data model.
///
/// Object keys keep insertion order (a `Vec`, not a map) so writers are
/// deterministic and field order mirrors struct declaration order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A negative integer (non-negative integers parse as [`Value::UInt`]).
    Int(i64),
    /// A non-negative integer.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Seq(Vec<Value>),
    /// An object, keys in insertion order.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The object fields, if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(fields) => Some(fields),
            _ => None,
        }
    }

    /// Looks up an object field by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// The string content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer content as `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(n) => Some(*n),
            Value::Int(n) => u64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// The integer content as `i64`, if it fits.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(*n),
            Value::UInt(n) => i64::try_from(*n).ok(),
            _ => None,
        }
    }
}

/// A serialization or deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error with a message.
    pub fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}

/// Types that can serialize themselves into a [`Value`].
pub trait Serialize {
    /// Builds the value tree for `self`.
    fn serialize(&self) -> Value;
}

/// Types that can rebuild themselves from a [`Value`].
pub trait Deserialize: Sized {
    /// Reads `self` back out of a value tree.
    fn deserialize(value: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Derive-support helpers (referenced by serde_derive's generated code).

/// Extracts the object fields of `value`, or errors naming `ty`.
#[doc(hidden)]
pub fn __as_map<'v>(value: &'v Value, ty: &str) -> Result<&'v [(String, Value)], Error> {
    value
        .as_map()
        .ok_or_else(|| Error::new(format!("expected map for `{ty}`")))
}

/// Deserializes required field `key`, or errors naming `ty`.
#[doc(hidden)]
pub fn __field<T: Deserialize>(map: &[(String, Value)], key: &str, ty: &str) -> Result<T, Error> {
    match map.iter().find(|(k, _)| k == key) {
        Some((_, v)) => {
            T::deserialize(v).map_err(|e| Error::new(format!("field `{key}` of `{ty}`: {e}")))
        }
        None => Err(Error::new(format!("missing field `{key}` of `{ty}`"))),
    }
}

/// Deserializes optional field `key` (missing or `null` becomes `None`).
#[doc(hidden)]
pub fn __opt_field<T: Deserialize>(
    map: &[(String, Value)],
    key: &str,
    ty: &str,
) -> Result<Option<T>, Error> {
    match map.iter().find(|(k, _)| k == key) {
        Some((_, v)) => Option::<T>::deserialize(v)
            .map_err(|e| Error::new(format!("field `{key}` of `{ty}`: {e}"))),
        None => Ok(None),
    }
}

// ---------------------------------------------------------------------------
// Primitive and container impls.

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::new("expected bool")),
        }
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::UInt(u64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let n = value
                    .as_u64()
                    .ok_or_else(|| Error::new("expected non-negative integer"))?;
                <$t>::try_from(n).map_err(|_| Error::new("integer out of range"))
            }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                let n = i64::from(*self);
                if n >= 0 {
                    Value::UInt(n as u64)
                } else {
                    Value::Int(n)
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let n = value
                    .as_i64()
                    .ok_or_else(|| Error::new("expected integer"))?;
                <$t>::try_from(n).map_err(|_| Error::new("integer out of range"))
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64);

impl Serialize for usize {
    fn serialize(&self) -> Value {
        Value::UInt(*self as u64)
    }
}

impl Deserialize for usize {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let n = value
            .as_u64()
            .ok_or_else(|| Error::new("expected non-negative integer"))?;
        usize::try_from(n).map_err(|_| Error::new("integer out of range"))
    }
}

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Float(f) => Ok(*f),
            Value::Int(n) => Ok(*n as f64),
            Value::UInt(n) => Ok(*n as f64),
            _ => Err(Error::new("expected number")),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::new("expected string"))
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(v) => v.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => Ok(Some(T::deserialize(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Seq(items) => items.iter().map(T::deserialize).collect(),
            _ => Err(Error::new("expected array")),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let fields = value.as_map().ok_or_else(|| Error::new("expected map"))?;
        fields
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::deserialize(v)?)))
            .collect()
    }
}

/// Durations serialize as `{"secs": u64, "nanos": u32}`, matching real
/// serde's `Duration` encoding.
impl Serialize for Duration {
    fn serialize(&self) -> Value {
        Value::Map(vec![
            ("secs".to_string(), Value::UInt(self.as_secs())),
            (
                "nanos".to_string(),
                Value::UInt(u64::from(self.subsec_nanos())),
            ),
        ])
    }
}

impl Deserialize for Duration {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let map = __as_map(value, "Duration")?;
        let secs: u64 = __field(map, "secs", "Duration")?;
        let nanos: u32 = __field(map, "nanos", "Duration")?;
        Ok(Duration::new(secs, nanos))
    }
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}
