//! JSON reading and writing over [`Value`] — the shim's
//! stand-in for `serde_json`.
//!
//! Two writers:
//!
//! * [`to_string`] — compact (`{"a":1}`), the newline-delimited wire form;
//! * [`to_string_pretty`] — two-space indent, object keys in insertion
//!   order, empty containers inline. Byte-identical to the hand-rolled
//!   writer the diagnostics renderers used before this crate existed, so
//!   the `--format json` / SARIF golden files are unchanged.
//!
//! The reader ([`from_str`]) is a strict recursive-descent JSON parser;
//! non-negative integers parse as [`Value::UInt`], negative ones as
//! [`Value::Int`], anything with a fraction or exponent as
//! [`Value::Float`].

use crate::{Deserialize, Error, Serialize, Value};

/// Serializes `value` into its [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.serialize()
}

/// Rebuilds a `T` from a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    T::deserialize(value)
}

/// Serializes `value` as compact JSON (no whitespace).
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> String {
    let mut out = String::new();
    write_compact(&value.serialize(), &mut out);
    out
}

/// Serializes `value` as pretty JSON (two-space indent, no trailing
/// newline).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> String {
    let mut out = String::new();
    write_pretty(&value.serialize(), &mut out, 0);
    out
}

/// Parses JSON text and rebuilds a `T`.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    T::deserialize(&value_from_str(text)?)
}

/// Parses JSON text into a [`Value`] tree.
pub fn value_from_str(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!(
            "trailing data at byte {} of JSON text",
            p.pos
        )));
    }
    Ok(value)
}

// ---------------------------------------------------------------------------
// Writers

fn write_atom(value: &Value, out: &mut String) -> bool {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                out.push_str(&format!("{f}"));
            } else {
                // JSON has no NaN/Inf; mirror serde_json's lossy `null`.
                out.push_str("null");
            }
        }
        Value::Str(s) => {
            out.push('"');
            escape(s, out);
            out.push('"');
        }
        Value::Seq(_) | Value::Map(_) => return false,
    }
    true
}

fn write_compact(value: &Value, out: &mut String) {
    if write_atom(value, out) {
        return;
    }
    match value {
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Value::Map(fields) => {
            out.push('{');
            for (i, (k, v)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('"');
                escape(k, out);
                out.push_str("\":");
                write_compact(v, out);
            }
            out.push('}');
        }
        _ => unreachable!("atoms handled above"),
    }
}

fn write_pretty(value: &Value, out: &mut String, indent: usize) {
    if write_atom(value, out) {
        return;
    }
    match value {
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                push_indent(out, indent + 1);
                write_pretty(item, out, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push(']');
        }
        Value::Map(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, v)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                push_indent(out, indent + 1);
                out.push('"');
                escape(k, out);
                out.push_str("\": ");
                write_pretty(v, out, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push('}');
        }
        _ => unreachable!("atoms handled above"),
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

// ---------------------------------------------------------------------------
// Parser

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err(Error::new(format!("unexpected JSON at byte {}", self.pos))),
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(fields));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: a run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in JSON string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !self.eat_keyword("\\u") {
                                    return Err(Error::new("unpaired surrogate"));
                                }
                                let lo = self.parse_hex4()?;
                                let combined =
                                    0x10000 + ((hi - 0xD800) << 10) + (lo.wrapping_sub(0xDC00));
                                char::from_u32(combined)
                                    .ok_or_else(|| Error::new("invalid surrogate pair"))?
                            } else {
                                char::from_u32(hi)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?
                            };
                            out.push(c);
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated JSON string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        let hex = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| Error::new("truncated \\u escape"))?;
        let s = std::str::from_utf8(hex).map_err(|_| Error::new("invalid \\u escape"))?;
        let n = u32::from_str_radix(s, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos = end;
        Ok(n)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut fractional = false;
        if self.peek() == Some(b'.') {
            fractional = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            fractional = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if !fractional {
            if let Some(rest) = text.strip_prefix('-') {
                if rest.parse::<u64>().is_ok() || text.parse::<i64>().is_ok() {
                    return text
                        .parse::<i64>()
                        .map(Value::Int)
                        .map_err(|_| Error::new(format!("integer `{text}` out of range")));
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_compact() {
        let v = Value::Map(vec![
            ("a".into(), Value::UInt(1)),
            (
                "b".into(),
                Value::Seq(vec![Value::Str("x\"y\n".into()), Value::Null]),
            ),
            ("c".into(), Value::Int(-3)),
            ("d".into(), Value::Bool(true)),
        ]);
        let text = to_string(&v);
        assert_eq!(text, r#"{"a":1,"b":["x\"y\n",null],"c":-3,"d":true}"#);
        assert_eq!(value_from_str(&text).unwrap(), v);
    }

    #[test]
    fn pretty_matches_legacy_writer_shape() {
        let v = Value::Map(vec![
            ("tool".into(), Value::Str("shelleyc".into())),
            ("diagnostics".into(), Value::Seq(vec![])),
        ]);
        assert_eq!(
            to_string_pretty(&v),
            "{\n  \"tool\": \"shelleyc\",\n  \"diagnostics\": []\n}"
        );
    }

    #[test]
    fn parses_escapes_and_numbers() {
        let v =
            value_from_str(r#"{"s":"A\n\t\"","n":18446744073709551615,"m":-9,"f":1.5}"#).unwrap();
        assert_eq!(v.get("s").unwrap().as_str().unwrap(), "A\n\t\"");
        assert_eq!(v.get("n").unwrap().as_u64().unwrap(), u64::MAX);
        assert_eq!(v.get("m").unwrap().as_i64().unwrap(), -9);
        assert_eq!(v.get("f"), Some(&Value::Float(1.5)));
    }

    #[test]
    fn rejects_garbage() {
        assert!(value_from_str("{\"a\":").is_err());
        assert!(value_from_str("hello").is_err());
        assert!(value_from_str("{} trailing").is_err());
        assert!(value_from_str("").is_err());
    }
}
