//! Exercises the `serde_derive` shim against the `serde` shim — structs,
//! enums, option-skipping, renaming, and error paths.

use serde::{json, Deserialize, Serialize, Value};

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Inner {
    label: String,
    count: u64,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Outer {
    name: String,
    total: usize,
    signed: i64,
    flag: bool,
    items: Vec<Inner>,
    note: Option<String>,
    span: Option<Inner>,
    elapsed: std::time::Duration,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
enum Command {
    Check,
    OpenFile { path: String, text: String },
    SetLevel { level: Option<u32> },
}

fn sample() -> Outer {
    Outer {
        name: "dev".into(),
        total: 3,
        signed: -7,
        flag: true,
        items: vec![Inner {
            label: "a\"b".into(),
            count: u64::MAX,
        }],
        note: None,
        span: Some(Inner {
            label: "s".into(),
            count: 0,
        }),
        elapsed: std::time::Duration::new(2, 125_000_000),
    }
}

#[test]
fn struct_round_trip() {
    let outer = sample();
    let text = json::to_string(&outer);
    let back: Outer = json::from_str(&text).unwrap();
    assert_eq!(back, outer);
}

#[test]
fn none_fields_are_skipped_and_default() {
    let text = json::to_string(&sample());
    assert!(!text.contains("\"note\""), "{text}");
    assert!(text.contains("\"span\""), "{text}");
    // A document missing optional fields still deserializes.
    let minimal = r#"{"name":"x","total":0,"signed":0,"flag":false,"items":[],"elapsed":{"secs":0,"nanos":0}}"#;
    let back: Outer = json::from_str(minimal).unwrap();
    assert_eq!(back.note, None);
    assert_eq!(back.span, None);
}

#[test]
fn field_order_is_declaration_order() {
    let value = json::to_value(&sample());
    let keys: Vec<&str> = value
        .as_map()
        .unwrap()
        .iter()
        .map(|(k, _)| k.as_str())
        .collect();
    assert_eq!(
        keys,
        ["name", "total", "signed", "flag", "items", "span", "elapsed"]
    );
}

#[test]
fn enum_encoding_is_externally_tagged_snake_case() {
    assert_eq!(json::to_string(&Command::Check), r#""check""#);
    let open = Command::OpenFile {
        path: "a.py".into(),
        text: "x = 1\n".into(),
    };
    assert_eq!(
        json::to_string(&open),
        r#"{"open_file":{"path":"a.py","text":"x = 1\n"}}"#
    );
    for cmd in [
        Command::Check,
        open,
        Command::SetLevel { level: None },
        Command::SetLevel { level: Some(2) },
    ] {
        let text = json::to_string(&cmd);
        assert_eq!(json::from_str::<Command>(&text).unwrap(), cmd, "{text}");
    }
}

#[test]
fn unknown_variants_and_missing_fields_error() {
    assert!(json::from_str::<Command>(r#""frobnicate""#).is_err());
    assert!(json::from_str::<Command>(r#"{"open_file":{"path":"a"}}"#).is_err());
    let err = json::from_str::<Inner>(r#"{"label":"x"}"#).unwrap_err();
    assert!(err.to_string().contains("missing field `count`"), "{err}");
    assert!(json::from_str::<Inner>("[1]").is_err());
}

#[test]
fn value_accessors() {
    let v = json::value_from_str(r#"{"a":1,"b":"s"}"#).unwrap();
    assert_eq!(v.get("a"), Some(&Value::UInt(1)));
    assert_eq!(v.get("b").unwrap().as_str(), Some("s"));
    assert_eq!(v.get("missing"), None);
}
