//! Test-harness types and the `proptest!`/`prop_assert*` macros.

use std::fmt;

/// How many cases each property runs.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real crate defaults to 256; 64 keeps the full workspace suite
        // fast while still exercising the properties broadly.
        ProptestConfig { cases: 64 }
    }
}

/// Why a single case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed — the whole test fails.
    Fail(String),
    /// `prop_assume!` rejected the inputs — the case is skipped.
    Reject(String),
}

impl TestCaseError {
    /// An assertion failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// An input rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }

    /// Whether this is a `prop_assume!` rejection.
    pub fn is_rejection(&self) -> bool {
        matches!(self, TestCaseError::Reject(_))
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
        }
    }
}

/// Declares property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(96))]
///
///     #[test]
///     fn holds(x in 0usize..10, s in "[a-z]{1,3}") {
///         prop_assert!(x < 10, "got {}", x);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Internal: expands each `fn name(bindings) { body }` item.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($config:expr)) => {};
    (
        ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            // Bind each strategy once, shadowing the argument name.
            $(let $arg = $strat;)+
            let seed = $crate::hash_name(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                let mut rng = $crate::TestRng::for_case(seed, case);
                // Shadow again with the generated values.
                $(let $arg = $crate::strategy::Strategy::generate(&$arg, &mut rng);)+
                let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                match result {
                    Ok(()) => {}
                    Err(e) if e.is_rejection() => {}
                    Err(e) => panic!(
                        "proptest case {case} of `{}` failed: {e}",
                        stringify!($name)
                    ),
                }
            }
        }
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left), stringify!($right), l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, $($fmt)+);
    }};
}

/// Skips the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Picks among strategies, optionally weighted (`w => strat`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}
