//! The [`Strategy`] trait and its combinators.

use crate::TestRng;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A generator of test values.
///
/// Unlike real proptest there is no value tree and no shrinking: a strategy
/// simply produces a value from a deterministic RNG.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produces one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates an intermediate value, then a value from the strategy `f`
    /// builds from it.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Retries generation until `f` accepts the value (up to a bounded
    /// number of attempts; the last candidate is returned regardless so the
    /// harness never spins forever).
    fn prop_filter<F>(self, reason: impl Into<String>, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason: reason.into(),
            f,
        }
    }

    /// Builds a recursive strategy: `self` generates leaves, and `recurse`
    /// wraps an inner strategy into branches, up to `depth` levels.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            let branch = recurse(strat).boxed();
            strat = LeafOrBranch {
                leaf: leaf.clone(),
                branch,
            }
            .boxed();
        }
        strat
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Rc::new(self),
        }
    }
}

/// Object-safe shim so [`BoxedStrategy`] can hold any strategy.
trait DynStrategy {
    type Value;
    fn dyn_generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A reference-counted, type-erased strategy (cloneable, like proptest's).
pub struct BoxedStrategy<T> {
    inner: Rc<dyn DynStrategy<Value = T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.dyn_generate(rng)
    }
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    #[allow(dead_code)]
    reason: String,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        let mut candidate = self.inner.generate(rng);
        for _ in 0..64 {
            if (self.f)(&candidate) {
                break;
            }
            candidate = self.inner.generate(rng);
        }
        candidate
    }
}

/// A weighted union of boxed strategies — the engine behind `prop_oneof!`.
pub struct Union<T> {
    branches: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    /// Builds a union; at least one branch with nonzero weight is required.
    pub fn new(branches: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total: u64 = branches.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof! needs a nonzero total weight");
        Union { branches, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.branches {
            if pick < u64::from(*w) {
                return s.generate(rng);
            }
            pick -= u64::from(*w);
        }
        self.branches.last().unwrap().1.generate(rng)
    }
}

/// Recursion helper: picks the leaf or one more level of branching.
struct LeafOrBranch<T> {
    leaf: BoxedStrategy<T>,
    branch: BoxedStrategy<T>,
}

impl<T> Strategy for LeafOrBranch<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        // Favor branches so recursive structures actually nest; termination
        // is guaranteed because the innermost level is the leaf itself.
        if rng.chance(2, 3) {
            self.branch.generate(rng)
        } else {
            self.leaf.generate(rng)
        }
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),+) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    rng.in_range(self.start as i128, self.end as i128) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start() <= self.end(), "empty range strategy");
                    rng.in_range(*self.start() as i128, *self.end() as i128 + 1) as $t
                }
            }
        )+
    };
}

int_range_strategies!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Strategy for Range<char> {
    type Value = char;
    fn generate(&self, rng: &mut TestRng) -> char {
        let lo = self.start as u32;
        let hi = self.end as u32;
        assert!(lo < hi, "empty char range strategy");
        loop {
            let v = rng.in_range(i128::from(lo), i128::from(hi)) as u32;
            if let Some(c) = char::from_u32(v) {
                return c;
            }
        }
    }
}

macro_rules! tuple_strategies {
    ($(($($name:ident),+);)+) => {
        $(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )+
    };
}

tuple_strategies! {
    (A);
    (A, B);
    (A, B, C);
    (A, B, C, D);
    (A, B, C, D, E);
    (A, B, C, D, E, F);
    (A, B, C, D, E, F, G);
    (A, B, C, D, E, F, G, H);
}

// ---------------------------------------------------------------------------
// String pattern strategies: `"[a-z][a-z0-9_]{0,6}"` and friends.
// ---------------------------------------------------------------------------

/// One atom of the tiny regex subset.
#[derive(Debug, Clone)]
enum Atom {
    /// A set of inclusive char ranges.
    Class(Vec<(char, char)>),
    /// A literal character.
    Literal(char),
}

#[derive(Debug, Clone)]
struct Quantified {
    atom: Atom,
    min: u32,
    max: u32,
}

/// Parses the supported pattern subset; panics on anything else so misuse
/// is loud at test-authoring time.
fn parse_pattern(pattern: &str) -> Vec<Quantified> {
    let mut chars = pattern.chars().peekable();
    let mut out = Vec::new();
    while let Some(c) = chars.next() {
        let atom = match c {
            '[' => {
                let mut ranges = Vec::new();
                let mut items: Vec<char> = Vec::new();
                loop {
                    match chars.next() {
                        Some(']') => break,
                        Some('\\') => match chars.next() {
                            Some('n') => items.push('\n'),
                            Some('t') => items.push('\t'),
                            Some(other) => items.push(other),
                            None => panic!("unterminated escape in pattern `{pattern}`"),
                        },
                        Some('-')
                            if !items.is_empty() && chars.peek().is_some_and(|c| *c != ']') =>
                        {
                            let lo = items.pop().unwrap();
                            let hi = chars.next().unwrap();
                            ranges.push((lo, hi));
                        }
                        Some(other) => items.push(other),
                        None => panic!("unterminated class in pattern `{pattern}`"),
                    }
                }
                for c in items {
                    ranges.push((c, c));
                }
                Atom::Class(ranges)
            }
            '\\' => match chars.next() {
                // `\PC`: any printable (non-control) character. A spread of
                // ASCII plus a few non-ASCII blocks is plenty for fuzzing.
                Some('P') => {
                    match chars.next() {
                        Some('C') => {}
                        other => panic!("unsupported escape \\P{other:?} in `{pattern}`"),
                    }
                    Atom::Class(vec![
                        (' ', '~'),
                        ('\u{a1}', '\u{ff}'),
                        ('\u{100}', '\u{17f}'),
                        ('\u{391}', '\u{3a1}'),
                        ('\u{4e00}', '\u{4e2f}'),
                    ])
                }
                Some('n') => Atom::Literal('\n'),
                Some('t') => Atom::Literal('\t'),
                Some(other) => Atom::Literal(other),
                None => panic!("unterminated escape in pattern `{pattern}`"),
            },
            other => Atom::Literal(other),
        };
        let (min, max) = match chars.peek() {
            Some('{') => {
                chars.next();
                let mut spec = String::new();
                for c in chars.by_ref() {
                    if c == '}' {
                        break;
                    }
                    spec.push(c);
                }
                match spec.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("pattern bound"),
                        hi.trim().parse().expect("pattern bound"),
                    ),
                    None => {
                        let n: u32 = spec.trim().parse().expect("pattern bound");
                        (n, n)
                    }
                }
            }
            Some('*') => {
                chars.next();
                (0, 8)
            }
            Some('+') => {
                chars.next();
                (1, 8)
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            _ => (1, 1),
        };
        out.push(Quantified { atom, min, max });
    }
    out
}

fn generate_atom(atom: &Atom, rng: &mut TestRng) -> char {
    match atom {
        Atom::Literal(c) => *c,
        Atom::Class(ranges) => {
            let total: u64 = ranges
                .iter()
                .map(|(lo, hi)| u64::from(*hi as u32) - u64::from(*lo as u32) + 1)
                .sum();
            let mut pick = rng.below(total.max(1));
            for (lo, hi) in ranges {
                let width = u64::from(*hi as u32) - u64::from(*lo as u32) + 1;
                if pick < width {
                    return char::from_u32(*lo as u32 + pick as u32).unwrap_or(*lo);
                }
                pick -= width;
            }
            ranges.first().map_or('?', |(lo, _)| *lo)
        }
    }
}

impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for q in &atoms {
            let count = if q.max > q.min {
                q.min + rng.below(u64::from(q.max - q.min + 1)) as u32
            } else {
                q.min
            };
            for _ in 0..count {
                out.push(generate_atom(&q.atom, rng));
            }
        }
        out
    }
}

impl Strategy for String {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        self.as_str().generate(rng)
    }
}
