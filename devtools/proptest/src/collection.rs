//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::TestRng;
use std::ops::{Range, RangeInclusive};

/// A length distribution for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    /// Inclusive upper bound.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// Generates a `Vec` whose length is drawn from `size` and whose elements
/// come from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max - self.size.min) as u64;
        let len = self.size.min
            + if span == 0 {
                0
            } else {
                rng.below(span + 1) as usize
            };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
