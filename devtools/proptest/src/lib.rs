//! An offline, dependency-free subset of the [proptest] API.
//!
//! The workspace's property tests were written against the real `proptest`
//! crate, but the build environment has no network access to crates.io.
//! This crate re-implements the *interface* those tests use — `proptest!`,
//! `prop_assert*!`, `prop_oneof!`, the `Strategy` combinators,
//! `collection::vec`, `option::of`, integer-range and string-pattern
//! strategies — on top of a small deterministic PRNG.
//!
//! Differences from the real crate (acceptable for the test-suites here):
//!
//! * **No shrinking.** A failing case reports its seed and message only.
//! * **Deterministic.** Case `i` of test `t` always sees the same inputs,
//!   across runs and machines, so failures are trivially reproducible.
//! * **Tiny regex subset** for `&str` strategies: sequences of literal
//!   characters, `[...]` classes (with ranges and `\n`/`\t`/`\\` escapes),
//!   `\PC` (any printable char), with `{m}`, `{m,n}`, `*`, `+`, `?`
//!   quantifiers.
//!
//! [proptest]: https://docs.rs/proptest

pub mod strategy;
pub mod test_runner;

pub mod collection;
pub mod option;

/// Everything the tests import with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// A deterministic test RNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a raw seed.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// The per-case generator: mixes the test name hash with the case index.
    pub fn for_case(name_hash: u64, case: u32) -> Self {
        let mut rng = TestRng::new(
            name_hash
                .wrapping_add(0x2545_f491_4f6c_dd1d)
                .wrapping_mul(u64::from(case) + 1),
        );
        // Warm up so nearby seeds diverge.
        rng.next_u64();
        rng.next_u64();
        rng
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Multiply-shift bounded generation; the bias is negligible for
        // test-data sizes.
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// Uniform value in the half-open i128 range `[lo, hi)`.
    pub fn in_range(&mut self, lo: i128, hi: i128) -> i128 {
        debug_assert!(lo < hi);
        let width = (hi - lo) as u128;
        let sample = if width > u128::from(u64::MAX) {
            (u128::from(self.next_u64()) << 64 | u128::from(self.next_u64())) % width
        } else {
            u128::from(self.below(width as u64))
        };
        lo + sample as i128
    }

    /// A coin flip with probability `num/denom` of `true`.
    pub fn chance(&mut self, num: u64, denom: u64) -> bool {
        self.below(denom) < num
    }
}

/// FNV-1a hash of a string, for per-test seeds.
pub fn hash_name(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::for_case(hash_name("t"), 3);
        let mut b = TestRng::for_case(hash_name("t"), 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case(hash_name("t"), 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(7);
        for _ in 0..1000 {
            let v = rng.in_range(-5, 9);
            assert!((-5..9).contains(&v));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_roundtrip(x in 0usize..10, v in crate::collection::vec(0i64..100, 0..5)) {
            prop_assert!(x < 10);
            prop_assert!(v.len() < 5);
            for item in &v {
                prop_assert!((0..100).contains(item));
            }
        }

        #[test]
        fn string_patterns_match_shape(s in "[a-z][a-z0-9_]{0,6}") {
            prop_assert!(!s.is_empty() && s.len() <= 7);
            let first = s.chars().next().unwrap();
            prop_assert!(first.is_ascii_lowercase());
        }

        #[test]
        fn oneof_and_recursive_terminate(n in arb_nested()) {
            prop_assert!(depth(&n) <= 6);
            prop_assert!(leaves_ok(&n));
        }
    }

    #[derive(Debug, Clone)]
    enum Nested {
        Leaf(usize),
        Pair(Box<Nested>, Box<Nested>),
    }

    fn depth(n: &Nested) -> usize {
        match n {
            Nested::Leaf(_) => 0,
            Nested::Pair(a, b) => 1 + depth(a).max(depth(b)),
        }
    }

    fn leaves_ok(n: &Nested) -> bool {
        match n {
            Nested::Leaf(v) => *v < 4 || *v == 99,
            Nested::Pair(a, b) => leaves_ok(a) && leaves_ok(b),
        }
    }

    fn arb_nested() -> impl Strategy<Value = Nested> {
        let leaf = prop_oneof![(0usize..4).prop_map(Nested::Leaf), Just(Nested::Leaf(99)),];
        leaf.prop_recursive(5, 16, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| Nested::Pair(Box::new(a), Box::new(b)))
        })
    }
}
