//! `corpusgen` — materializes the synthetic real-world MicroPython
//! corpus ([`shelley_bench::realworld_corpus`]) as `.py` files so
//! `shelleyc corpus` can measure parse/extract/verify rates on it.
//!
//! The generator is deterministic: every 50th file starting at index 7
//! carries a syntax break (recoverable in `--recover` mode), every 50th
//! starting at index 23 carries a specification error (`E006`), and the
//! rest rotate through four grammars exercising the recovering front
//! end (try/except, with, async/await, lambda, comprehensions,
//! f-strings, star args, augmented assignment, inheritance).
//!
//! Usage: `cargo run -p corpusgen -- <dir> [count]` (default count 200).

use shelley_bench::realworld_corpus;
use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let dir = match args.first() {
        Some(d) => Path::new(d),
        None => {
            eprintln!("usage: corpusgen <dir> [count]");
            return ExitCode::FAILURE;
        }
    };
    let count: usize = match args.get(1).map(|c| c.parse()) {
        None => 200,
        Some(Ok(n)) => n,
        Some(Err(_)) => {
            eprintln!("corpusgen: count must be a non-negative integer");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("corpusgen: cannot create {}: {e}", dir.display());
        return ExitCode::FAILURE;
    }
    let files = realworld_corpus(count);
    for (name, text) in &files {
        if let Err(e) = std::fs::write(dir.join(name), text) {
            eprintln!("corpusgen: cannot write {name}: {e}");
            return ExitCode::FAILURE;
        }
    }
    println!(
        "corpusgen: wrote {} file(s) to {}",
        files.len(),
        dir.display()
    );
    ExitCode::SUCCESS
}
