#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the full offline test suite.
# Mirrors .github/workflows/ci.yml so a green run here is a green run there.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q

echo "==> cargo test"
cargo test --workspace -q

echo "==> benches compile"
cargo bench --workspace --no-run -q

echo "==> langbench builds (release)"
cargo build -p langbench --release -q

echo "==> differential backend suite (explicit vs symbolic vs evaluated-SMV)"
# All three claim-checking engines must return identical verdicts (and
# equal witness lengths) on 1800 random system/claim pairs.
cargo test -p shelley-symbolic --test differential -q

echo "==> langbench gates (lazy-vs-eager, bitset 2x, antichain 2x, hopcroft >= moore, dataflow skip rate, symbolic backend)"
# Writes BENCH_lang.json / BENCH_perf.json / BENCH_sym.json and asserts
# every gate in them: the lazy engine separation, the bitset >= 2x wins at
# n >= 10, the antichain inclusion engine beating the classic exhaustive
# search >= 2x at n >= 10, Hopcroft never losing to the Moore baseline at
# n >= 10, the typestate fast path proving a positive share of the
# synthetic 100-class workspace, and the symbolic backend deciding the
# 2^n-frontier claim family past the explicit engine's 100k-state budget
# (>= 1x at n >= 12).
cargo run -p langbench --release -q -- BENCH_lang.json BENCH_perf.json BENCH_sym.json > /dev/null

echo "==> servebench gate (warm restart >= 2x cold on the 1k-class workspace)"
# Writes BENCH_serve.json and asserts the persistent verify cache pays
# for itself: a warm daemon restart must beat a cold start by >= 2x.
cargo run -p servebench --release -q -- BENCH_serve.json

echo "==> corpus gates (strict examples, 200-file recovering sweep)"
# Strict mode must hold the line on the checked-in paper examples, and
# the recovering front end must clear the ISSUE floors (>= 95% parse,
# >= 90% extract) on the 200-file synthetic real-world corpus, whose
# rates are published as BENCH_corpus.json.
cargo build -p shelley-cli -p corpusgen --release -q
SHELLEYC=target/release/shelleyc
"$SHELLEYC" corpus examples_py --min-parse 100 --min-extract 100 > /dev/null
CORPUS_DIR="$(mktemp -d)"
target/release/corpusgen "$CORPUS_DIR" 200 > /dev/null
"$SHELLEYC" corpus "$CORPUS_DIR" --recover --json BENCH_corpus.json \
    --min-parse 95 --min-extract 90 > /dev/null
rm -rf "$CORPUS_DIR"

echo "==> daemon smoke test (serve over a socket, check, shutdown)"
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
cat > "$SMOKE_DIR/led.py" <<'EOF'
@sys
class Led:
    @op_initial
    def on(self):
        return ["off"]

    @op_final
    def off(self):
        return ["on"]
EOF
cargo build -p shelley-cli --release -q
SHELLEYC=target/release/shelleyc
"$SHELLEYC" serve --socket "$SMOKE_DIR/daemon.sock" --cache "$SMOKE_DIR/cache.ndjson" &
SERVE_PID=$!
for _ in $(seq 100); do [ -S "$SMOKE_DIR/daemon.sock" ] && break; sleep 0.1; done
[ -S "$SMOKE_DIR/daemon.sock" ] || { echo "daemon socket never appeared"; exit 1; }
"$SHELLEYC" connect "$SMOKE_DIR/daemon.sock" "$SMOKE_DIR/led.py" \
    | grep -q "OK: 1 system(s) verified"
"$SHELLEYC" connect "$SMOKE_DIR/daemon.sock" --shutdown
wait "$SERVE_PID"
[ -f "$SMOKE_DIR/cache.ndjson" ] || { echo "daemon did not persist its cache"; exit 1; }

echo "CI OK"
