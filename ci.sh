#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the full offline test suite.
# Mirrors .github/workflows/ci.yml so a green run here is a green run there.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q

echo "==> cargo test"
cargo test --workspace -q

echo "==> benches compile"
cargo bench --workspace --no-run -q

echo "==> langbench builds (release)"
cargo build -p langbench --release -q

echo "==> langbench gates (lazy-vs-eager, bitset 2x, hopcroft >= moore, dataflow skip rate)"
# Writes BENCH_lang.json / BENCH_perf.json and asserts every gate in them:
# the lazy engine separation, the bitset >= 2x wins at n >= 10, Hopcroft
# never losing to the Moore baseline at n >= 10, and the typestate fast
# path proving a positive share of the synthetic 100-class workspace.
cargo run -p langbench --release -q -- BENCH_lang.json BENCH_perf.json > /dev/null

echo "CI OK"
