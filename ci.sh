#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the full offline test suite.
# Mirrors .github/workflows/ci.yml so a green run here is a green run there.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q

echo "==> cargo test"
cargo test --workspace -q

echo "==> benches compile"
cargo bench --workspace --no-run -q

echo "==> langbench builds (release)"
cargo build -p langbench --release -q

echo "CI OK"
